//! Binding between topology nodes and simulation actors.
//!
//! A [`Transport`] owns the mapping `NodeId <-> ActorId` plus the network's
//! distance table, and computes message delays: end-to-end shortest-path
//! delays for protocols modelled at the session level (mail submission and
//! retrieval), and single-edge delays for protocols that are explicitly
//! hop-by-hop (GHS messages travel only between direct neighbors).

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap, VecDeque};

use lems_sim::actor::{ActorId, Ctx};
use lems_sim::failure::Outage;
use lems_sim::time::{SimDuration, SimTime};

use crate::error::NetError;
use crate::graph::{Graph, NodeId};
use crate::shortest_path::DistanceTable;

/// Maps nodes to actors and computes delays from topology.
///
/// # Examples
///
/// ```
/// use lems_net::graph::{Graph, NodeId, Weight};
/// use lems_net::transport::Transport;
/// use lems_sim::actor::ActorId;
///
/// let mut g = Graph::with_nodes(2);
/// g.add_edge(NodeId(0), NodeId(1), Weight::from_units(2.0));
/// let mut tr = Transport::new(&g);
/// tr.bind(NodeId(0), ActorId(10));
/// tr.bind(NodeId(1), ActorId(11));
/// assert_eq!(tr.delay(NodeId(0), NodeId(1)).as_units(), 2.0);
/// assert_eq!(tr.actor_of(NodeId(1)), Ok(ActorId(11)));
/// assert_eq!(tr.node_of(ActorId(10)), Some(NodeId(0)));
/// ```
#[derive(Clone, Debug)]
pub struct Transport {
    dist: DistanceTable,
    edge_weights: HashMap<(NodeId, NodeId), SimDuration>,
    adjacency: Vec<Vec<NodeId>>,
    node_to_actor: Vec<Option<ActorId>>,
    actor_to_node: HashMap<ActorId, NodeId>,
    /// Sends that failed because of a bad binding or missing edge. A
    /// correctly built deployment never increments this; tests assert it
    /// stays zero instead of relying on a panic deep inside an actor.
    wiring_errors: Cell<u64>,
    /// Planned per-edge outages (directed). Interior mutability because the
    /// transport is `Rc`-shared across actors once a deployment is built,
    /// and chaos drivers register outages after that point.
    link_outages: RefCell<BTreeMap<(NodeId, NodeId), Vec<Outage>>>,
}

impl Transport {
    /// Builds a transport for `g` (all-pairs distances are precomputed).
    pub fn new(g: &Graph) -> Self {
        let mut edge_weights = HashMap::with_capacity(g.edge_count() * 2);
        let mut adjacency = vec![Vec::new(); g.node_count()];
        for e in g.edges() {
            let d = e.weight.as_duration();
            edge_weights.insert((e.a, e.b), d);
            edge_weights.insert((e.b, e.a), d);
            adjacency[e.a.0].push(e.b);
            adjacency[e.b.0].push(e.a);
        }
        // Deterministic neighbor order regardless of edge insertion order.
        for list in &mut adjacency {
            list.sort_unstable();
        }
        Transport {
            dist: DistanceTable::build(g),
            edge_weights,
            adjacency,
            node_to_actor: vec![None; g.node_count()],
            actor_to_node: HashMap::new(),
            wiring_errors: Cell::new(0),
            link_outages: RefCell::new(BTreeMap::new()),
        }
    }

    /// Associates a node with the actor simulating it.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range or either side is already bound.
    pub fn bind(&mut self, node: NodeId, actor: ActorId) {
        assert!(node.0 < self.node_to_actor.len(), "unknown node {node}");
        assert!(
            self.node_to_actor[node.0].is_none(),
            "node {node} already bound"
        );
        assert!(
            !self.actor_to_node.contains_key(&actor),
            "actor {actor} already bound"
        );
        self.node_to_actor[node.0] = Some(actor);
        self.actor_to_node.insert(actor, node);
    }

    /// The actor bound to `node`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] if the node id is out of range and
    /// [`NetError::UnboundNode`] if no actor has been bound to it.
    pub fn actor_of(&self, node: NodeId) -> Result<ActorId, NetError> {
        self.node_to_actor
            .get(node.0)
            .ok_or(NetError::UnknownNode(node))?
            .ok_or(NetError::UnboundNode(node))
    }

    /// The node bound to `actor`, if any.
    pub fn node_of(&self, actor: ActorId) -> Option<NodeId> {
        self.actor_to_node.get(&actor).copied()
    }

    /// End-to-end delay along the shortest path between two nodes.
    ///
    /// # Panics
    ///
    /// Panics if the nodes are disconnected.
    pub fn delay(&self, from: NodeId, to: NodeId) -> SimDuration {
        let w = self.dist.distance(from, to);
        assert!(!w.is_infinite(), "no path between {from} and {to}");
        w.as_duration()
    }

    /// Delay across the single edge `from`-`to`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NotAdjacent`] if there is no direct edge.
    pub fn edge_delay(&self, from: NodeId, to: NodeId) -> Result<SimDuration, NetError> {
        self.edge_weights
            .get(&(from, to))
            .copied()
            .ok_or(NetError::NotAdjacent(from, to))
    }

    /// The distance table (for cost computations).
    pub fn distances(&self) -> &DistanceTable {
        &self.dist
    }

    /// Sends `msg` from the actor at `from` to the actor at `to` with the
    /// end-to-end shortest-path delay plus `extra` (processing time and the
    /// like).
    ///
    /// A destination with no bound actor is a deployment wiring bug; the
    /// message is dropped and counted in [`Transport::wiring_errors`]
    /// rather than panicking inside an actor handler.
    pub fn send<M: Clone>(
        &self,
        ctx: &mut Ctx<'_, M>,
        from: NodeId,
        to: NodeId,
        msg: M,
        extra: SimDuration,
    ) {
        let delay = self.delay(from, to) + extra;
        match self.actor_of(to) {
            Ok(actor) => ctx.send(actor, msg, delay),
            Err(_) => self.wiring_errors.set(self.wiring_errors.get() + 1),
        }
    }

    /// Sends `msg` across the direct edge `from`-`to` (hop-by-hop
    /// protocols). Non-adjacent nodes or an unbound destination are counted
    /// in [`Transport::wiring_errors`] and the message is dropped.
    pub fn send_edge<M: Clone>(&self, ctx: &mut Ctx<'_, M>, from: NodeId, to: NodeId, msg: M) {
        match (self.edge_delay(from, to), self.actor_of(to)) {
            (Ok(delay), Ok(actor)) => ctx.send(actor, msg, delay),
            _ => self.wiring_errors.set(self.wiring_errors.get() + 1),
        }
    }

    /// Messages silently dropped by [`Transport::send`] /
    /// [`Transport::send_edge`] because of a binding or adjacency error.
    /// Zero on any correctly wired deployment.
    pub fn wiring_errors(&self) -> u64 {
        self.wiring_errors.get()
    }

    /// Registers an outage for the directed edge `from -> to`, mirroring
    /// what [`lems_sim::failure::FailurePlan`] records for nodes. The
    /// transport does not enforce outages (the engine's link-fault plan
    /// does); it answers ground-truth queries ([`Transport::is_link_up`],
    /// [`Transport::reachable`]) so experiments can cross-check simulated
    /// behaviour against the plan.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NotAdjacent`] if there is no direct edge.
    pub fn add_link_outage(
        &self,
        from: NodeId,
        to: NodeId,
        outage: Outage,
    ) -> Result<(), NetError> {
        if !self.edge_weights.contains_key(&(from, to)) {
            return Err(NetError::NotAdjacent(from, to));
        }
        self.link_outages
            .borrow_mut()
            .entry((from, to))
            .or_default()
            .push(outage);
        Ok(())
    }

    /// Registers `outage` for both directions of the edge `a`-`b`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NotAdjacent`] if there is no direct edge.
    pub fn add_link_outage_bidi(
        &self,
        a: NodeId,
        b: NodeId,
        outage: Outage,
    ) -> Result<(), NetError> {
        self.add_link_outage(a, b, outage)?;
        self.add_link_outage(b, a, outage)
    }

    /// True if the directed edge `from -> to` exists and carries traffic at
    /// `t` under the registered outages.
    pub fn is_link_up(&self, from: NodeId, to: NodeId, t: SimTime) -> bool {
        self.edge_weights.contains_key(&(from, to))
            && self
                .link_outages
                .borrow()
                .get(&(from, to))
                .is_none_or(|list| !list.iter().any(|o| o.covers(t)))
    }

    /// Total number of registered directed edge outages.
    pub fn link_outage_count(&self) -> usize {
        self.link_outages.borrow().values().map(Vec::len).sum()
    }

    /// True if a path of up links leads from `from` to `to` at instant `t` —
    /// the partition ground truth, mirroring what
    /// [`FailurePlan::is_up`](lems_sim::failure::FailurePlan::is_up) answers
    /// for nodes. Unknown nodes are unreachable; a node always reaches
    /// itself.
    pub fn reachable(&self, from: NodeId, to: NodeId, t: SimTime) -> bool {
        let n = self.adjacency.len();
        if from.0 >= n || to.0 >= n {
            return false;
        }
        if from == to {
            return true;
        }
        let mut seen = vec![false; n];
        seen[from.0] = true;
        let mut frontier = VecDeque::from([from]);
        while let Some(u) = frontier.pop_front() {
            for &v in &self.adjacency[u.0] {
                if !seen[v.0] && self.is_link_up(u, v, t) {
                    if v == to {
                        return true;
                    }
                    seen[v.0] = true;
                    frontier.push_back(v);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Weight;
    use lems_sim::actor::{Actor, ActorSim};

    /// Every test scenario quiesces far below this; exhausting it means
    /// a stuck retry loop, which must fail the test rather than hang it.
    const EVENT_BUDGET: u64 = 100_000;

    fn g3() -> Graph {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), Weight::from_units(1.0));
        g.add_edge(NodeId(1), NodeId(2), Weight::from_units(2.0));
        g
    }

    #[test]
    fn delays_follow_shortest_paths() {
        let tr = Transport::new(&g3());
        assert_eq!(tr.delay(NodeId(0), NodeId(2)).as_units(), 3.0);
        assert_eq!(tr.edge_delay(NodeId(2), NodeId(1)).unwrap().as_units(), 2.0);
        assert_eq!(tr.delay(NodeId(1), NodeId(1)).as_units(), 0.0);
    }

    #[test]
    fn edge_delay_requires_adjacency() {
        let tr = Transport::new(&g3());
        assert_eq!(
            tr.edge_delay(NodeId(0), NodeId(2)),
            Err(crate::error::NetError::NotAdjacent(NodeId(0), NodeId(2)))
        );
    }

    #[test]
    fn lookups_report_unbound_and_unknown_nodes() {
        let mut tr = Transport::new(&g3());
        tr.bind(NodeId(0), ActorId(7));
        assert_eq!(tr.actor_of(NodeId(0)), Ok(ActorId(7)));
        assert_eq!(
            tr.actor_of(NodeId(1)),
            Err(crate::error::NetError::UnboundNode(NodeId(1)))
        );
        assert_eq!(
            tr.actor_of(NodeId(99)),
            Err(crate::error::NetError::UnknownNode(NodeId(99)))
        );
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_panics() {
        let mut tr = Transport::new(&g3());
        tr.bind(NodeId(0), ActorId(1));
        tr.bind(NodeId(0), ActorId(2));
    }

    struct Sink {
        got: Vec<u32>,
    }
    impl Actor for Sink {
        type Msg = u32;
        fn on_message(&mut self, _f: ActorId, m: u32, _c: &mut lems_sim::actor::Ctx<'_, u32>) {
            self.got.push(m);
        }
    }

    struct Src {
        tr: Transport,
        me: NodeId,
        dest: NodeId,
    }
    impl Actor for Src {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut lems_sim::actor::Ctx<'_, u32>) {
            self.tr
                .send(ctx, self.me, self.dest, 42, SimDuration::from_units(0.5));
        }
        fn on_message(&mut self, _f: ActorId, _m: u32, _c: &mut lems_sim::actor::Ctx<'_, u32>) {}
    }

    #[test]
    fn send_to_unbound_node_is_counted_not_fatal() {
        let g = g3();
        let mut sim: ActorSim<u32> = ActorSim::new(1);
        let mut tr = Transport::new(&g);
        let src_actor = ActorId(0);
        tr.bind(NodeId(0), src_actor);
        // NodeId(2) is never bound: the send must be dropped and counted.
        let id = sim.add_actor(Src {
            tr,
            me: NodeId(0),
            dest: NodeId(2),
        });
        assert_eq!(id, src_actor);
        assert!(sim.run_to_quiescence_bounded(EVENT_BUDGET));
        let s: &Src = sim.actor(src_actor).unwrap();
        assert_eq!(s.tr.wiring_errors(), 1);
    }

    #[test]
    fn link_outages_answer_ground_truth_queries() {
        let tr = Transport::new(&g3());
        let t = SimTime::from_units;
        let cut = Outage::new(t(5.0), t(9.0)).unwrap();
        tr.add_link_outage_bidi(NodeId(0), NodeId(1), cut).unwrap();
        assert!(tr.is_link_up(NodeId(0), NodeId(1), t(4.9)));
        assert!(!tr.is_link_up(NodeId(0), NodeId(1), t(5.0)));
        assert!(!tr.is_link_up(NodeId(1), NodeId(0), t(8.9)));
        assert!(tr.is_link_up(NodeId(0), NodeId(1), t(9.0)));
        // A pair with no direct edge is never "up".
        assert!(!tr.is_link_up(NodeId(0), NodeId(2), t(0.0)));
        assert_eq!(tr.link_outage_count(), 2);
        assert_eq!(
            tr.add_link_outage(NodeId(0), NodeId(2), cut),
            Err(crate::error::NetError::NotAdjacent(NodeId(0), NodeId(2)))
        );
    }

    #[test]
    fn reachable_reflects_partitions() {
        // Path topology 0-1-2: cutting 0-1 partitions {0} from {1, 2}.
        let tr = Transport::new(&g3());
        let t = SimTime::from_units;
        tr.add_link_outage_bidi(NodeId(0), NodeId(1), Outage::new(t(5.0), t(9.0)).unwrap())
            .unwrap();
        assert!(tr.reachable(NodeId(0), NodeId(2), t(4.0)));
        assert!(!tr.reachable(NodeId(0), NodeId(2), t(6.0)));
        assert!(!tr.reachable(NodeId(2), NodeId(0), t(6.0)));
        assert!(
            tr.reachable(NodeId(1), NodeId(2), t(6.0)),
            "far side intact"
        );
        assert!(
            tr.reachable(NodeId(0), NodeId(2), t(9.0)),
            "heals on repair"
        );
        assert!(tr.reachable(NodeId(0), NodeId(0), t(6.0)), "self-reachable");
        assert!(!tr.reachable(NodeId(0), NodeId(99), t(0.0)));
    }

    #[test]
    fn asymmetric_cut_blocks_one_direction_only() {
        let tr = Transport::new(&g3());
        let t = SimTime::from_units;
        tr.add_link_outage(NodeId(1), NodeId(2), Outage::new(t(0.0), t(10.0)).unwrap())
            .unwrap();
        assert!(!tr.reachable(NodeId(0), NodeId(2), t(1.0)));
        assert!(tr.reachable(NodeId(2), NodeId(0), t(1.0)));
    }

    #[test]
    fn send_reaches_bound_actor_with_topology_delay() {
        let g = g3();
        let mut sim: ActorSim<u32> = ActorSim::new(1);
        let sink = sim.add_actor(Sink { got: Vec::new() });

        let mut tr = Transport::new(&g);
        tr.bind(NodeId(2), sink);
        // Bind source node now; the Src actor id is created after but the
        // transport only needs the destination binding for sending.
        let src_actor = ActorId(1);
        tr.bind(NodeId(0), src_actor);

        let id = sim.add_actor(Src {
            tr,
            me: NodeId(0),
            dest: NodeId(2),
        });
        assert_eq!(id, src_actor);
        assert!(sim.run_to_quiescence_bounded(EVENT_BUDGET));
        let s: &Sink = sim.actor(sink).unwrap();
        assert_eq!(s.got, vec![42]);
        assert_eq!(sim.now().as_units(), 3.5);
    }
}
