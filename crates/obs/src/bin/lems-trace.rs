//! `lems-trace` — inspect deterministic telemetry dumps.
//!
//! ```text
//! lems-trace timeline <dump.jsonl> --msg <span>   per-message lifecycle
//! lems-trace servers  <dump.jsonl>                per-server counters/gauges
//! lems-trace summary  <dump.jsonl>                totals + latency percentiles
//! lems-trace audit    <dump.jsonl> [--open-ok]    span conservation check
//! lems-trace top      <dump.jsonl>                hottest actor/event cells
//! lems-trace queues   <dump.jsonl>                event-queue depth over time
//! lems-trace prom     <dump.jsonl>                Prometheus text snapshot
//! ```
//!
//! `--msg` accepts `s3` or `3`. `audit` exits nonzero on any conservation
//! violation; pass `--open-ok` when the dump comes from a run that was cut
//! off before draining (open-ended spans are then not violations). `top`
//! and `queues` need a dump from a profiled run (schema v3, `enable_prof`).

use std::fmt::Write as _;
use std::process::ExitCode;

use lems_obs::inspect::Dump;

const USAGE: &str = "usage: lems-trace <timeline|servers|summary|audit|top|queues|prom> \
                     <dump.jsonl> [--msg <span>] [--open-ok]";

fn run() -> Result<String, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, path) = match (args.first(), args.get(1)) {
        (Some(c), Some(p)) => (c.as_str(), p.as_str()),
        _ => return Err(USAGE.to_owned()),
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let dump = Dump::parse(&text)?;
    match cmd {
        "timeline" => {
            let span = args
                .iter()
                .position(|a| a == "--msg")
                .and_then(|i| args.get(i + 1))
                .ok_or_else(|| format!("timeline needs --msg <span>\n{USAGE}"))?;
            let id: u64 = span
                .strip_prefix('s')
                .unwrap_or(span)
                .parse()
                .map_err(|_| format!("`{span}` is not a span id (expected s<N> or N)"))?;
            dump.timeline(id)
        }
        "servers" => Ok(dump.servers()),
        "summary" => Ok(dump.summary()),
        "top" => dump.top(),
        "queues" => dump.queues(),
        "prom" => Ok(dump.prom()),
        "audit" => {
            let require_terminal = !args.iter().any(|a| a == "--open-ok");
            let report = dump.audit(require_terminal);
            let mut out = format!("{report}\n");
            for v in &report.violations {
                let _ = writeln!(out, "  violation: {v}");
            }
            if report.is_clean() {
                Ok(out)
            } else {
                Err(out)
            }
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
