//! Serialising one run's telemetry into a deterministic JSONL dump.
//!
//! The line order is a pure function of the run: header first, then span
//! events in record order (the span log is append-only and the engine is
//! deterministic), then store-recovery lines in recovery order, then
//! metric lines grouped by scope in the order the deployment lists them
//! (node order), with counters, gauges, and histograms each in name order
//! (`BTreeMap` iteration), then per-store durability metrics in node
//! order, then kernel-profiler samples in the profiler's deterministic
//! order. No wall clock,
//! no host names, no environment — a seeded run exports byte-identical
//! bytes every time.

use lems_core::store::{StoreMetrics, StoreRecovery};
use lems_sim::metrics::MetricsRegistry;
use lems_sim::prof::ProfSample;
use lems_sim::span::SpanLog;
use lems_sim::time::SimTime;

use crate::schema::{ObsLine, OBS_SCHEMA_VERSION};

/// Everything one dump describes: a labelled run's span log and its
/// per-scope metric registries.
pub struct RunTelemetry<'a> {
    /// Scenario or experiment id stamped into the header.
    pub run: &'a str,
    /// Engine seed of the run.
    pub seed: u64,
    /// Simulated time at quiescence (gauge averages integrate to here).
    pub finished_at: SimTime,
    /// The run's span log.
    pub spans: &'a SpanLog,
    /// Store-recovery reports, in recovery order (empty when no server
    /// crashed or the deployment predates durable storage).
    pub recoveries: &'a [StoreRecovery],
    /// Per-scope metric registries, in deployment (node) order.
    pub scopes: &'a [(String, MetricsRegistry)],
    /// Per-server store durability metrics, in deployment (node) order
    /// (empty when no server has a durable backend).
    pub store: &'a [(String, StoreMetrics)],
    /// Kernel-profiler samples in the profiler's deterministic order
    /// (empty when the run did not enable profiling).
    pub profile: &'a [ProfSample],
}

/// Builds the typed line sequence for `run`.
///
/// # Errors
///
/// Refuses to export a lossy span log (events were dropped by a capacity
/// bound): a truncated dump would silently pass for complete evidence.
pub fn export_lines(run: &RunTelemetry<'_>) -> Result<Vec<ObsLine>, String> {
    let dropped = run.spans.dropped_events();
    if dropped > 0 {
        return Err(format!(
            "span log dropped {dropped} event(s); refusing to export a truncated dump"
        ));
    }
    let mut lines = Vec::with_capacity(1 + run.spans.events().len());
    lines.push(ObsLine::Header {
        schema_version: OBS_SCHEMA_VERSION,
        run: run.run.to_owned(),
        seed: run.seed,
        finished_at_ticks: run.finished_at.as_ticks(),
    });
    for e in run.spans.events() {
        lines.push(ObsLine::Span {
            at_ticks: e.at.as_ticks(),
            span: e.span.0,
            stage: e.stage.name().to_owned(),
            site: e.site,
            peer: e.peer,
            detail: e.detail,
        });
    }
    for r in run.recoveries {
        lines.push(ObsLine::Recovery {
            at_ticks: r.at.as_ticks(),
            site: r.site,
            backend: r.backend.to_owned(),
            replayed_records: r.replayed_records,
            recovered_messages: r.recovered_messages,
            recovered_pending: r.recovered_pending,
            recovered_forwards: r.recovered_forwards,
            lost_messages: r.lost_messages,
            torn_bytes: r.torn_bytes,
            segments: r.segments,
        });
    }
    for (scope, m) in run.scopes {
        for (name, value) in m.counters() {
            lines.push(ObsLine::Counter {
                scope: scope.clone(),
                name: name.to_owned(),
                value,
            });
        }
        for (name, g) in m.gauges() {
            lines.push(ObsLine::Gauge {
                scope: scope.clone(),
                name: name.to_owned(),
                current: g.current(),
                average: g.average(run.finished_at),
            });
        }
        for (name, h) in m.histograms() {
            lines.push(ObsLine::Hist {
                scope: scope.clone(),
                name: name.to_owned(),
                count: h.count(),
                mean: h.mean(),
                p50: h.quantile(0.50).unwrap_or(0.0),
                p90: h.quantile(0.90).unwrap_or(0.0),
                p99: h.quantile(0.99).unwrap_or(0.0),
                max: h.max().unwrap_or(0.0),
            });
        }
    }
    for (scope, m) in run.store {
        lines.push(ObsLine::Metrics {
            scope: scope.clone(),
            appended_records: m.appended_records,
            appended_bytes: m.appended_bytes,
            fsyncs: m.fsyncs,
            rotations: m.rotations,
            compactions: m.compactions,
            compaction_chunks: m.compaction_chunks,
            replayed_records: m.replayed_records,
            replayed_bytes: m.replayed_bytes,
            io_errors: m.io_errors,
        });
    }
    for s in run.profile {
        lines.push(ObsLine::Profile {
            scope: s.scope.to_owned(),
            name: s.name.clone(),
            at_ticks: s.at.as_ticks(),
            count: s.count,
            ticks: s.ticks,
        });
    }
    Ok(lines)
}

/// Serialises `run` to JSONL text (one compact JSON object per line,
/// trailing newline).
///
/// # Errors
///
/// As [`export_lines`], plus serialisation failures.
pub fn export_jsonl(run: &RunTelemetry<'_>) -> Result<String, String> {
    let lines = export_lines(run)?;
    let mut out = String::new();
    for line in &lines {
        let json = serde_json::to_string(line).map_err(|e| e.to_string())?;
        out.push_str(&json);
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lems_sim::span::{SpanStage, NO_NODE};
    use lems_sim::time::SimDuration;

    fn t(u: f64) -> SimTime {
        SimTime::from_units(u)
    }

    fn sample_run() -> (SpanLog, Vec<(String, MetricsRegistry)>) {
        let mut log = SpanLog::unbounded();
        let s = log.open_keyed(1, t(1.0), SpanStage::Submitted, 0);
        log.record(t(2.0), s, SpanStage::Deposited, 4, NO_NODE, 0);
        log.record(t(9.0), s, SpanStage::Retrieved, 0, 4, 0);
        let mut m = MetricsRegistry::new();
        m.inc("deposited");
        m.gauge_add(t(2.0), "storage", 1.0);
        m.gauge_add(t(9.0), "storage", -1.0);
        m.observe("delivery_latency", 1.0);
        (log, vec![("server:n4".to_owned(), m)])
    }

    #[test]
    fn export_is_deterministic_and_ordered() {
        let (log, scopes) = sample_run();
        let store = vec![(
            "server:n4".to_owned(),
            StoreMetrics {
                appended_records: 9,
                fsyncs: 9,
                ..StoreMetrics::default()
            },
        )];
        let profile = vec![ProfSample {
            scope: "dispatch",
            name: "server/deliver".to_owned(),
            at: SimTime::ZERO,
            count: 3,
            ticks: 42,
        }];
        let run = RunTelemetry {
            run: "demo",
            seed: 7,
            finished_at: t(10.0),
            spans: &log,
            recoveries: &[],
            scopes: &scopes,
            store: &store,
            profile: &profile,
        };
        let a = export_jsonl(&run).expect("exports");
        let b = export_jsonl(&run).expect("exports");
        assert_eq!(a, b, "same run must export byte-identical text");
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(
            lines.len(),
            1 + 3 + 3 + 1 + 1,
            "header + spans + metrics + store + profile"
        );
        assert!(lines[0].contains("Header"));
        assert!(lines[1].contains("submitted"));
        assert!(lines[4].contains("Counter"));
        assert!(lines[7].contains("Metrics"));
        assert!(lines[8].contains("Profile"));
    }

    #[test]
    fn lossy_span_log_is_refused() {
        let mut log = SpanLog::bounded(1);
        let s = log.open(t(0.0), SpanStage::Submitted, 0);
        log.record(t(1.0), s, SpanStage::Retrieved, 0, NO_NODE, 0);
        let run = RunTelemetry {
            run: "demo",
            seed: 7,
            finished_at: t(2.0),
            spans: &log,
            recoveries: &[],
            scopes: &[],
            store: &[],
            profile: &[],
        };
        let err = export_jsonl(&run).expect_err("must refuse");
        assert!(err.contains("dropped 1 event"));
    }

    #[test]
    fn gauge_average_integrates_to_finish_time() {
        let mut m = MetricsRegistry::new();
        m.gauge_add(t(2.0), "storage", 4.0);
        let scopes = vec![("server:n0".to_owned(), m)];
        let log = SpanLog::unbounded();
        let run = RunTelemetry {
            run: "demo",
            seed: 1,
            finished_at: SimTime::ZERO.saturating_add(SimDuration::from_units(4.0)),
            spans: &log,
            recoveries: &[],
            scopes: &scopes,
            store: &[],
            profile: &[],
        };
        let lines = export_lines(&run).expect("exports");
        let Some(ObsLine::Gauge {
            average, current, ..
        }) = lines.last()
        else {
            panic!("expected a gauge line");
        };
        // 0 for [0,2), 4 for [2,4) => average 2 over the run.
        assert!((average - 2.0).abs() < 1e-9);
        assert!((current - 4.0).abs() < 1e-9);
    }
}
