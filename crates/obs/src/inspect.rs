//! Reading telemetry dumps back: parsing, per-message timelines,
//! per-server tables, latency summaries, and the exported-evidence span
//! audit.
//!
//! Everything here operates on the JSONL text alone — the inspector never
//! needs the simulation that produced the dump, so `lems-trace` can
//! examine dumps from any `repro-*` or `lems-check` run after the fact.

use std::fmt::Write as _;

use lems_sim::span::{audit_spans, SpanAuditReport, SpanEvent, SpanId, SpanLog, SpanStage};
use lems_sim::time::SimTime;

use crate::schema::{ObsLine, OBS_SCHEMA_VERSION};

/// One parsed histogram line.
#[derive(Clone, Debug, PartialEq)]
pub struct HistSummary {
    /// Scope the histogram belongs to.
    pub scope: String,
    /// Histogram name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Mean of the raw observations.
    pub mean: f64,
    /// 50th percentile.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Exact maximum.
    pub max: f64,
}

/// One parsed store-recovery line.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoverySummary {
    /// Recovery time in ticks.
    pub at_ticks: u64,
    /// Node that recovered.
    pub site: u64,
    /// Backend that performed recovery.
    pub backend: String,
    /// WAL records replayed.
    pub replayed_records: u64,
    /// Mailbox messages present after recovery.
    pub recovered_messages: u64,
    /// Drained-but-unacked messages present after recovery.
    pub recovered_pending: u64,
    /// Unsettled forwards re-routed after recovery.
    pub recovered_forwards: u64,
    /// Stored messages the crash destroyed.
    pub lost_messages: u64,
    /// Torn-tail bytes truncated during replay.
    pub torn_bytes: u64,
    /// Live WAL segments after recovery.
    pub segments: u64,
}

/// A fully parsed telemetry dump.
#[derive(Clone, Debug, Default)]
pub struct Dump {
    /// Scenario or experiment id from the header.
    pub run: String,
    /// Engine seed from the header.
    pub seed: u64,
    /// Simulated finish time from the header, in ticks.
    pub finished_at_ticks: u64,
    /// Span events, in record order.
    pub spans: Vec<SpanEvent>,
    /// Store-recovery reports, in recovery order.
    pub recoveries: Vec<RecoverySummary>,
    /// `(scope, name, value)` counters, in dump order.
    pub counters: Vec<(String, String, u64)>,
    /// `(scope, name, current, average)` gauges, in dump order.
    pub gauges: Vec<(String, String, f64, f64)>,
    /// Histogram summaries, in dump order.
    pub hists: Vec<HistSummary>,
}

impl Dump {
    /// Parses JSONL text produced by [`crate::export::export_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed JSON, a
    /// missing or mismatched header, or an unknown span stage.
    pub fn parse(text: &str) -> Result<Dump, String> {
        let mut dump = Dump::default();
        let mut saw_header = false;
        for (i, raw) in text.lines().enumerate() {
            if raw.trim().is_empty() {
                continue;
            }
            let line: ObsLine =
                serde_json::from_str(raw).map_err(|e| format!("line {}: {e}", i + 1))?;
            match line {
                ObsLine::Header {
                    schema_version,
                    run,
                    seed,
                    finished_at_ticks,
                } => {
                    if schema_version != OBS_SCHEMA_VERSION {
                        return Err(format!(
                            "line {}: schema version {schema_version}, \
                             this inspector reads {OBS_SCHEMA_VERSION}",
                            i + 1
                        ));
                    }
                    dump.run = run;
                    dump.seed = seed;
                    dump.finished_at_ticks = finished_at_ticks;
                    saw_header = true;
                }
                ObsLine::Span {
                    at_ticks,
                    span,
                    stage,
                    site,
                    peer,
                    detail,
                } => {
                    let stage = SpanStage::from_name(&stage)
                        .ok_or_else(|| format!("line {}: unknown stage `{stage}`", i + 1))?;
                    dump.spans.push(SpanEvent {
                        at: SimTime::from_ticks(at_ticks),
                        span: SpanId(span),
                        stage,
                        site,
                        peer,
                        detail,
                    });
                }
                ObsLine::Recovery {
                    at_ticks,
                    site,
                    backend,
                    replayed_records,
                    recovered_messages,
                    recovered_pending,
                    recovered_forwards,
                    lost_messages,
                    torn_bytes,
                    segments,
                } => dump.recoveries.push(RecoverySummary {
                    at_ticks,
                    site,
                    backend,
                    replayed_records,
                    recovered_messages,
                    recovered_pending,
                    recovered_forwards,
                    lost_messages,
                    torn_bytes,
                    segments,
                }),
                ObsLine::Counter { scope, name, value } => {
                    dump.counters.push((scope, name, value));
                }
                ObsLine::Gauge {
                    scope,
                    name,
                    current,
                    average,
                } => dump.gauges.push((scope, name, current, average)),
                ObsLine::Hist {
                    scope,
                    name,
                    count,
                    mean,
                    p50,
                    p90,
                    p99,
                    max,
                } => dump.hists.push(HistSummary {
                    scope,
                    name,
                    count,
                    mean,
                    p50,
                    p90,
                    p99,
                    max,
                }),
            }
        }
        if !saw_header {
            return Err("dump has no Header line".to_owned());
        }
        Ok(dump)
    }

    /// The distinct scopes, in first-appearance order.
    pub fn scopes(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        let names = self
            .counters
            .iter()
            .map(|(s, _, _)| s.as_str())
            .chain(self.gauges.iter().map(|(s, _, _, _)| s.as_str()))
            .chain(self.hists.iter().map(|h| h.scope.as_str()));
        for s in names {
            if !out.contains(&s) {
                out.push(s);
            }
        }
        out
    }

    /// The causal timeline of one span: its events in order, one per line.
    /// Returns an error naming the span when the dump has no events for it.
    ///
    /// # Errors
    ///
    /// When no event carries the requested span id.
    pub fn timeline(&self, span: u64) -> Result<String, String> {
        let events: Vec<&SpanEvent> = self.spans.iter().filter(|e| e.span.0 == span).collect();
        if events.is_empty() {
            return Err(format!("no events for span s{span} in this dump"));
        }
        let mut out = format!("span s{span} — {} event(s)\n", events.len());
        for e in events {
            let _ = writeln!(out, "  {e}");
        }
        Ok(out)
    }

    /// A per-scope table of every counter and gauge: the per-server view
    /// (the paper's server-utilisation lens).
    pub fn servers(&self) -> String {
        let mut out = String::new();
        for scope in self.scopes() {
            let _ = writeln!(out, "{scope}");
            for (s, name, value) in &self.counters {
                if s == scope {
                    let _ = writeln!(out, "  {name} = {value}");
                }
            }
            for (s, name, current, average) in &self.gauges {
                if s == scope {
                    let _ = writeln!(
                        out,
                        "  {name} = {current} (time-weighted mean {average:.3})"
                    );
                }
            }
        }
        out
    }

    /// Latency percentiles plus fleet-wide counter totals.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "run `{}` seed {} finished at {} tick(s): {} span event(s)\n",
            self.run,
            self.seed,
            self.finished_at_ticks,
            self.spans.len()
        );
        for r in &self.recoveries {
            let _ = writeln!(
                out,
                "  recovery at {} tick(s): n{} via {} — {} record(s) replayed, \
                 {} stored / {} pending / {} forward(s) recovered, {} lost, \
                 {} torn byte(s), {} segment(s)",
                r.at_ticks,
                r.site,
                r.backend,
                r.replayed_records,
                r.recovered_messages,
                r.recovered_pending,
                r.recovered_forwards,
                r.lost_messages,
                r.torn_bytes,
                r.segments
            );
        }
        let mut totals: Vec<(&str, u64)> = Vec::new();
        for (_, name, value) in &self.counters {
            match totals.iter_mut().find(|(n, _)| n == name) {
                Some((_, v)) => *v += value,
                None => totals.push((name, *value)),
            }
        }
        totals.sort_unstable();
        for (name, value) in totals {
            let _ = writeln!(out, "  {name} = {value}");
        }
        if !self.hists.is_empty() {
            let _ = writeln!(
                out,
                "  {:<28} {:>8} {:>9} {:>9} {:>9} {:>9}",
                "latency", "count", "p50", "p90", "p99", "max"
            );
            for h in &self.hists {
                let _ = writeln!(
                    out,
                    "  {:<28} {:>8} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
                    format!("{}/{}", h.scope, h.name),
                    h.count,
                    h.p50,
                    h.p90,
                    h.p99,
                    h.max
                );
            }
        }
        out
    }

    /// Re-runs the span conservation audit on the exported events — the
    /// same checker the simulator applies in-process, now on the dump as
    /// the evidence.
    pub fn audit(&self, require_terminal: bool) -> SpanAuditReport {
        let log = SpanLog::from_events(self.spans.clone());
        audit_spans(&log, require_terminal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{export_jsonl, RunTelemetry};
    use lems_sim::metrics::MetricsRegistry;
    use lems_sim::span::NO_NODE;

    fn t(u: f64) -> SimTime {
        SimTime::from_units(u)
    }

    fn demo_dump() -> Dump {
        let mut log = SpanLog::unbounded();
        let s = log.open_keyed(1, t(1.0), SpanStage::Submitted, 0);
        log.record(t(1.5), s, SpanStage::Probe, 0, 4, 0);
        log.record(t(2.0), s, SpanStage::Deposited, 4, NO_NODE, 0);
        log.record(t(9.0), s, SpanStage::Retrieved, 0, 4, 0);
        let c = log.open(t(8.0), SpanStage::CheckStarted, 0);
        log.record(t(9.0), c, SpanStage::CheckDone, 0, 4, 1);
        let mut m = MetricsRegistry::new();
        m.inc("deposited");
        m.gauge_add(t(2.0), "storage", 1.0);
        m.observe("delivery_latency", 1.0);
        let scopes = vec![("server:n4".to_owned(), m)];
        let recoveries = vec![lems_core::store::StoreRecovery {
            at: t(5.0),
            site: 4,
            backend: "wal",
            replayed_records: 12,
            recovered_messages: 1,
            recovered_pending: 0,
            recovered_forwards: 0,
            lost_messages: 0,
            torn_bytes: 7,
            segments: 1,
        }];
        let text = export_jsonl(&RunTelemetry {
            run: "demo",
            seed: 7,
            finished_at: t(10.0),
            spans: &log,
            recoveries: &recoveries,
            scopes: &scopes,
        })
        .expect("exports");
        Dump::parse(&text).expect("parses")
    }

    #[test]
    fn round_trip_preserves_everything() {
        let d = demo_dump();
        assert_eq!(d.run, "demo");
        assert_eq!(d.seed, 7);
        assert_eq!(d.spans.len(), 6);
        assert_eq!(
            d.counters,
            vec![("server:n4".into(), "deposited".into(), 1)]
        );
        assert_eq!(d.gauges.len(), 1);
        assert_eq!(d.hists.len(), 1);
        assert_eq!(d.scopes(), vec!["server:n4"]);
        assert_eq!(d.recoveries.len(), 1);
        assert_eq!(d.recoveries[0].backend, "wal");
        assert_eq!(d.recoveries[0].replayed_records, 12);
        assert_eq!(d.recoveries[0].torn_bytes, 7);
    }

    #[test]
    fn timeline_lists_one_span_in_order() {
        let d = demo_dump();
        let tl = d.timeline(0).expect("span exists");
        assert!(tl.contains("4 event(s)"));
        assert!(tl.contains("submitted"));
        assert!(tl.contains("retrieved"));
        assert!(!tl.contains("check"), "span 1 must not leak in");
        assert!(d.timeline(99).is_err());
    }

    #[test]
    fn audit_matches_in_process_verdict() {
        let d = demo_dump();
        let report = d.audit(true);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.retrieved, 1);
        assert_eq!(report.checks_done, 1);
    }

    #[test]
    fn summary_and_servers_render() {
        let d = demo_dump();
        let s = d.summary();
        assert!(s.contains("deposited = 1"));
        assert!(s.contains("recovery at 5000000 tick(s): n4 via wal"));
        assert!(s.contains("server:n4/delivery_latency"));
        let sv = d.servers();
        assert!(sv.contains("server:n4"));
        assert!(sv.contains("storage"));
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(Dump::parse("").is_err(), "no header");
        assert!(Dump::parse("{\"nonsense\":1}\n").is_err());
        let good = export_jsonl(&RunTelemetry {
            run: "x",
            seed: 1,
            finished_at: t(1.0),
            spans: &SpanLog::unbounded(),
            recoveries: &[],
            scopes: &[],
        })
        .expect("exports");
        let bad = good.replace("\"schema_version\":2", "\"schema_version\":99");
        let err = Dump::parse(&bad).expect_err("version mismatch");
        assert!(err.contains("schema version 99"));
    }
}
