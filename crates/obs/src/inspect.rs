//! Reading telemetry dumps back: parsing, per-message timelines,
//! per-server tables, latency summaries, and the exported-evidence span
//! audit.
//!
//! Everything here operates on the JSONL text alone — the inspector never
//! needs the simulation that produced the dump, so `lems-trace` can
//! examine dumps from any `repro-*` or `lems-check` run after the fact.

use std::fmt::Write as _;

use lems_core::store::StoreMetrics;
use lems_sim::span::{audit_spans, SpanAuditReport, SpanEvent, SpanId, SpanLog, SpanStage};
use lems_sim::time::SimTime;

use crate::schema::{ObsLine, OBS_SCHEMA_VERSION};

/// One parsed histogram line.
#[derive(Clone, Debug, PartialEq)]
pub struct HistSummary {
    /// Scope the histogram belongs to.
    pub scope: String,
    /// Histogram name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Mean of the raw observations.
    pub mean: f64,
    /// 50th percentile.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Exact maximum.
    pub max: f64,
}

/// One parsed store-recovery line.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoverySummary {
    /// Recovery time in ticks.
    pub at_ticks: u64,
    /// Node that recovered.
    pub site: u64,
    /// Backend that performed recovery.
    pub backend: String,
    /// WAL records replayed.
    pub replayed_records: u64,
    /// Mailbox messages present after recovery.
    pub recovered_messages: u64,
    /// Drained-but-unacked messages present after recovery.
    pub recovered_pending: u64,
    /// Unsettled forwards re-routed after recovery.
    pub recovered_forwards: u64,
    /// Stored messages the crash destroyed.
    pub lost_messages: u64,
    /// Torn-tail bytes truncated during replay.
    pub torn_bytes: u64,
    /// Live WAL segments after recovery.
    pub segments: u64,
}

/// One parsed kernel-profiler sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileLine {
    /// Profiler scope: `dispatch`, `pool`, `queue`, or `shard`.
    pub scope: String,
    /// Sample name within the scope.
    pub name: String,
    /// Sim time the sample refers to, in ticks (0 for run aggregates).
    pub at_ticks: u64,
    /// Primary value: a count or a level.
    pub count: u64,
    /// Sim-time ticks attributed to the sample.
    pub ticks: u64,
}

/// A fully parsed telemetry dump.
#[derive(Clone, Debug, Default)]
pub struct Dump {
    /// Scenario or experiment id from the header.
    pub run: String,
    /// Engine seed from the header.
    pub seed: u64,
    /// Simulated finish time from the header, in ticks.
    pub finished_at_ticks: u64,
    /// Span events, in record order.
    pub spans: Vec<SpanEvent>,
    /// Store-recovery reports, in recovery order.
    pub recoveries: Vec<RecoverySummary>,
    /// `(scope, name, value)` counters, in dump order.
    pub counters: Vec<(String, String, u64)>,
    /// `(scope, name, current, average)` gauges, in dump order.
    pub gauges: Vec<(String, String, f64, f64)>,
    /// Histogram summaries, in dump order.
    pub hists: Vec<HistSummary>,
    /// `(scope, metrics)` per-store durability counters, in dump order.
    pub store: Vec<(String, StoreMetrics)>,
    /// Kernel-profiler samples, in dump order.
    pub profile: Vec<ProfileLine>,
}

impl Dump {
    /// Parses JSONL text produced by [`crate::export::export_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed JSON, a
    /// missing or mismatched header, or an unknown span stage.
    pub fn parse(text: &str) -> Result<Dump, String> {
        let mut dump = Dump::default();
        let mut saw_header = false;
        for (i, raw) in text.lines().enumerate() {
            if raw.trim().is_empty() {
                continue;
            }
            let line: ObsLine =
                serde_json::from_str(raw).map_err(|e| format!("line {}: {e}", i + 1))?;
            match line {
                ObsLine::Header {
                    schema_version,
                    run,
                    seed,
                    finished_at_ticks,
                } => {
                    if schema_version != OBS_SCHEMA_VERSION {
                        return Err(format!(
                            "line {}: schema version {schema_version}, \
                             this inspector reads {OBS_SCHEMA_VERSION}",
                            i + 1
                        ));
                    }
                    dump.run = run;
                    dump.seed = seed;
                    dump.finished_at_ticks = finished_at_ticks;
                    saw_header = true;
                }
                ObsLine::Span {
                    at_ticks,
                    span,
                    stage,
                    site,
                    peer,
                    detail,
                } => {
                    let stage = SpanStage::from_name(&stage)
                        .ok_or_else(|| format!("line {}: unknown stage `{stage}`", i + 1))?;
                    dump.spans.push(SpanEvent {
                        at: SimTime::from_ticks(at_ticks),
                        span: SpanId(span),
                        stage,
                        site,
                        peer,
                        detail,
                    });
                }
                ObsLine::Recovery {
                    at_ticks,
                    site,
                    backend,
                    replayed_records,
                    recovered_messages,
                    recovered_pending,
                    recovered_forwards,
                    lost_messages,
                    torn_bytes,
                    segments,
                } => dump.recoveries.push(RecoverySummary {
                    at_ticks,
                    site,
                    backend,
                    replayed_records,
                    recovered_messages,
                    recovered_pending,
                    recovered_forwards,
                    lost_messages,
                    torn_bytes,
                    segments,
                }),
                ObsLine::Counter { scope, name, value } => {
                    dump.counters.push((scope, name, value));
                }
                ObsLine::Gauge {
                    scope,
                    name,
                    current,
                    average,
                } => dump.gauges.push((scope, name, current, average)),
                ObsLine::Hist {
                    scope,
                    name,
                    count,
                    mean,
                    p50,
                    p90,
                    p99,
                    max,
                } => dump.hists.push(HistSummary {
                    scope,
                    name,
                    count,
                    mean,
                    p50,
                    p90,
                    p99,
                    max,
                }),
                ObsLine::Metrics {
                    scope,
                    appended_records,
                    appended_bytes,
                    fsyncs,
                    rotations,
                    compactions,
                    compaction_chunks,
                    replayed_records,
                    replayed_bytes,
                    io_errors,
                } => dump.store.push((
                    scope,
                    StoreMetrics {
                        appended_records,
                        appended_bytes,
                        fsyncs,
                        rotations,
                        compactions,
                        compaction_chunks,
                        replayed_records,
                        replayed_bytes,
                        io_errors,
                    },
                )),
                ObsLine::Profile {
                    scope,
                    name,
                    at_ticks,
                    count,
                    ticks,
                } => dump.profile.push(ProfileLine {
                    scope,
                    name,
                    at_ticks,
                    count,
                    ticks,
                }),
            }
        }
        if !saw_header {
            return Err("dump has no Header line".to_owned());
        }
        Ok(dump)
    }

    /// The distinct scopes, in first-appearance order.
    pub fn scopes(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        let names = self
            .counters
            .iter()
            .map(|(s, _, _)| s.as_str())
            .chain(self.gauges.iter().map(|(s, _, _, _)| s.as_str()))
            .chain(self.hists.iter().map(|h| h.scope.as_str()));
        for s in names {
            if !out.contains(&s) {
                out.push(s);
            }
        }
        out
    }

    /// The causal timeline of one span: its events in order, one per line.
    /// Returns an error naming the span when the dump has no events for it.
    ///
    /// # Errors
    ///
    /// When no event carries the requested span id.
    pub fn timeline(&self, span: u64) -> Result<String, String> {
        let events: Vec<&SpanEvent> = self.spans.iter().filter(|e| e.span.0 == span).collect();
        if events.is_empty() {
            return Err(format!("no events for span s{span} in this dump"));
        }
        let mut out = format!("span s{span} — {} event(s)\n", events.len());
        for e in events {
            let _ = writeln!(out, "  {e}");
        }
        Ok(out)
    }

    /// A per-scope table of every counter and gauge: the per-server view
    /// (the paper's server-utilisation lens).
    pub fn servers(&self) -> String {
        let mut out = String::new();
        for scope in self.scopes() {
            let _ = writeln!(out, "{scope}");
            for (s, name, value) in &self.counters {
                if s == scope {
                    let _ = writeln!(out, "  {name} = {value}");
                }
            }
            for (s, name, current, average) in &self.gauges {
                if s == scope {
                    let _ = writeln!(
                        out,
                        "  {name} = {current} (time-weighted mean {average:.3})"
                    );
                }
            }
        }
        out
    }

    /// Latency percentiles plus fleet-wide counter totals.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "run `{}` seed {} finished at {} tick(s): {} span event(s)\n",
            self.run,
            self.seed,
            self.finished_at_ticks,
            self.spans.len()
        );
        for r in &self.recoveries {
            let _ = writeln!(
                out,
                "  recovery at {} tick(s): n{} via {} — {} record(s) replayed, \
                 {} stored / {} pending / {} forward(s) recovered, {} lost, \
                 {} torn byte(s), {} segment(s)",
                r.at_ticks,
                r.site,
                r.backend,
                r.replayed_records,
                r.recovered_messages,
                r.recovered_pending,
                r.recovered_forwards,
                r.lost_messages,
                r.torn_bytes,
                r.segments
            );
        }
        let mut totals: Vec<(&str, u64)> = Vec::new();
        for (_, name, value) in &self.counters {
            match totals.iter_mut().find(|(n, _)| n == name) {
                Some((_, v)) => *v += value,
                None => totals.push((name, *value)),
            }
        }
        totals.sort_unstable();
        for (name, value) in totals {
            let _ = writeln!(out, "  {name} = {value}");
        }
        if !self.hists.is_empty() {
            let _ = writeln!(
                out,
                "  {:<28} {:>8} {:>9} {:>9} {:>9} {:>9}",
                "latency", "count", "p50", "p90", "p99", "max"
            );
            for h in &self.hists {
                let _ = writeln!(
                    out,
                    "  {:<28} {:>8} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
                    format!("{}/{}", h.scope, h.name),
                    h.count,
                    h.p50,
                    h.p90,
                    h.p99,
                    h.max
                );
            }
        }
        out
    }

    /// Re-runs the span conservation audit on the exported events — the
    /// same checker the simulator applies in-process, now on the dump as
    /// the evidence.
    pub fn audit(&self, require_terminal: bool) -> SpanAuditReport {
        let log = SpanLog::from_events(self.spans.clone());
        audit_spans(&log, require_terminal)
    }

    /// The hottest (actor-kind, event-kind) dispatch cells, ranked by
    /// sim-time busy attribution: where did the simulated time go?
    ///
    /// # Errors
    ///
    /// When the dump carries no profiler samples (the run did not enable
    /// profiling).
    pub fn top(&self) -> Result<String, String> {
        let mut cells: Vec<&ProfileLine> = self
            .profile
            .iter()
            .filter(|p| p.scope == "dispatch")
            .collect();
        if cells.is_empty() {
            return Err(
                "dump has no dispatch profile (was the run profiled? see enable_prof)".to_owned(),
            );
        }
        cells.sort_by(|a, b| {
            (b.ticks, b.count)
                .cmp(&(a.ticks, a.count))
                .then(a.name.cmp(&b.name))
        });
        let total_ticks: u64 = cells.iter().map(|c| c.ticks).sum();
        let total_count: u64 = cells.iter().map(|c| c.count).sum();
        let mut out = format!(
            "run `{}`: {} dispatch(es), {} busy tick(s) attributed\n",
            self.run, total_count, total_ticks
        );
        let _ = writeln!(
            out,
            "  {:<28} {:>10} {:>14} {:>7}",
            "kind/event", "count", "busy ticks", "busy%"
        );
        for c in cells {
            let share = if total_ticks == 0 {
                0.0
            } else {
                100.0 * c.ticks as f64 / total_ticks as f64
            };
            let _ = writeln!(
                out,
                "  {:<28} {:>10} {:>14} {:>6.1}%",
                c.name, c.count, c.ticks, share
            );
        }
        for scope in ["pool", "shard"] {
            let rows: Vec<&ProfileLine> =
                self.profile.iter().filter(|p| p.scope == scope).collect();
            if rows.is_empty() {
                continue;
            }
            let _ = writeln!(out, "{scope}");
            for r in rows {
                let _ = writeln!(out, "  {} = {}", r.name, r.count);
            }
        }
        Ok(out)
    }

    /// The event-queue health view: structure aggregates plus the
    /// depth-over-time sample table.
    ///
    /// # Errors
    ///
    /// When the dump carries no queue profile samples.
    pub fn queues(&self) -> Result<String, String> {
        let aggs: Vec<&ProfileLine> = self
            .profile
            .iter()
            .filter(|p| p.scope == "queue" && p.name != "depth-sample")
            .collect();
        let samples: Vec<&ProfileLine> = self
            .profile
            .iter()
            .filter(|p| p.scope == "queue" && p.name == "depth-sample")
            .collect();
        if aggs.is_empty() && samples.is_empty() {
            return Err(
                "dump has no queue profile (was the run profiled? see enable_prof)".to_owned(),
            );
        }
        let mut out = format!("run `{}`: event-queue health\n", self.run);
        for a in aggs {
            let _ = writeln!(out, "  {} = {}", a.name, a.count);
        }
        if !samples.is_empty() {
            let max = samples.iter().map(|s| s.count).max().unwrap_or(0).max(1);
            let _ = writeln!(
                out,
                "  {:<14} {:>8}  depth over time",
                "at (ticks)", "depth"
            );
            for s in &samples {
                let bar = "#".repeat(((s.count * 40).div_ceil(max)) as usize);
                let _ = writeln!(out, "  {:<14} {:>8}  {bar}", s.at_ticks, s.count);
            }
        }
        Ok(out)
    }

    /// The whole dump as a Prometheus text-format snapshot: counters,
    /// gauges, histogram summaries, store durability metrics, and profiler
    /// aggregates as labelled families. Purely a rendering — values come
    /// from the dump, so the snapshot is as deterministic as the run.
    /// (Depth-timeline samples are omitted; they are a time series, not a
    /// snapshot — see [`Dump::queues`].)
    pub fn prom(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        if !self.counters.is_empty() {
            out.push_str("# TYPE lems_counter counter\n");
            for (scope, name, value) in &self.counters {
                let _ = writeln!(
                    out,
                    "lems_counter{{scope=\"{}\",name=\"{}\"}} {value}",
                    esc(scope),
                    esc(name)
                );
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("# TYPE lems_gauge gauge\n");
            for (scope, name, current, _) in &self.gauges {
                let _ = writeln!(
                    out,
                    "lems_gauge{{scope=\"{}\",name=\"{}\"}} {current}",
                    esc(scope),
                    esc(name)
                );
            }
        }
        if !self.hists.is_empty() {
            out.push_str("# TYPE lems_latency summary\n");
            for h in &self.hists {
                let scope = esc(&h.scope);
                let name = esc(&h.name);
                for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                    let _ = writeln!(
                        out,
                        "lems_latency{{scope=\"{scope}\",name=\"{name}\",quantile=\"{q}\"}} {v}"
                    );
                }
                let _ = writeln!(
                    out,
                    "lems_latency_count{{scope=\"{scope}\",name=\"{name}\"}} {}",
                    h.count
                );
            }
        }
        if !self.store.is_empty() {
            out.push_str("# TYPE lems_store counter\n");
            for (scope, m) in &self.store {
                let scope = esc(scope);
                for (name, value) in [
                    ("appended_records", m.appended_records),
                    ("appended_bytes", m.appended_bytes),
                    ("fsyncs", m.fsyncs),
                    ("rotations", m.rotations),
                    ("compactions", m.compactions),
                    ("compaction_chunks", m.compaction_chunks),
                    ("replayed_records", m.replayed_records),
                    ("replayed_bytes", m.replayed_bytes),
                    ("io_errors", m.io_errors),
                ] {
                    let _ = writeln!(
                        out,
                        "lems_store{{scope=\"{scope}\",name=\"{name}\"}} {value}"
                    );
                }
            }
        }
        let prof: Vec<&ProfileLine> = self
            .profile
            .iter()
            .filter(|p| p.name != "depth-sample")
            .collect();
        if !prof.is_empty() {
            out.push_str("# TYPE lems_prof counter\n");
            for p in &prof {
                let _ = writeln!(
                    out,
                    "lems_prof{{scope=\"{}\",name=\"{}\"}} {}",
                    esc(&p.scope),
                    esc(&p.name),
                    p.count
                );
            }
            out.push_str("# TYPE lems_prof_busy_ticks counter\n");
            for p in &prof {
                if p.scope == "dispatch" {
                    let _ = writeln!(
                        out,
                        "lems_prof_busy_ticks{{scope=\"{}\",name=\"{}\"}} {}",
                        esc(&p.scope),
                        esc(&p.name),
                        p.ticks
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{export_jsonl, RunTelemetry};
    use lems_sim::metrics::MetricsRegistry;
    use lems_sim::span::NO_NODE;

    fn t(u: f64) -> SimTime {
        SimTime::from_units(u)
    }

    fn demo_dump() -> Dump {
        let mut log = SpanLog::unbounded();
        let s = log.open_keyed(1, t(1.0), SpanStage::Submitted, 0);
        log.record(t(1.5), s, SpanStage::Probe, 0, 4, 0);
        log.record(t(2.0), s, SpanStage::Deposited, 4, NO_NODE, 0);
        log.record(t(9.0), s, SpanStage::Retrieved, 0, 4, 0);
        let c = log.open(t(8.0), SpanStage::CheckStarted, 0);
        log.record(t(9.0), c, SpanStage::CheckDone, 0, 4, 1);
        let mut m = MetricsRegistry::new();
        m.inc("deposited");
        m.gauge_add(t(2.0), "storage", 1.0);
        m.observe("delivery_latency", 1.0);
        let scopes = vec![("server:n4".to_owned(), m)];
        let recoveries = vec![lems_core::store::StoreRecovery {
            at: t(5.0),
            site: 4,
            backend: "wal",
            replayed_records: 12,
            recovered_messages: 1,
            recovered_pending: 0,
            recovered_forwards: 0,
            lost_messages: 0,
            torn_bytes: 7,
            segments: 1,
        }];
        let store = vec![(
            "server:n4".to_owned(),
            StoreMetrics {
                appended_records: 20,
                appended_bytes: 4_100,
                fsyncs: 22,
                rotations: 1,
                compactions: 0,
                compaction_chunks: 0,
                replayed_records: 12,
                replayed_bytes: 2_400,
                io_errors: 0,
            },
        )];
        let profile = vec![
            lems_sim::prof::ProfSample {
                scope: "dispatch",
                name: "server/deliver".to_owned(),
                at: t(0.0),
                count: 30,
                ticks: 9_000,
            },
            lems_sim::prof::ProfSample {
                scope: "dispatch",
                name: "host/timer".to_owned(),
                at: t(0.0),
                count: 5,
                ticks: 1_000,
            },
            lems_sim::prof::ProfSample {
                scope: "queue",
                name: "depth".to_owned(),
                at: t(0.0),
                count: 0,
                ticks: 0,
            },
            lems_sim::prof::ProfSample {
                scope: "queue",
                name: "depth-sample".to_owned(),
                at: t(3.0),
                count: 17,
                ticks: 0,
            },
        ];
        let text = export_jsonl(&RunTelemetry {
            run: "demo",
            seed: 7,
            finished_at: t(10.0),
            spans: &log,
            recoveries: &recoveries,
            scopes: &scopes,
            store: &store,
            profile: &profile,
        })
        .expect("exports");
        Dump::parse(&text).expect("parses")
    }

    #[test]
    fn round_trip_preserves_everything() {
        let d = demo_dump();
        assert_eq!(d.run, "demo");
        assert_eq!(d.seed, 7);
        assert_eq!(d.spans.len(), 6);
        assert_eq!(
            d.counters,
            vec![("server:n4".into(), "deposited".into(), 1)]
        );
        assert_eq!(d.gauges.len(), 1);
        assert_eq!(d.hists.len(), 1);
        assert_eq!(d.scopes(), vec!["server:n4"]);
        assert_eq!(d.recoveries.len(), 1);
        assert_eq!(d.recoveries[0].backend, "wal");
        assert_eq!(d.recoveries[0].replayed_records, 12);
        assert_eq!(d.recoveries[0].torn_bytes, 7);
        assert_eq!(d.store.len(), 1);
        assert_eq!(d.store[0].0, "server:n4");
        assert_eq!(d.store[0].1.fsyncs, 22);
        assert_eq!(d.profile.len(), 4);
        assert_eq!(d.profile[0].name, "server/deliver");
        assert_eq!(d.profile[0].ticks, 9_000);
    }

    #[test]
    fn top_ranks_dispatch_cells_by_busy_ticks() {
        let d = demo_dump();
        let out = d.top().expect("profiled dump");
        let deliver = out.find("server/deliver").expect("hot cell present");
        let timer = out.find("host/timer").expect("cool cell present");
        assert!(deliver < timer, "rows must be ranked by busy ticks");
        assert!(out.contains("90.0%"), "busy share must be rendered:\n{out}");
        // A dump with no profile refuses, naming the likely cause.
        let mut bare = d.clone();
        bare.profile.clear();
        assert!(bare.top().unwrap_err().contains("enable_prof"));
    }

    #[test]
    fn queues_renders_aggregates_and_depth_timeline() {
        let d = demo_dump();
        let out = d.queues().expect("profiled dump");
        assert!(out.contains("depth = 0"));
        assert!(out.contains("17"), "depth sample value:\n{out}");
        assert!(out.contains('#'), "depth bar:\n{out}");
        let mut bare = d.clone();
        bare.profile.clear();
        assert!(bare.queues().is_err());
    }

    #[test]
    fn prom_snapshot_has_labelled_families() {
        let d = demo_dump();
        let out = d.prom();
        assert!(out.contains("# TYPE lems_counter counter"));
        assert!(out.contains("lems_counter{scope=\"server:n4\",name=\"deposited\"} 1"));
        assert!(out.contains("lems_store{scope=\"server:n4\",name=\"fsyncs\"} 22"));
        assert!(
            out.contains("lems_prof_busy_ticks{scope=\"dispatch\",name=\"server/deliver\"} 9000")
        );
        assert!(
            !out.contains("depth-sample"),
            "timeline samples are not a snapshot"
        );
        // Rendering twice is byte-identical (pure function of the dump).
        assert_eq!(out, d.prom());
    }

    #[test]
    fn timeline_lists_one_span_in_order() {
        let d = demo_dump();
        let tl = d.timeline(0).expect("span exists");
        assert!(tl.contains("4 event(s)"));
        assert!(tl.contains("submitted"));
        assert!(tl.contains("retrieved"));
        assert!(!tl.contains("check"), "span 1 must not leak in");
        assert!(d.timeline(99).is_err());
    }

    #[test]
    fn audit_matches_in_process_verdict() {
        let d = demo_dump();
        let report = d.audit(true);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.retrieved, 1);
        assert_eq!(report.checks_done, 1);
    }

    #[test]
    fn summary_and_servers_render() {
        let d = demo_dump();
        let s = d.summary();
        assert!(s.contains("deposited = 1"));
        assert!(s.contains("recovery at 5000000 tick(s): n4 via wal"));
        assert!(s.contains("server:n4/delivery_latency"));
        let sv = d.servers();
        assert!(sv.contains("server:n4"));
        assert!(sv.contains("storage"));
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(Dump::parse("").is_err(), "no header");
        assert!(Dump::parse("{\"nonsense\":1}\n").is_err());
        let good = export_jsonl(&RunTelemetry {
            run: "x",
            seed: 1,
            finished_at: t(1.0),
            spans: &SpanLog::unbounded(),
            recoveries: &[],
            scopes: &[],
            store: &[],
            profile: &[],
        })
        .expect("exports");
        let bad = good.replace("\"schema_version\":3", "\"schema_version\":99");
        let err = Dump::parse(&bad).expect_err("version mismatch");
        assert!(err.contains("schema version 99"));
    }
}
