//! # lems-obs — deterministic telemetry export and trace inspection
//!
//! The observability layer of the `lems` workspace. The simulator records
//! message-lifecycle spans ([`lems_sim::span`]) and per-actor metrics
//! ([`lems_sim::metrics`]); this crate turns one run's worth of both into
//! a schema-versioned JSONL document and reads such documents back for
//! inspection:
//!
//! * [`schema`] — the [`ObsLine`] wire format (one JSON object per line);
//! * [`export`] — serialises a run's span log + metric registries, in an
//!   order that is a pure function of the run (same seed ⇒ byte-identical
//!   output, no wall clock anywhere);
//! * [`inspect`] — parses a dump back into a typed [`inspect::Dump`] and
//!   renders per-message timelines, per-server tables, latency summaries,
//!   kernel-profiler views (`top`, `queues`), a Prometheus text snapshot,
//!   and re-runs the span conservation audit on the exported evidence.
//!
//! Schema v3 dumps also carry per-store durability metrics
//! ([`lems_core::store::StoreMetrics`]) and kernel-profiler samples
//! ([`lems_sim::prof::ProfSample`]) when the run enabled profiling.
//!
//! The `lems-trace` binary wraps [`inspect`] as a CLI:
//!
//! ```text
//! lems-trace timeline spans.jsonl --msg s0
//! lems-trace servers  spans.jsonl
//! lems-trace summary  spans.jsonl
//! lems-trace audit    spans.jsonl
//! lems-trace top      spans.jsonl
//! lems-trace queues   spans.jsonl
//! lems-trace prom     spans.jsonl
//! ```
//!
//! [`ObsLine`]: schema::ObsLine

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod inspect;
pub mod schema;
