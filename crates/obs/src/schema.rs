//! The JSONL wire format for exported telemetry.
//!
//! A dump is a sequence of lines, each one serialised [`ObsLine`]. The
//! first line is always [`ObsLine::Header`]; span lines follow in record
//! order, then metric lines grouped by scope. Times are simulated ticks
//! (`u64`, see [`lems_sim::time::TICKS_PER_UNIT`]) — never wall clock —
//! so a dump is a pure function of the run that produced it.

use serde::{Deserialize, Serialize};

/// Version stamp carried by every dump's header; bump when a field
/// changes meaning or disappears (additions are fine).
///
/// History: v1 — header/span/metric lines; v2 — store-recovery lines
/// ([`ObsLine::Recovery`]) between the span block and the metric block;
/// v3 — per-store durability metrics ([`ObsLine::Metrics`]) and kernel
/// profiler samples ([`ObsLine::Profile`]) after the metric block.
pub const OBS_SCHEMA_VERSION: u32 = 3;

/// One line of a telemetry dump.
///
/// Node fields (`site`, `peer`) carry raw node ids with `u64::MAX` as the
/// "none" sentinel, mirroring [`lems_sim::span::NO_NODE`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ObsLine {
    /// First line of every dump: what produced it.
    Header {
        /// Schema version (see [`OBS_SCHEMA_VERSION`]).
        schema_version: u32,
        /// Scenario or experiment id (e.g. `clean-cycle`, `getmail`).
        run: String,
        /// Engine seed of the run.
        seed: u64,
        /// Simulated time at quiescence, in ticks.
        finished_at_ticks: u64,
    },
    /// One span event, in record order.
    Span {
        /// Event time in simulated ticks.
        at_ticks: u64,
        /// Span id (dense, allocated in open order).
        span: u64,
        /// Stage name (see [`lems_sim::span::SpanStage::name`]).
        stage: String,
        /// Node where the event happened (`u64::MAX` = none).
        site: u64,
        /// The other node involved (`u64::MAX` = none).
        peer: u64,
        /// Stage-specific payload (attempt number, poll count, code).
        detail: u64,
    },
    /// One mailbox-store recovery (a server coming back from a crash),
    /// in recovery order.
    Recovery {
        /// Recovery time in simulated ticks.
        at_ticks: u64,
        /// Node that recovered.
        site: u64,
        /// Backend that performed recovery (e.g. `wal`, `mem-volatile`).
        backend: String,
        /// WAL records replayed (0 for in-memory backends).
        replayed_records: u64,
        /// Mailbox messages present after recovery.
        recovered_messages: u64,
        /// Drained-but-unacked messages present after recovery.
        recovered_pending: u64,
        /// Unsettled forward-journal entries re-routed after recovery.
        recovered_forwards: u64,
        /// Stored messages the crash destroyed (0 means durable).
        lost_messages: u64,
        /// Torn-tail bytes truncated from the log during replay.
        torn_bytes: u64,
        /// Live WAL segments after recovery.
        segments: u64,
    },
    /// One named counter of one scope.
    Counter {
        /// Scope name (e.g. `server:n4`, `host:n0`).
        scope: String,
        /// Counter name.
        name: String,
        /// Final value.
        value: u64,
    },
    /// One time-weighted gauge of one scope.
    Gauge {
        /// Scope name.
        scope: String,
        /// Gauge name.
        name: String,
        /// Value at the end of the run.
        current: f64,
        /// Time-weighted average over the whole run.
        average: f64,
    },
    /// One mailbox store's durability counters (WAL health), one line per
    /// server scope, after the metric block.
    Metrics {
        /// Scope name (e.g. `server:n4`).
        scope: String,
        /// Operation records appended (snapshots excluded).
        appended_records: u64,
        /// Operation-record payload bytes appended.
        appended_bytes: u64,
        /// Durability barriers (fsyncs) issued.
        fsyncs: u64,
        /// Segment rotations performed.
        rotations: u64,
        /// Compactions performed.
        compactions: u64,
        /// Snapshot records written across all compactions.
        compaction_chunks: u64,
        /// Records replayed by recovery scans, lifetime total.
        replayed_records: u64,
        /// Bytes scanned by recovery scans, lifetime total.
        replayed_bytes: u64,
        /// I/O errors observed.
        io_errors: u64,
    },
    /// One kernel-profiler sample (see [`lems_sim::prof::ProfSample`]),
    /// after the store-metrics block. Present only when the run enabled
    /// profiling; values are pure functions of sim time and counters.
    Profile {
        /// Profiler scope: `dispatch`, `pool`, `queue`, or `shard`.
        scope: String,
        /// Sample name within the scope (e.g. `server/deliver`).
        name: String,
        /// Sim time the sample refers to, in ticks (0 for run aggregates).
        at_ticks: u64,
        /// Primary value: a count or a level.
        count: u64,
        /// Sim-time ticks attributed to the sample (busy attribution).
        ticks: u64,
    },
    /// One latency histogram of one scope, reduced to its summary.
    Hist {
        /// Scope name.
        scope: String,
        /// Histogram name.
        name: String,
        /// Observations recorded.
        count: u64,
        /// Arithmetic mean of the raw observations.
        mean: f64,
        /// 50th percentile (upper bucket edge).
        p50: f64,
        /// 90th percentile (upper bucket edge).
        p90: f64,
        /// 99th percentile (upper bucket edge).
        p99: f64,
        /// Exact maximum observation.
        max: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_round_trip_through_json() {
        let lines = vec![
            ObsLine::Header {
                schema_version: OBS_SCHEMA_VERSION,
                run: "demo".into(),
                seed: 7,
                finished_at_ticks: 123,
            },
            ObsLine::Span {
                at_ticks: 5,
                span: 0,
                stage: "submitted".into(),
                site: 1,
                peer: u64::MAX,
                detail: 0,
            },
            ObsLine::Recovery {
                at_ticks: 9,
                site: 4,
                backend: "wal".into(),
                replayed_records: 12,
                recovered_messages: 3,
                recovered_pending: 1,
                recovered_forwards: 2,
                lost_messages: 0,
                torn_bytes: 17,
                segments: 2,
            },
            ObsLine::Counter {
                scope: "host:n0".into(),
                name: "submitted".into(),
                value: 3,
            },
            ObsLine::Gauge {
                scope: "server:n4".into(),
                name: "storage".into(),
                current: 1.0,
                average: 0.25,
            },
            ObsLine::Hist {
                scope: "merged".into(),
                name: "end_to_end".into(),
                count: 3,
                mean: 4.5,
                p50: 4.0,
                p90: 8.0,
                p99: 8.0,
                max: 7.5,
            },
            ObsLine::Metrics {
                scope: "server:n4".into(),
                appended_records: 200,
                appended_bytes: 41_000,
                fsyncs: 210,
                rotations: 6,
                compactions: 1,
                compaction_chunks: 9,
                replayed_records: 80,
                replayed_bytes: 16_000,
                io_errors: 0,
            },
            ObsLine::Profile {
                scope: "dispatch".into(),
                name: "server/deliver".into(),
                at_ticks: 0,
                count: 512,
                ticks: 9_000,
            },
        ];
        for line in lines {
            let json = serde_json::to_string(&line).expect("serialises");
            assert!(!json.contains('\n'), "one line per record");
            let back: ObsLine = serde_json::from_str(&json).expect("parses");
            assert_eq!(back, line);
        }
    }
}
