//! A deterministic actor layer over the future-event list.
//!
//! Mail servers, hosts, and user interfaces are modelled as *actors*: state
//! machines that react to messages and timers. The engine delivers messages
//! after caller-chosen delays (the network substrate in `lems-net` computes
//! those delays from topology), fires timers, and injects crash/recovery
//! events from a [failure plan](crate::failure).
//!
//! Delivery semantics match the model assumed by the paper's §3.3.1A (and by
//! Gallager's MST algorithm): messages travel independently in both
//! directions on an edge and arrive after an unpredictable but finite delay,
//! *without error and in sequence*. In-sequence (FIFO) delivery per ordered
//! actor pair is enforced by default and can be disabled for experiments
//! that want reordering.

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::linkfault::LinkFaultPlan;
use crate::prof::{Prof, ProfEvent, ProfSample};
use crate::queue::{EventQueue, QueueStats};
use crate::rng::SimRng;
use crate::sched::{ReadyEvent, ReadyKind, Scheduler};
use crate::shard::{Effect, ShardScratch};
use crate::stats::Counter;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceKind};

/// Identifies an actor within one [`ActorSim`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ActorId(pub usize);

impl ActorId {
    /// Pseudo-sender used for messages injected from outside the simulation
    /// (workload generators, test drivers).
    pub const EXTERNAL: ActorId = ActorId(usize::MAX);
}

impl std::fmt::Display for ActorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == ActorId::EXTERNAL {
            write!(f, "ext")
        } else {
            write!(f, "a{}", self.0)
        }
    }
}

/// Handle to a pending timer, used for cancellation.
///
/// Ordered so actors can key deterministic (`BTreeMap`) bookkeeping tables
/// by timer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(u64);

impl TimerId {
    /// Namespaced timer ids for the sharded engine: each actor draws from
    /// its own counter, packed above bit 40 by actor index so ids armed
    /// concurrently on different shards can never collide with each other
    /// (or with the sequential engine's dense ids in any realistic run).
    pub(crate) fn namespaced(actor: usize, n: u64) -> TimerId {
        TimerId(((actor as u64).wrapping_add(1) << 40) | (n & ((1 << 40) - 1)))
    }
}

/// A simulated node: reacts to messages and timers via `&mut self`.
///
/// All methods receive a [`Ctx`] for reading the clock, sending messages,
/// and managing timers. Handlers run only while the actor is up; messages
/// and timers addressed to a crashed actor are silently dropped (and
/// counted), mirroring a failed mail server.
pub trait Actor: std::any::Any {
    /// The message type exchanged in this simulation.
    type Msg;

    /// Invoked once when the simulation starts (or when the actor is added
    /// to an already-running simulation).
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Invoked for each delivered message.
    fn on_message(&mut self, from: ActorId, msg: Self::Msg, ctx: &mut Ctx<'_, Self::Msg>);

    /// Invoked when a timer set via [`Ctx::set_timer`] fires. `tag` is the
    /// caller-chosen discriminant passed at arm time.
    fn on_timer(&mut self, id: TimerId, tag: u64, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = (id, tag, ctx);
    }

    /// Invoked at the instant the actor crashes, before it stops receiving
    /// events. Implementations typically discard volatile state here while
    /// keeping "stable storage" fields intact.
    fn on_crash(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Invoked when the actor recovers. Timers do not survive a crash; this
    /// is the place to re-arm them.
    fn on_recover(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// A short static label grouping actors of the same role, used by the
    /// kernel profiler ([`prof`](crate::prof)) for per-(kind, event)
    /// dispatch attribution. Defaults to `"actor"`; override it for
    /// deployments mixing roles (servers, hosts, workload drivers).
    fn kind(&self) -> &'static str {
        "actor"
    }
}

pub(crate) enum Ev<M> {
    Deliver {
        from: ActorId,
        to: ActorId,
        msg: M,
    },
    Timer {
        actor: ActorId,
        id: TimerId,
        tag: u64,
    },
    Crash {
        actor: ActorId,
    },
    Recover {
        actor: ActorId,
    },
}

/// Counters describing one simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimCounters {
    /// Messages handed to a live actor's `on_message`.
    pub delivered: Counter,
    /// Messages dropped because the destination was down.
    pub dropped_down: Counter,
    /// Messages dropped because the destination id was never registered.
    pub dropped_unknown: Counter,
    /// Messages lost on the wire by the link-fault plan (outage or
    /// probabilistic loss).
    pub dropped_link: Counter,
    /// Extra copies created by link-level duplication.
    pub duplicated: Counter,
    /// Timers that fired and reached a live actor.
    pub timers_fired: Counter,
    /// Timers suppressed by cancellation or by a crash.
    pub timers_suppressed: Counter,
    /// Crash events applied.
    pub crashes: Counter,
    /// Recovery events applied.
    pub recoveries: Counter,
}

/// Engine internals shared with handlers through [`Ctx`].
///
/// Crate-visible so the sharded engine ([`crate::shard::ShardedSim`]) can
/// reuse the exact same enqueue/send/timer semantics when it commits
/// buffered effects — byte-identity between the two engines rests on both
/// running this code.
pub(crate) struct Core<M> {
    pub(crate) now: SimTime,
    pub(crate) queue: EventQueue<Ev<M>>,
    pub(crate) down: Vec<bool>,
    pub(crate) cancelled: HashSet<TimerId>,
    pub(crate) next_timer: u64,
    pub(crate) fifo: bool,
    pub(crate) last_arrival: HashMap<(ActorId, ActorId), SimTime>,
    pub(crate) counters: SimCounters,
    pub(crate) trace: Trace,
    pub(crate) rng: SimRng,
    pub(crate) link_faults: Option<LinkFaultPlan>,
    pub(crate) fault_rng: SimRng,
    pub(crate) scheduler: Option<Box<dyn Scheduler>>,
    pub(crate) prof: Prof,
}

impl<M> Core<M> {
    /// Engine state with all defaults, randomness derived from `seed`.
    pub(crate) fn new(seed: u64) -> Self {
        Core {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            down: Vec::new(),
            cancelled: HashSet::new(),
            next_timer: 0,
            fifo: true,
            last_arrival: HashMap::new(),
            counters: SimCounters::default(),
            trace: Trace::disabled(),
            rng: SimRng::seed(seed).fork("actor-sim"),
            link_faults: None,
            // A dedicated stream: enabling faults must not perturb the
            // randomness actors observe via `Ctx::rng`.
            fault_rng: SimRng::seed(seed).fork("link-faults"),
            scheduler: None,
            prof: Prof::default(),
        }
    }

    /// Queues a message for delivery after `delay` (FIFO clamp + trace).
    pub(crate) fn enqueue(&mut self, from: ActorId, to: ActorId, msg: M, delay: SimDuration) {
        let mut at = self.now + delay;
        // External injections model independent workload arrivals, not a
        // physical link, so they are exempt from FIFO clamping.
        if self.fifo && from != ActorId::EXTERNAL {
            // Clamp so a later send on the same ordered pair never overtakes
            // an earlier one ("without error and in sequence").
            let last = self.last_arrival.entry((from, to)).or_insert(SimTime::ZERO);
            if at < *last {
                at = *last;
            }
            *last = at;
        }
        self.trace.record(at, TraceKind::Send, from, to);
        self.queue.push(at, Ev::Deliver { from, to, msg });
    }

    pub(crate) fn send(&mut self, from: ActorId, to: ActorId, msg: M, delay: SimDuration)
    where
        M: Clone,
    {
        // Link faults apply only to real network hops: external injections
        // (workload arrivals) and self-sends (local processing stages) never
        // traverse a link.
        if let Some(plan) = &self.link_faults {
            if from != ActorId::EXTERNAL && from != to {
                let profile = plan.profile(from, to);
                let stochastic = plan.stochastic_active(self.now);
                let lost = !plan.is_link_up(from, to, self.now)
                    || (stochastic
                        && profile.drop_prob > 0.0
                        && self.fault_rng.chance(profile.drop_prob));
                if lost {
                    // Trace the send and its loss under the same
                    // (from, to, at) key so the conservation law "every send
                    // terminates in exactly one deliver-or-drop" still holds.
                    // The FIFO clamp is not updated: nothing arrives.
                    let at = self.now + delay;
                    self.counters.dropped_link.inc();
                    self.trace.record(at, TraceKind::Send, from, to);
                    self.trace.record(at, TraceKind::LinkDrop, from, to);
                    return;
                }
                let jitter = |rng: &mut SimRng| {
                    if stochastic && !profile.jitter.is_zero() {
                        SimDuration::from_ticks(rng.range(0..=profile.jitter.as_ticks()))
                    } else {
                        SimDuration::ZERO
                    }
                };
                let extra = jitter(&mut self.fault_rng);
                if stochastic && profile.dup_prob > 0.0 && self.fault_rng.chance(profile.dup_prob) {
                    // The duplicate takes its own jitter draw so the two
                    // copies land at distinct instants (FIFO still orders
                    // them per the clamp above).
                    let dup_extra = jitter(&mut self.fault_rng);
                    self.counters.duplicated.inc();
                    self.enqueue(from, to, msg.clone(), delay + dup_extra);
                }
                self.enqueue(from, to, msg, delay + extra);
                return;
            }
        }
        self.enqueue(from, to, msg, delay);
    }

    pub(crate) fn set_timer(&mut self, actor: ActorId, delay: SimDuration, tag: u64) -> TimerId {
        let id = TimerId(self.next_timer);
        self.next_timer += 1;
        self.queue
            .push(self.now + delay, Ev::Timer { actor, id, tag });
        id
    }

    /// Removes and returns the next event to fire.
    ///
    /// Without a scheduler this is a plain pop (lowest `(time, seq)`). With
    /// one installed, the ready set — every event at the earliest pending
    /// instant — is summarised into candidates and the scheduler picks.
    /// FIFO link order is enforced *before* the scheduler sees anything:
    /// for deliveries on a real link, only the oldest pending message per
    /// ordered `(from, to)` pair is a candidate, so no schedule can violate
    /// the in-sequence delivery assumption. External injections model
    /// independent arrivals and are each freely orderable.
    fn pop_next(&mut self) -> Option<(SimTime, Ev<M>)> {
        if self.scheduler.is_none() {
            return self.queue.pop();
        }
        let mut lanes: BTreeSet<(ActorId, ActorId)> = BTreeSet::new();
        let mut candidates: Vec<ReadyEvent> = Vec::new();
        for (at, seq, ev) in self.queue.ready() {
            let (kind, target, from) = match ev {
                Ev::Deliver { from, to, .. } => {
                    if self.fifo && *from != ActorId::EXTERNAL && !lanes.insert((*from, *to)) {
                        // Not the lane head: an older message on the same
                        // ordered pair must fire first.
                        continue;
                    }
                    (ReadyKind::Deliver, *to, *from)
                }
                Ev::Timer { actor, .. } => (ReadyKind::Timer, *actor, *actor),
                Ev::Crash { actor } => (ReadyKind::Crash, *actor, *actor),
                Ev::Recover { actor } => (ReadyKind::Recover, *actor, *actor),
            };
            candidates.push(ReadyEvent {
                seq,
                at,
                kind,
                target,
                from,
            });
        }
        let chosen = match candidates.len() {
            0 => return None,
            1 => candidates[0],
            n => {
                let idx = self
                    .scheduler
                    .as_mut()
                    .map_or(0, |s| s.choose(&candidates))
                    .min(n - 1);
                candidates[idx]
            }
        };
        let ev = self.queue.remove(chosen.at, chosen.seq)?;
        Some((chosen.at, ev))
    }
}

/// Handler-side view of the engine: clock, messaging, timers, randomness.
///
/// A `Ctx` is backed either by the live sequential engine (effects apply
/// immediately) or, under [`crate::shard::ShardedSim`], by a per-shard
/// scratch that buffers effects for an ordered commit on the coordinator.
/// Actor code cannot tell the difference — that opacity is what lets the
/// same `Actor` implementation run on both engines.
pub struct Ctx<'a, M> {
    inner: CtxInner<'a, M>,
    me: ActorId,
}

enum CtxInner<'a, M> {
    /// Sequential engine: effects act on the core directly.
    Live(&'a mut Core<M>),
    /// Sharded engine: effects buffer into the shard scratch and are
    /// replayed in deterministic `(time, seq)` order at commit.
    Shard(ShardScratch<'a, M>),
}

impl<'a, M> Ctx<'a, M> {
    pub(crate) fn live(core: &'a mut Core<M>, me: ActorId) -> Self {
        Ctx {
            inner: CtxInner::Live(core),
            me,
        }
    }

    pub(crate) fn shard(scratch: ShardScratch<'a, M>, me: ActorId) -> Self {
        Ctx {
            inner: CtxInner::Shard(scratch),
            me,
        }
    }

    /// Consumes a shard-backed context, returning the effects the handler
    /// buffered (empty for a live context — the effects already applied).
    pub(crate) fn into_effects(self) -> Vec<Effect<M>> {
        match self.inner {
            CtxInner::Live(_) => Vec::new(),
            CtxInner::Shard(scratch) => scratch.effects,
        }
    }
}

impl<M> Ctx<'_, M> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        match &self.inner {
            CtxInner::Live(core) => core.now,
            CtxInner::Shard(s) => s.now,
        }
    }

    /// The id of the actor whose handler is running.
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// Sends `msg` to `to`, arriving after `delay`.
    ///
    /// The delay models transmission + propagation on the path between the
    /// two nodes; the network substrate computes it from topology. With FIFO
    /// links enabled (the default) arrival order per ordered pair matches
    /// send order even if later sends carry smaller delays.
    pub fn send(&mut self, to: ActorId, msg: M, delay: SimDuration)
    where
        M: Clone,
    {
        match &mut self.inner {
            CtxInner::Live(core) => core.send(self.me, to, msg, delay),
            CtxInner::Shard(s) => s.effects.push(Effect::Send { to, msg, delay }),
        }
    }

    /// Sends `msg` to the actor itself after `delay` — a convenience for
    /// modelling local processing stages. Self-sends never traverse a link,
    /// so link faults do not apply.
    pub fn send_self(&mut self, msg: M, delay: SimDuration) {
        match &mut self.inner {
            CtxInner::Live(core) => core.enqueue(self.me, self.me, msg, delay),
            CtxInner::Shard(s) => s.effects.push(Effect::SendSelf { msg, delay }),
        }
    }

    /// Arms a timer that fires after `delay`, delivering `tag` to
    /// [`Actor::on_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        match &mut self.inner {
            CtxInner::Live(core) => core.set_timer(self.me, delay, tag),
            CtxInner::Shard(s) => {
                let id = TimerId::namespaced(s.actor_idx, *s.next_timer);
                *s.next_timer += 1;
                s.effects.push(Effect::SetTimer { id, delay, tag });
                id
            }
        }
    }

    /// Cancels a pending timer. Cancelling an already-fired or foreign timer
    /// is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        match &mut self.inner {
            CtxInner::Live(core) => {
                core.cancelled.insert(id);
            }
            CtxInner::Shard(s) => {
                // Recorded locally so a timer firing later in the same
                // frozen batch (same shard) sees the cancellation, and as
                // an effect so the commit makes it globally durable.
                s.local_cancelled.push(id);
                s.effects.push(Effect::CancelTimer { id });
            }
        }
    }

    /// Deterministic randomness.
    ///
    /// On the sequential engine this is a single stream scoped to the whole
    /// simulation; under the sharded engine each actor draws from its own
    /// forked stream (a per-actor function of the root seed), which is what
    /// keeps parallel runs independent of thread count. Code that must
    /// produce byte-identical runs on *both* engines should avoid ambient
    /// draws or derive its own forked streams.
    pub fn rng(&mut self) -> &mut SimRng {
        match &mut self.inner {
            CtxInner::Live(core) => &mut core.rng,
            CtxInner::Shard(s) => s.rng,
        }
    }

    /// True if `actor` is currently crashed.
    ///
    /// Real mail software cannot ask this oracle; it exists for workload
    /// drivers and for assertions in tests. Protocol actors should rely on
    /// timeouts instead. Under the sharded engine, the answer for *other*
    /// actors reflects the batch-start snapshot (same-instant cross-shard
    /// crashes are outside the sharded contract).
    pub fn is_down(&self, actor: ActorId) -> bool {
        match &self.inner {
            CtxInner::Live(core) => core.down.get(actor.0).copied().unwrap_or(false),
            CtxInner::Shard(s) => {
                if actor.0 == s.actor_idx {
                    s.down_self
                } else {
                    s.shared_down.get(actor.0).copied().unwrap_or(false)
                }
            }
        }
    }
}

/// The deterministic actor simulation engine.
///
/// # Examples
///
/// A two-actor ping-pong:
///
/// ```
/// use lems_sim::actor::{Actor, ActorId, ActorSim, Ctx};
/// use lems_sim::time::{SimDuration, SimTime};
///
/// struct Pinger { peer: Option<ActorId>, bounces: u32 }
/// impl Actor for Pinger {
///     type Msg = u32;
///     fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
///         if let Some(peer) = self.peer {
///             ctx.send(peer, 0, SimDuration::from_units(1.0));
///         }
///     }
///     fn on_message(&mut self, from: ActorId, n: u32, ctx: &mut Ctx<'_, u32>) {
///         self.bounces += 1;
///         if n < 5 {
///             ctx.send(from, n + 1, SimDuration::from_units(1.0));
///         }
///     }
/// }
///
/// let mut sim = ActorSim::new(42);
/// let a = sim.add_actor(Pinger { peer: None, bounces: 0 });
/// let b = sim.add_actor(Pinger { peer: Some(a), bounces: 0 });
/// # let _ = b;
/// sim.run_to_quiescence();
/// assert_eq!(sim.now(), SimTime::from_units(6.0));
/// ```
pub struct ActorSim<M> {
    core: Core<M>,
    actors: Vec<Option<Box<dyn Actor<Msg = M>>>>,
    started: Vec<bool>,
    running: bool,
}

impl<M: 'static> ActorSim<M> {
    /// Creates an engine whose randomness derives from `seed`.
    pub fn new(seed: u64) -> Self {
        ActorSim {
            core: Core::new(seed),
            actors: Vec::new(),
            started: Vec::new(),
            running: false,
        }
    }

    /// Creates an engine on the baseline (pre-calendar) event-queue
    /// backend. Identical semantics to [`ActorSim::new`] — the backends
    /// pop in the same `(time, seq)` order — retained so benchmarks can
    /// measure the old queue and differential tests can cross-check whole
    /// runs, not just queue operations.
    pub fn new_with_baseline_queue(seed: u64) -> Self {
        let mut sim = ActorSim::new(seed);
        sim.core.queue = EventQueue::baseline();
        sim
    }

    /// Disables per-pair FIFO delivery, allowing messages to reorder when
    /// delays differ.
    pub fn without_fifo_links(mut self) -> Self {
        self.core.fifo = false;
        self
    }

    /// Enables bounded in-memory event tracing (for debugging and tests).
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.core.trace = Trace::bounded(capacity);
        self
    }

    /// Enables tracing on an already-built engine, replacing any existing
    /// trace. Unlike [`ActorSim::with_trace`] this works after actors have
    /// been registered, so deployment builders that own the engine can have
    /// tracing switched on by their callers. A `capacity` of `usize::MAX`
    /// keeps the complete event history (see [`Trace::unbounded`]), which
    /// trace auditors require.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.core.trace = Trace::bounded(capacity);
    }

    /// Enables the kernel profiler ([`prof`](crate::prof)). Profiling
    /// changes no output byte of the run — dispatch attribution, queue
    /// depth samples, and pool counters derive from sim time and counts
    /// only (pinned by `tests/prof_digest.rs`).
    pub fn enable_prof(&mut self) {
        self.core.prof.enable();
    }

    /// The kernel profiler's accumulated state.
    pub fn prof(&self) -> &Prof {
        &self.core.prof
    }

    /// Renders the profiler state as a deterministic sample list, folding
    /// in the current queue-structure snapshot. Empty when profiling is
    /// off.
    pub fn profile_samples(&self) -> Vec<ProfSample> {
        self.core.prof.samples(self.core.queue.stats())
    }

    /// A structural snapshot of the future-event list (depth, calendar
    /// ring, payload-pool counters).
    pub fn queue_stats(&self) -> QueueStats {
        self.core.queue.stats()
    }

    /// Registers an actor; returns its id. `on_start` runs at the current
    /// simulation time the next time the engine advances.
    pub fn add_actor<A>(&mut self, actor: A) -> ActorId
    where
        A: Actor<Msg = M> + 'static,
    {
        let id = ActorId(self.actors.len());
        self.core.prof.register_kind(actor.kind());
        self.actors.push(Some(Box::new(actor)));
        self.core.down.push(false);
        self.started.push(false);
        id
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> &SimCounters {
        &self.core.counters
    }

    /// The bounded trace, if enabled.
    pub fn trace(&self) -> &Trace {
        &self.core.trace
    }

    /// Injects a message from outside the simulation, delivered to `to` at
    /// `now + delay`. Injections model workload arrivals, not link traffic,
    /// so link faults do not apply.
    pub fn inject(&mut self, to: ActorId, msg: M, delay: SimDuration) {
        self.core.enqueue(ActorId::EXTERNAL, to, msg, delay);
    }

    /// Installs (or replaces) the link-fault plan consulted on every
    /// actor-to-actor send. See [`LinkFaultPlan`] for the fault taxonomy.
    pub fn set_link_faults(&mut self, plan: LinkFaultPlan) {
        self.core.link_faults = Some(plan);
    }

    /// Removes the link-fault plan; subsequent sends travel a perfect wire.
    pub fn clear_link_faults(&mut self) {
        self.core.link_faults = None;
    }

    /// Installs (or replaces) the event [`Scheduler`] consulted whenever
    /// two or more events are ready at the same instant. Without one, the
    /// engine fires events in scheduling order ([`FifoScheduler`]
    /// semantics, zero overhead).
    ///
    /// [`FifoScheduler`]: crate::sched::FifoScheduler
    pub fn set_scheduler(&mut self, scheduler: Box<dyn Scheduler>) {
        self.core.scheduler = Some(scheduler);
    }

    /// Removes the scheduler; the engine reverts to plain FIFO order.
    pub fn clear_scheduler(&mut self) {
        self.core.scheduler = None;
    }

    /// The installed link-fault plan, if any.
    pub fn link_faults(&self) -> Option<&LinkFaultPlan> {
        self.core.link_faults.as_ref()
    }

    /// Schedules `actor` to crash at `at` (no-op if already down then).
    pub fn schedule_crash(&mut self, actor: ActorId, at: SimTime) {
        self.core.queue.push(at, Ev::Crash { actor });
    }

    /// Schedules `actor` to recover at `at` (no-op if already up then).
    pub fn schedule_recover(&mut self, actor: ActorId, at: SimTime) {
        self.core.queue.push(at, Ev::Recover { actor });
    }

    /// True if `actor` is currently crashed.
    pub fn is_down(&self, actor: ActorId) -> bool {
        self.core.down.get(actor.0).copied().unwrap_or(false)
    }

    /// Immutable access to an actor's state (for assertions and metrics).
    ///
    /// Returns `None` if the id is unknown or the actor's concrete type is
    /// not `A`.
    pub fn actor<A>(&self, id: ActorId) -> Option<&A>
    where
        A: Actor<Msg = M> + 'static,
        M: 'static,
    {
        self.actors
            .get(id.0)
            .and_then(|slot| slot.as_deref())
            .and_then(|a| (a as &dyn std::any::Any).downcast_ref::<A>())
    }

    /// Mutable access to an actor's state between runs (e.g. for
    /// reconfiguration drivers).
    pub fn actor_mut<A>(&mut self, id: ActorId) -> Option<&mut A>
    where
        A: Actor<Msg = M> + 'static,
        M: 'static,
    {
        self.actors
            .get_mut(id.0)
            .and_then(|slot| slot.as_deref_mut())
            .and_then(|a| (a as &mut dyn std::any::Any).downcast_mut::<A>())
    }

    fn start_pending(&mut self) {
        for idx in 0..self.actors.len() {
            if !self.started[idx] {
                self.started[idx] = true;
                self.with_actor(ActorId(idx), Actor::on_start);
            }
        }
    }

    fn with_actor<R>(
        &mut self,
        id: ActorId,
        f: impl FnOnce(&mut dyn Actor<Msg = M>, &mut Ctx<'_, M>) -> R,
    ) -> Option<R> {
        let mut boxed = self.actors.get_mut(id.0)?.take()?;
        let mut ctx = Ctx::live(&mut self.core, id);
        let out = f(boxed.as_mut(), &mut ctx);
        self.actors[id.0] = Some(boxed);
        Some(out)
    }

    /// Processes one event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        if !self.running {
            self.running = true;
        }
        self.start_pending();
        let Some((at, ev)) = self.core.pop_next() else {
            return false;
        };
        debug_assert!(at >= self.core.now, "time went backwards");
        self.core.now = at;
        // Each arm yields the profiler disposition: the target actor index
        // and the event class the dispatch resolved to (`None` for silent
        // no-ops, which the profiler — like the counters — ignores).
        let hook: Option<(usize, ProfEvent)> = match ev {
            Ev::Deliver { from, to, msg } => {
                if to.0 >= self.actors.len() {
                    self.core.counters.dropped_unknown.inc();
                    // Traced as a drop so every traced send still terminates
                    // in exactly one deliver-or-drop (conservation law).
                    self.core.trace.record(at, TraceKind::Drop, from, to);
                    Some((to.0, ProfEvent::DropUnknown))
                } else if self.core.down[to.0] {
                    self.core.counters.dropped_down.inc();
                    self.core.trace.record(at, TraceKind::Drop, from, to);
                    Some((to.0, ProfEvent::DropDown))
                } else {
                    self.core.counters.delivered.inc();
                    self.core.trace.record(at, TraceKind::Deliver, from, to);
                    self.with_actor(to, |actor, ctx| actor.on_message(from, msg, ctx));
                    Some((to.0, ProfEvent::Deliver))
                }
            }
            Ev::Timer { actor, id, tag } => {
                let cancelled = self.core.cancelled.remove(&id);
                if cancelled || actor.0 >= self.actors.len() || self.core.down[actor.0] {
                    self.core.counters.timers_suppressed.inc();
                    Some((actor.0, ProfEvent::TimerSuppressed))
                } else {
                    self.core.counters.timers_fired.inc();
                    self.with_actor(actor, |a, ctx| a.on_timer(id, tag, ctx));
                    Some((actor.0, ProfEvent::TimerFired))
                }
            }
            Ev::Crash { actor } => {
                if actor.0 < self.actors.len() && !self.core.down[actor.0] {
                    self.core.down[actor.0] = true;
                    self.core.counters.crashes.inc();
                    self.core.trace.record(at, TraceKind::Crash, actor, actor);
                    if let Some(slot) = self.actors.get_mut(actor.0) {
                        if let Some(a) = slot.as_deref_mut() {
                            a.on_crash(at);
                        }
                    }
                    Some((actor.0, ProfEvent::Crash))
                } else {
                    None
                }
            }
            Ev::Recover { actor } => {
                if actor.0 < self.actors.len() && self.core.down[actor.0] {
                    self.core.down[actor.0] = false;
                    self.core.counters.recoveries.inc();
                    self.core.trace.record(at, TraceKind::Recover, actor, actor);
                    self.with_actor(actor, Actor::on_recover);
                    Some((actor.0, ProfEvent::Recover))
                } else {
                    None
                }
            }
        };
        if self.core.prof.is_enabled() {
            if let Some((idx, pe)) = hook {
                let depth = self.core.queue.len() as u64;
                self.core.prof.dispatch(idx, pe, at, depth);
            }
        }
        true
    }

    /// Runs until the queue is empty or the next event is later than
    /// `deadline`; the clock then rests at `min(deadline, last event time)`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.core.prof.wall_start();
        self.start_pending();
        while let Some(t) = self.core.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        if self.core.now < deadline {
            self.core.now = deadline;
        }
        self.core.prof.wall_stop();
    }

    /// Runs until no events remain.
    ///
    /// # Panics
    ///
    /// Panics if more than `u64::MAX` events are processed (practically:
    /// never), protecting against livelock in misbehaving actors via the
    /// explicit [`ActorSim::run_to_quiescence_bounded`] variant instead.
    pub fn run_to_quiescence(&mut self) {
        self.core.prof.wall_start();
        while self.step() {}
        self.core.prof.wall_stop();
    }

    /// Runs until quiescence or until `max_events` have been processed.
    /// Returns `true` if the simulation quiesced.
    pub fn run_to_quiescence_bounded(&mut self, max_events: u64) -> bool {
        self.core.prof.wall_start();
        let mut quiesced = false;
        for _ in 0..max_events {
            if !self.step() {
                quiesced = true;
                break;
            }
        }
        self.core.prof.wall_stop();
        quiesced || self.core.queue.is_empty()
    }
}

impl<M> std::fmt::Debug for ActorSim<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActorSim")
            .field("now", &self.core.now)
            .field("actors", &self.actors.len())
            .field("pending_events", &self.core.queue.len())
            .field("counters", &self.core.counters)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(SimTime, u32)>,
        timer_tags: Vec<u64>,
        recovered: u32,
    }

    impl Actor for Recorder {
        type Msg = u32;
        fn on_message(&mut self, _from: ActorId, msg: u32, ctx: &mut Ctx<'_, u32>) {
            self.seen.push((ctx.now(), msg));
        }
        fn on_timer(&mut self, _id: TimerId, tag: u64, _ctx: &mut Ctx<'_, u32>) {
            self.timer_tags.push(tag);
        }
        fn on_recover(&mut self, _ctx: &mut Ctx<'_, u32>) {
            self.recovered += 1;
        }
    }

    fn unit(u: f64) -> SimDuration {
        SimDuration::from_units(u)
    }

    #[test]
    fn injected_messages_arrive_in_order() {
        let mut sim = ActorSim::new(1);
        let r = sim.add_actor(Recorder::default());
        sim.inject(r, 10, unit(2.0));
        sim.inject(r, 20, unit(1.0));
        sim.run_to_quiescence();
        let rec: &Recorder = sim.actor(r).unwrap();
        assert_eq!(
            rec.seen,
            vec![
                (SimTime::from_units(1.0), 20),
                (SimTime::from_units(2.0), 10)
            ]
        );
    }

    /// Sends two messages to `target` back-to-back, the second with a
    /// smaller delay than the first.
    struct BurstSender {
        target: ActorId,
    }
    impl Actor for BurstSender {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            ctx.send(self.target, 1, unit(5.0));
            ctx.send(self.target, 2, unit(1.0));
        }
        fn on_message(&mut self, _f: ActorId, _m: u32, _c: &mut Ctx<'_, u32>) {}
    }

    #[test]
    fn fifo_links_prevent_overtaking() {
        let mut sim = ActorSim::new(1);
        let r = sim.add_actor(Recorder::default());
        let _ = sim.add_actor(BurstSender { target: r });
        sim.run_to_quiescence();
        let rec: &Recorder = sim.actor(r).unwrap();
        assert_eq!(rec.seen[0].1, 1);
        assert_eq!(rec.seen[1].1, 2);
        assert_eq!(rec.seen[1].0, SimTime::from_units(5.0), "clamped to FIFO");
    }

    #[test]
    fn without_fifo_allows_overtaking() {
        let mut sim = ActorSim::new(1).without_fifo_links();
        let r = sim.add_actor(Recorder::default());
        let _ = sim.add_actor(BurstSender { target: r });
        sim.run_to_quiescence();
        let rec: &Recorder = sim.actor(r).unwrap();
        assert_eq!(rec.seen[0].1, 2);
    }

    #[test]
    fn crashed_actor_drops_messages_then_recovers() {
        let mut sim = ActorSim::new(1);
        let r = sim.add_actor(Recorder::default());
        sim.schedule_crash(r, SimTime::from_units(1.0));
        sim.schedule_recover(r, SimTime::from_units(3.0));
        sim.inject(r, 99, unit(2.0)); // lands while down -> dropped
        sim.inject(r, 7, unit(4.0)); // lands after recovery
        sim.run_to_quiescence();
        let rec: &Recorder = sim.actor(r).unwrap();
        assert_eq!(rec.seen.len(), 1);
        assert_eq!(rec.seen[0].1, 7);
        assert_eq!(rec.recovered, 1);
        assert_eq!(sim.counters().dropped_down.get(), 1);
        assert_eq!(sim.counters().crashes.get(), 1);
        assert_eq!(sim.counters().recoveries.get(), 1);
    }

    struct TimerSetter;
    impl Actor for TimerSetter {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            let keep = ctx.set_timer(unit(1.0), 1);
            let cancel = ctx.set_timer(unit(2.0), 2);
            ctx.cancel_timer(cancel);
            let _ = keep;
        }
        fn on_message(&mut self, _f: ActorId, _m: u32, _c: &mut Ctx<'_, u32>) {}
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        let mut sim = ActorSim::new(1);
        let _ = sim.add_actor(TimerSetter);
        sim.run_to_quiescence();
        assert_eq!(sim.counters().timers_fired.get(), 1);
        assert_eq!(sim.counters().timers_suppressed.get(), 1);
    }

    #[test]
    fn run_until_stops_clock_at_deadline() {
        let mut sim: ActorSim<u32> = ActorSim::new(1);
        let r = sim.add_actor(Recorder::default());
        sim.inject(r, 1, unit(10.0));
        sim.run_until(SimTime::from_units(4.0));
        assert_eq!(sim.now(), SimTime::from_units(4.0));
        sim.run_until(SimTime::from_units(20.0));
        let rec: &Recorder = sim.actor(r).unwrap();
        assert_eq!(rec.seen.len(), 1);
        assert_eq!(sim.now(), SimTime::from_units(20.0));
    }

    #[test]
    fn determinism_same_seed_same_counters() {
        fn run(seed: u64) -> (u64, SimTime) {
            let mut sim = ActorSim::new(seed);
            let r = sim.add_actor(Recorder::default());
            let mut delays: Vec<f64> = Vec::new();
            {
                // Use engine-independent rng for the workload.
                let mut rng = SimRng::seed(seed).fork("wl");
                for _ in 0..100 {
                    delays.push(rng.unit() * 10.0);
                }
            }
            for (i, d) in delays.into_iter().enumerate() {
                sim.inject(r, i as u32, unit(d));
            }
            sim.run_to_quiescence();
            (sim.counters().delivered.get(), sim.now())
        }
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).1, run(10).1);
    }

    #[test]
    fn bounded_run_reports_quiescence() {
        let mut sim: ActorSim<u32> = ActorSim::new(1);
        let r = sim.add_actor(Recorder::default());
        for i in 0..10 {
            sim.inject(r, i, unit(i as f64));
        }
        assert!(!sim.run_to_quiescence_bounded(3));
        assert!(sim.run_to_quiescence_bounded(100));
    }

    #[test]
    fn unknown_destination_is_counted() {
        let mut sim: ActorSim<u32> = ActorSim::new(1);
        sim.inject(ActorId(999), 1, unit(1.0));
        sim.run_to_quiescence();
        assert_eq!(sim.counters().dropped_unknown.get(), 1);
    }

    /// Relays every received message to `target` after 1 unit.
    struct Relay {
        target: ActorId,
    }
    impl Actor for Relay {
        type Msg = u32;
        fn on_message(&mut self, _f: ActorId, m: u32, ctx: &mut Ctx<'_, u32>) {
            ctx.send(self.target, m, unit(1.0));
        }
    }

    #[test]
    fn link_outage_drops_wire_traffic_but_not_injections() {
        use crate::linkfault::LinkFaultPlan;
        let mut sim = ActorSim::new(1);
        let r = sim.add_actor(Recorder::default());
        let relay = sim.add_actor(Relay { target: r });
        let mut plan = LinkFaultPlan::new();
        plan.add_link_outage(relay, r, SimTime::ZERO, SimTime::from_units(10.0))
            .unwrap();
        sim.set_link_faults(plan);
        sim.enable_trace(usize::MAX);
        // Injection reaches the relay (injections are exempt), but the
        // relay's forward crosses the dead link and is lost.
        sim.inject(relay, 5, unit(1.0));
        // After the outage lifts, the same route works.
        sim.inject(relay, 6, unit(11.0));
        sim.run_to_quiescence();
        let rec: &Recorder = sim.actor(r).unwrap();
        assert_eq!(rec.seen.len(), 1);
        assert_eq!(rec.seen[0].1, 6);
        assert_eq!(sim.counters().dropped_link.get(), 1);
        // Conservation: every traced send has a deliver or a drop.
        let sends = sim
            .trace()
            .events()
            .filter(|e| e.kind == TraceKind::Send)
            .count();
        let ends = sim
            .trace()
            .events()
            .filter(|e| {
                matches!(
                    e.kind,
                    TraceKind::Deliver | TraceKind::Drop | TraceKind::LinkDrop
                )
            })
            .count();
        assert_eq!(sends, ends);
    }

    #[test]
    fn certain_loss_loses_everything_on_the_wire() {
        use crate::linkfault::{LinkFaultPlan, LinkProfile};
        let mut sim = ActorSim::new(1);
        let r = sim.add_actor(Recorder::default());
        let relay = sim.add_actor(Relay { target: r });
        sim.set_link_faults(
            LinkFaultPlan::new()
                .with_default_profile(LinkProfile::new(1.0, 0.0, SimDuration::ZERO).unwrap()),
        );
        for i in 0..10 {
            sim.inject(relay, i, unit(i as f64));
        }
        sim.run_to_quiescence();
        let rec: &Recorder = sim.actor(r).unwrap();
        assert!(rec.seen.is_empty());
        assert_eq!(sim.counters().dropped_link.get(), 10);
    }

    #[test]
    fn certain_duplication_doubles_delivery() {
        use crate::linkfault::{LinkFaultPlan, LinkProfile};
        let mut sim = ActorSim::new(1);
        let r = sim.add_actor(Recorder::default());
        let relay = sim.add_actor(Relay { target: r });
        sim.set_link_faults(
            LinkFaultPlan::new()
                .with_default_profile(LinkProfile::new(0.0, 1.0, SimDuration::ZERO).unwrap()),
        );
        sim.inject(relay, 7, unit(1.0));
        sim.run_to_quiescence();
        let rec: &Recorder = sim.actor(r).unwrap();
        assert_eq!(rec.seen.len(), 2, "original + duplicate");
        assert_eq!(sim.counters().duplicated.get(), 1);
    }

    #[test]
    fn self_sends_bypass_link_faults() {
        use crate::linkfault::{LinkFaultPlan, LinkProfile};
        struct SelfLooper {
            got: u32,
        }
        impl Actor for SelfLooper {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                ctx.send_self(3, unit(1.0));
            }
            fn on_message(&mut self, _f: ActorId, m: u32, _c: &mut Ctx<'_, u32>) {
                self.got = m;
            }
        }
        let mut sim = ActorSim::new(1);
        let a = sim.add_actor(SelfLooper { got: 0 });
        sim.set_link_faults(
            LinkFaultPlan::new()
                .with_default_profile(LinkProfile::new(1.0, 0.0, SimDuration::ZERO).unwrap()),
        );
        sim.run_to_quiescence();
        let looper: &SelfLooper = sim.actor(a).unwrap();
        assert_eq!(looper.got, 3);
        assert_eq!(sim.counters().dropped_link.get(), 0);
    }

    #[test]
    fn link_faults_are_deterministic_per_seed() {
        use crate::linkfault::{LinkFaultPlan, LinkProfile};
        fn run(seed: u64) -> (u64, u64, u64, SimTime) {
            let mut sim = ActorSim::new(seed);
            let r = sim.add_actor(Recorder::default());
            let relay = sim.add_actor(Relay { target: r });
            sim.set_link_faults(LinkFaultPlan::new().with_default_profile(
                LinkProfile::new(0.3, 0.1, SimDuration::from_units(0.5)).unwrap(),
            ));
            for i in 0..200 {
                sim.inject(relay, i, unit(i as f64 * 0.1));
            }
            sim.run_to_quiescence();
            (
                sim.counters().delivered.get(),
                sim.counters().dropped_link.get(),
                sim.counters().duplicated.get(),
                sim.now(),
            )
        }
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
