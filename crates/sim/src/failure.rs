//! Failure injection: planned outages and random crash/repair processes.
//!
//! The paper's reliability story (ordered authority-server lists, the
//! GetMail recovery bookkeeping, convergecast timeouts) only matters when
//! servers actually fail. A [`FailurePlan`] is an explicit, inspectable list
//! of outages that can be applied to an [`ActorSim`] and also queried
//! analytically (e.g. "was server 3 up at time 17.5?"), so experiments can
//! cross-check simulated behaviour against ground truth.

use std::collections::BTreeMap;

use crate::actor::{ActorId, ActorSim};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Why a failure or link-fault plan could not be constructed.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum FailureError {
    /// An outage interval was empty or inverted (`up_at <= down_at`).
    EmptyOutage {
        /// Requested crash instant.
        down_at: SimTime,
        /// Requested repair instant.
        up_at: SimTime,
    },
    /// A mean time (MTBF or MTTR) was zero.
    ZeroMeanTime,
    /// A probability was outside `[0, 1]` or NaN.
    InvalidProbability(f64),
}

impl std::fmt::Display for FailureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureError::EmptyOutage { down_at, up_at } => {
                write!(f, "outage must end after it starts ({down_at} >= {up_at})")
            }
            FailureError::ZeroMeanTime => write!(f, "mtbf/mttr must be positive"),
            FailureError::InvalidProbability(p) => {
                write!(f, "probability {p} outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for FailureError {}

/// One contiguous down interval `[down_at, up_at)` for an actor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Outage {
    /// Instant the actor crashes.
    pub down_at: SimTime,
    /// Instant the actor recovers. `SimTime::MAX` means it never does.
    pub up_at: SimTime,
}

impl Outage {
    /// Creates an outage, rejecting empty or inverted intervals.
    pub fn new(down_at: SimTime, up_at: SimTime) -> Result<Self, FailureError> {
        if up_at <= down_at {
            return Err(FailureError::EmptyOutage { down_at, up_at });
        }
        Ok(Outage { down_at, up_at })
    }

    /// True if `t` falls inside the outage.
    pub fn covers(&self, t: SimTime) -> bool {
        t >= self.down_at && t < self.up_at
    }

    /// Length of the outage (saturating for never-repaired outages).
    pub fn duration(&self) -> SimDuration {
        self.up_at.duration_since(self.down_at)
    }
}

/// A set of outages per actor.
///
/// # Examples
///
/// ```
/// use lems_sim::failure::FailurePlan;
/// use lems_sim::actor::ActorId;
/// use lems_sim::time::SimTime;
///
/// let mut plan = FailurePlan::new();
/// plan.add_outage(ActorId(2), SimTime::from_units(5.0), SimTime::from_units(9.0)).unwrap();
/// assert!(plan.is_up(ActorId(2), SimTime::from_units(4.9)));
/// assert!(!plan.is_up(ActorId(2), SimTime::from_units(5.0)));
/// assert!(plan.is_up(ActorId(2), SimTime::from_units(9.0)));
/// assert!(plan.is_up(ActorId(0), SimTime::ZERO)); // no outages -> always up
/// ```
#[derive(Clone, Debug, Default)]
pub struct FailurePlan {
    outages: BTreeMap<ActorId, Vec<Outage>>,
}

impl FailurePlan {
    /// An empty plan (everything stays up).
    pub fn new() -> Self {
        FailurePlan::default()
    }

    /// Adds an outage for `actor` (O(1): insertion order is preserved;
    /// call [`normalize`] to sort and merge overlaps when needed).
    /// Rejects empty or inverted intervals.
    ///
    /// [`normalize`]: FailurePlan::normalize
    pub fn add_outage(
        &mut self,
        actor: ActorId,
        down_at: SimTime,
        up_at: SimTime,
    ) -> Result<(), FailureError> {
        let outage = Outage::new(down_at, up_at)?;
        self.outages.entry(actor).or_default().push(outage);
        Ok(())
    }

    /// Merges overlapping or adjacent outages per actor.
    pub fn normalize(&mut self) {
        for list in self.outages.values_mut() {
            list.sort_by_key(|o| o.down_at);
            let mut merged: Vec<Outage> = Vec::with_capacity(list.len());
            for o in list.drain(..) {
                match merged.last_mut() {
                    Some(last) if o.down_at <= last.up_at => {
                        if o.up_at > last.up_at {
                            last.up_at = o.up_at;
                        }
                    }
                    _ => merged.push(o),
                }
            }
            *list = merged;
        }
    }

    /// Generates a plan where each actor alternates exponentially
    /// distributed up intervals (mean `mtbf`) and down intervals (mean
    /// `mttr`) over `[0, horizon)`. Rejects zero means.
    pub fn random(
        rng: &mut SimRng,
        actors: &[ActorId],
        mtbf: SimDuration,
        mttr: SimDuration,
        horizon: SimTime,
    ) -> Result<Self, FailureError> {
        if mtbf.is_zero() || mttr.is_zero() {
            return Err(FailureError::ZeroMeanTime);
        }
        let mut plan = FailurePlan::new();
        for &actor in actors {
            let mut t = SimTime::ZERO + rng.exp_duration(mtbf);
            while t < horizon {
                // An exponential draw can round down to zero ticks; stretch
                // to one tick so the outage interval stays non-empty.
                let mut down = rng.exp_duration(mttr);
                if down.is_zero() {
                    down = SimDuration::from_ticks(1);
                }
                let repair = t + down;
                plan.add_outage(actor, t, repair)?;
                t = repair + rng.exp_duration(mtbf);
            }
        }
        Ok(plan)
    }

    /// True if `actor` is up at instant `t` under this plan.
    pub fn is_up(&self, actor: ActorId, t: SimTime) -> bool {
        self.outages
            .get(&actor)
            .is_none_or(|list| !list.iter().any(|o| o.covers(t)))
    }

    /// The outages recorded for `actor` (empty slice if none).
    pub fn outages(&self, actor: ActorId) -> &[Outage] {
        self.outages.get(&actor).map_or(&[], Vec::as_slice)
    }

    /// Actors with at least one outage.
    pub fn affected_actors(&self) -> impl Iterator<Item = ActorId> + '_ {
        self.outages.keys().copied()
    }

    /// Fraction of `[0, horizon)` that `actor` spends up.
    pub fn availability(&self, actor: ActorId, horizon: SimTime) -> f64 {
        let total = horizon.as_units();
        if total <= 0.0 {
            return 1.0;
        }
        let down: f64 = self
            .outages(actor)
            .iter()
            .map(|o| {
                let start = o.down_at.min(horizon);
                let end = o.up_at.min(horizon);
                end.duration_since(start).as_units()
            })
            .sum();
        ((total - down) / total).clamp(0.0, 1.0)
    }

    /// Schedules every outage onto the simulation engine.
    pub fn apply<M: 'static>(&self, sim: &mut ActorSim<M>) {
        for (&actor, list) in &self.outages {
            for o in list {
                sim.schedule_crash(actor, o.down_at);
                if o.up_at < SimTime::MAX {
                    sim.schedule_recover(actor, o.up_at);
                }
            }
        }
    }

    /// Total number of outages across all actors.
    pub fn outage_count(&self) -> usize {
        self.outages.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(u: f64) -> SimTime {
        SimTime::from_units(u)
    }

    #[test]
    fn outage_covers_half_open_interval() {
        let o = Outage::new(t(1.0), t(2.0)).unwrap();
        assert!(!o.covers(t(0.99)));
        assert!(o.covers(t(1.0)));
        assert!(o.covers(t(1.99)));
        assert!(!o.covers(t(2.0)));
        assert_eq!(o.duration(), SimDuration::from_units(1.0));
    }

    #[test]
    fn normalize_merges_overlaps() {
        let mut p = FailurePlan::new();
        let a = ActorId(0);
        p.add_outage(a, t(1.0), t(3.0)).unwrap();
        p.add_outage(a, t(2.0), t(4.0)).unwrap();
        p.add_outage(a, t(6.0), t(7.0)).unwrap();
        p.normalize();
        assert_eq!(
            p.outages(a),
            &[
                Outage::new(t(1.0), t(4.0)).unwrap(),
                Outage::new(t(6.0), t(7.0)).unwrap()
            ]
        );
    }

    #[test]
    fn availability_accounts_for_truncation() {
        let mut p = FailurePlan::new();
        let a = ActorId(0);
        p.add_outage(a, t(8.0), t(20.0)).unwrap(); // truncated by horizon 10 -> 2 down
        assert!((p.availability(a, t(10.0)) - 0.8).abs() < 1e-9);
        assert_eq!(p.availability(ActorId(9), t(10.0)), 1.0);
    }

    #[test]
    fn random_plan_matches_target_availability_roughly() {
        let mut rng = SimRng::seed(5);
        let actors: Vec<ActorId> = (0..50).map(ActorId).collect();
        let mtbf = SimDuration::from_units(90.0);
        let mttr = SimDuration::from_units(10.0);
        let horizon = t(10_000.0);
        let plan = FailurePlan::random(&mut rng, &actors, mtbf, mttr, horizon).unwrap();
        let avg: f64 = actors
            .iter()
            .map(|&a| plan.availability(a, horizon))
            .sum::<f64>()
            / actors.len() as f64;
        // Expected availability = mtbf / (mtbf + mttr) = 0.9.
        assert!((avg - 0.9).abs() < 0.02, "avg availability {avg}");
    }

    #[test]
    fn apply_schedules_crashes_on_engine() {
        use crate::actor::{Actor, Ctx};
        struct Nop;
        impl Actor for Nop {
            type Msg = ();
            fn on_message(&mut self, _f: ActorId, _m: (), _c: &mut Ctx<'_, ()>) {}
        }
        let mut sim = ActorSim::new(1);
        let a = sim.add_actor(Nop);
        let mut plan = FailurePlan::new();
        plan.add_outage(a, t(1.0), t(2.0)).unwrap();
        plan.apply(&mut sim);
        sim.run_until(t(1.5));
        assert!(sim.is_down(a));
        sim.run_until(t(3.0));
        assert!(!sim.is_down(a));
    }

    proptest! {
        /// After normalization outages are sorted and disjoint, and the
        /// point query agrees with a brute-force interval check.
        #[test]
        fn normalized_plan_is_consistent(
            spans in proptest::collection::vec((0u64..100, 1u64..20), 1..20),
            probe in 0u64..130
        ) {
            let mut p = FailurePlan::new();
            let a = ActorId(1);
            for &(start, len) in &spans {
                p.add_outage(a, SimTime::from_ticks(start), SimTime::from_ticks(start + len))
                    .unwrap();
            }
            let brute_down = spans.iter().any(|&(s, l)| probe >= s && probe < s + l);
            p.normalize();
            let list = p.outages(a);
            for w in list.windows(2) {
                prop_assert!(w[0].up_at < w[1].down_at);
            }
            prop_assert_eq!(!p.is_up(a, SimTime::from_ticks(probe)), brute_down);
        }
    }
}
