//! A minimal closure-driven discrete-event kernel.
//!
//! Where the [actor layer](crate::actor) models networks of message-passing
//! nodes, `Kernel` is the lower-level primitive: events are closures over a
//! caller-supplied world `W`. It is used by experiments whose logic is a
//! single algorithm plus a timeline (e.g. the GetMail retrieval sweeps)
//! rather than a full protocol.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

type BoxedEvent<W> = Box<dyn FnOnce(&mut W, &mut Scheduler<W>)>;

/// Schedule handle passed to running events so they can enqueue more work.
pub struct Scheduler<W> {
    now: SimTime,
    pending: Vec<(SimTime, BoxedEvent<W>)>,
}

impl<W> Scheduler<W> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `f` to run at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.pending.push((at, Box::new(f)));
    }

    /// Schedules `f` to run after `delay`.
    pub fn after(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        let at = self.now + delay;
        self.pending.push((at, Box::new(f)));
    }
}

/// A discrete-event kernel over a world `W`.
///
/// # Examples
///
/// ```
/// use lems_sim::kernel::Kernel;
/// use lems_sim::time::{SimDuration, SimTime};
///
/// let mut k: Kernel<Vec<u32>> = Kernel::new(Vec::new());
/// k.schedule(SimTime::from_units(2.0), |w, _| w.push(2));
/// k.schedule(SimTime::from_units(1.0), |w, s| {
///     w.push(1);
///     s.after(SimDuration::from_units(5.0), |w, _| w.push(6));
/// });
/// let world = k.run_to_quiescence();
/// assert_eq!(world, vec![1, 2, 6]);
/// ```
pub struct Kernel<W> {
    world: W,
    queue: EventQueue<BoxedEvent<W>>,
    now: SimTime,
}

impl<W> Kernel<W> {
    /// Creates a kernel owning `world`, with the clock at zero.
    pub fn new(world: W) -> Self {
        Kernel {
            world,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared access to the world between runs.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world between runs.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Schedules `f` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the current clock.
    pub fn schedule(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, Box::new(f));
    }

    /// Runs one event; returns `false` when none remain.
    pub fn step(&mut self) -> bool {
        let Some((at, ev)) = self.queue.pop() else {
            return false;
        };
        self.now = at;
        let mut sched = Scheduler {
            now: at,
            pending: Vec::new(),
        };
        ev(&mut self.world, &mut sched);
        for (t, f) in sched.pending {
            self.queue.push(t, f);
        }
        true
    }

    /// Runs until no events remain, consuming the kernel and returning the
    /// world.
    pub fn run_to_quiescence(mut self) -> W {
        while self.step() {}
        self.world
    }

    /// Runs all events up to and including `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }
}

impl<W: std::fmt::Debug> std::fmt::Debug for Kernel<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("world", &self.world)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut k: Kernel<Vec<u64>> = Kernel::new(Vec::new());
        for ticks in [50u64, 10, 30] {
            k.schedule(SimTime::from_ticks(ticks), move |w, s| {
                w.push(s.now().as_ticks());
            });
        }
        assert_eq!(k.run_to_quiescence(), vec![10, 30, 50]);
    }

    #[test]
    fn nested_scheduling_works() {
        let mut k: Kernel<u32> = Kernel::new(0);
        k.schedule(SimTime::ZERO, |w, s| {
            *w += 1;
            s.after(SimDuration::from_units(1.0), |w, s| {
                *w += 10;
                s.after(SimDuration::from_units(1.0), |w, _| *w += 100);
            });
        });
        assert_eq!(k.run_to_quiescence(), 111);
    }

    #[test]
    fn run_until_advances_clock() {
        let mut k: Kernel<u32> = Kernel::new(0);
        k.schedule(SimTime::from_units(5.0), |w, _| *w += 1);
        k.run_until(SimTime::from_units(2.0));
        assert_eq!(*k.world(), 0);
        assert_eq!(k.now(), SimTime::from_units(2.0));
        k.run_until(SimTime::from_units(5.0));
        assert_eq!(*k.world(), 1);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut k: Kernel<u32> = Kernel::new(0);
        k.schedule(SimTime::from_units(5.0), |_, _| {});
        k.run_until(SimTime::from_units(6.0));
        k.schedule(SimTime::from_units(1.0), |_, _| {});
    }
}
