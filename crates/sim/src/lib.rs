//! # lems-sim — deterministic discrete-event simulation kernel
//!
//! Simulation substrate for the `lems` workspace, a reproduction of
//! *"Designing Large Electronic Mail Systems"* (Bahaa-El-Din & Yuen,
//! ICDCS 1988). The paper evaluated its algorithms "using simulation"; this
//! crate provides that simulator as a reusable library:
//!
//! * [`time`] — integer simulated time in paper "time units";
//! * [`queue`] — the future-event list with deterministic FIFO tie-breaks,
//!   backed by an amortized-O(1) calendar queue (with the previous ordered
//!   map retained as a differential oracle);
//! * [`pool`] — the generation-checked payload slab behind the queue;
//! * [`kernel`] — a minimal closure-driven event kernel;
//! * [`actor`] — message-passing actors with timers, matching the delivery
//!   model assumed by the paper (finite, in-sequence, error-free links);
//! * [`failure`] — planned and random crash/repair injection;
//! * [`sched`] — pluggable schedulers: FIFO replay, seeded schedule
//!   fuzzing, and exhaustive small-scope interleaving exploration;
//! * [`shard`] — parallel actor execution (frozen batch → ordered commit)
//!   that is byte-identical to the sequential engine at any thread count;
//! * [`prof`] — a deterministic kernel profiler (dispatch attribution,
//!   queue health, shard batch stats) that changes no output byte;
//! * [`rng`] — seeded, forkable randomness so runs reproduce exactly;
//! * [`stats`] — counters, time-weighted gauges, summaries, histograms;
//! * [`trace`] — bounded in-memory event tracing;
//! * [`span`] — causal message-lifecycle spans with a conservation auditor;
//! * [`metrics`] — per-actor registries of counters, gauges, and
//!   log-scale latency histograms, mergeable across actors and threads.
//!
//! Everything is deterministic by construction: a run is a pure function of
//! its seed and configuration. The default engines are single-threaded; the
//! [`shard`] engine adds worker threads without changing any output byte.
//!
//! # Examples
//!
//! ```
//! use lems_sim::prelude::*;
//!
//! struct Echo;
//! impl Actor for Echo {
//!     type Msg = &'static str;
//!     fn on_message(&mut self, from: ActorId, msg: &'static str, ctx: &mut Ctx<'_, &'static str>) {
//!         if msg == "ping" && from != ActorId::EXTERNAL {
//!             ctx.send(from, "pong", SimDuration::from_units(1.0));
//!         }
//!     }
//! }
//!
//! let mut sim = ActorSim::new(7);
//! let echo = sim.add_actor(Echo);
//! sim.inject(echo, "ping", SimDuration::from_units(0.5));
//! sim.run_to_quiescence();
//! assert_eq!(sim.counters().delivered.get(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod failure;
pub mod kernel;
pub mod linkfault;
pub mod metrics;
pub mod pool;
pub mod prof;
pub mod queue;
pub mod rng;
pub mod sched;
pub mod session;
pub mod shard;
pub mod span;
pub mod stats;
pub mod time;
pub mod trace;

/// Convenient glob-import of the most used simulation types.
pub mod prelude {
    pub use crate::actor::{Actor, ActorId, ActorSim, Ctx, TimerId};
    pub use crate::failure::{FailureError, FailurePlan};
    pub use crate::linkfault::{LinkFaultPlan, LinkProfile};
    pub use crate::metrics::MetricsRegistry;
    pub use crate::rng::SimRng;
    pub use crate::sched::{
        ExploreBounds, Explorer, FifoScheduler, RandomScheduler, ReplayScheduler, Schedule,
        Scheduler,
    };
    pub use crate::session::RetryPolicy;
    pub use crate::shard::ShardedSim;
    pub use crate::span::{SpanEvent, SpanId, SpanLog, SpanStage};
    pub use crate::stats::{Counter, Histogram, LogHistogram, Summary, TimeWeighted};
    pub use crate::time::{SimDuration, SimTime};
}
