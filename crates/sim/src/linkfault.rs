//! Link-level fault injection: outages, partitions, loss, duplication,
//! delay jitter.
//!
//! The paper's delivery protocols (§3.1.2: ordered authority-server lists,
//! store-and-forward, GetMail) were exercised only against *actor* crashes
//! until this module existed — every link was perfect. A [`LinkFaultPlan`]
//! is the network-side sibling of [`FailurePlan`](crate::failure::FailurePlan):
//! an explicit, inspectable description of when directed links are down
//! (outages, partitions) and how the surviving links misbehave
//! (probabilistic drop, duplication, uniform delay jitter). The engine
//! consults the plan on every send, so protocols face lost, delayed, and
//! duplicated messages rather than an idealised wire.
//!
//! All stochastic decisions draw from a dedicated engine fork
//! (`"link-faults"`), so enabling faults never perturbs the randomness
//! actors observe through [`Ctx::rng`](crate::actor::Ctx::rng) — the same
//! seed with faults on/off keeps the actor-visible streams identical.

use std::collections::BTreeMap;

use crate::actor::ActorId;
use crate::failure::{FailureError, Outage};
use crate::time::{SimDuration, SimTime};

/// How a (directed) link misbehaves while it is up.
///
/// A profile is *stochastic*: each send across the link independently
/// draws for drop, then duplication, then jitter. The zero profile
/// ([`LinkProfile::lossless`]) is a perfect wire.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct LinkProfile {
    /// Probability that a message is lost on the wire.
    pub drop_prob: f64,
    /// Probability that a delivered message arrives twice.
    pub dup_prob: f64,
    /// Maximum extra delay, drawn uniformly from `[0, jitter]`.
    pub jitter: SimDuration,
}

impl LinkProfile {
    /// A perfect link: no loss, no duplication, no jitter.
    pub fn lossless() -> Self {
        LinkProfile::default()
    }

    /// Creates a profile, rejecting probabilities outside `[0, 1]`.
    pub fn new(drop_prob: f64, dup_prob: f64, jitter: SimDuration) -> Result<Self, FailureError> {
        for p in [drop_prob, dup_prob] {
            if !(0.0..=1.0).contains(&p) {
                return Err(FailureError::InvalidProbability(p));
            }
        }
        Ok(LinkProfile {
            drop_prob,
            dup_prob,
            jitter,
        })
    }

    /// True if this profile never alters traffic.
    pub fn is_lossless(&self) -> bool {
        self.drop_prob == 0.0 && self.dup_prob == 0.0 && self.jitter.is_zero()
    }
}

/// Faults for the message-passing substrate: per-link outages/partitions
/// plus stochastic misbehaviour profiles.
///
/// Links are *directed* actor pairs — an asymmetric cut (A can reach B but
/// not vice versa) is expressible. Helpers with a `_bidi` suffix apply to
/// both directions at once.
///
/// Stochastic effects (drop/dup/jitter) can be confined to
/// `[0, stochastic_horizon)`: chaos experiments set a horizon so the final
/// drain of in-flight retries runs on a clean network and the run
/// converges deterministically. Explicit outages are unaffected by the
/// horizon — they carry their own intervals.
///
/// # Examples
///
/// ```
/// use lems_sim::actor::ActorId;
/// use lems_sim::linkfault::{LinkFaultPlan, LinkProfile};
/// use lems_sim::time::{SimDuration, SimTime};
///
/// let mut plan = LinkFaultPlan::new();
/// plan.set_default_profile(
///     LinkProfile::new(0.05, 0.01, SimDuration::from_units(0.5)).unwrap(),
/// );
/// plan.add_link_outage_bidi(
///     ActorId(0),
///     ActorId(1),
///     SimTime::from_units(10.0),
///     SimTime::from_units(20.0),
/// )
/// .unwrap();
/// assert!(!plan.is_link_up(ActorId(0), ActorId(1), SimTime::from_units(15.0)));
/// assert!(plan.is_link_up(ActorId(0), ActorId(1), SimTime::from_units(20.0)));
/// assert!(plan.is_link_up(ActorId(0), ActorId(2), SimTime::from_units(15.0)));
/// ```
#[derive(Clone, Debug)]
pub struct LinkFaultPlan {
    default_profile: LinkProfile,
    overrides: BTreeMap<(ActorId, ActorId), LinkProfile>,
    outages: BTreeMap<(ActorId, ActorId), Vec<Outage>>,
    stochastic_horizon: SimTime,
}

impl Default for LinkFaultPlan {
    fn default() -> Self {
        LinkFaultPlan {
            default_profile: LinkProfile::lossless(),
            overrides: BTreeMap::new(),
            outages: BTreeMap::new(),
            stochastic_horizon: SimTime::MAX,
        }
    }
}

impl LinkFaultPlan {
    /// An empty plan: every link is perfect and always up.
    pub fn new() -> Self {
        LinkFaultPlan::default()
    }

    /// Sets the profile applied to every link without an override.
    pub fn set_default_profile(&mut self, profile: LinkProfile) {
        self.default_profile = profile;
    }

    /// Builder-style variant of [`set_default_profile`].
    ///
    /// [`set_default_profile`]: LinkFaultPlan::set_default_profile
    pub fn with_default_profile(mut self, profile: LinkProfile) -> Self {
        self.default_profile = profile;
        self
    }

    /// Overrides the profile for the directed link `from -> to`.
    pub fn set_link_profile(&mut self, from: ActorId, to: ActorId, profile: LinkProfile) {
        self.overrides.insert((from, to), profile);
    }

    /// The profile in effect for `from -> to`.
    pub fn profile(&self, from: ActorId, to: ActorId) -> LinkProfile {
        self.overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_profile)
    }

    /// Cuts the directed link `from -> to` over `[down_at, up_at)`.
    pub fn add_link_outage(
        &mut self,
        from: ActorId,
        to: ActorId,
        down_at: SimTime,
        up_at: SimTime,
    ) -> Result<(), FailureError> {
        let outage = Outage::new(down_at, up_at)?;
        self.outages.entry((from, to)).or_default().push(outage);
        Ok(())
    }

    /// Cuts both directions between `a` and `b` over `[down_at, up_at)`.
    pub fn add_link_outage_bidi(
        &mut self,
        a: ActorId,
        b: ActorId,
        down_at: SimTime,
        up_at: SimTime,
    ) -> Result<(), FailureError> {
        self.add_link_outage(a, b, down_at, up_at)?;
        self.add_link_outage(b, a, down_at, up_at)
    }

    /// Partitions `group_a` from `group_b` over `[down_at, up_at)`: every
    /// cross-group link is cut in both directions. Call repeatedly with
    /// different intervals for a flapping partition.
    pub fn add_partition(
        &mut self,
        group_a: &[ActorId],
        group_b: &[ActorId],
        down_at: SimTime,
        up_at: SimTime,
    ) -> Result<(), FailureError> {
        for &a in group_a {
            for &b in group_b {
                self.add_link_outage_bidi(a, b, down_at, up_at)?;
            }
        }
        Ok(())
    }

    /// True if the directed link `from -> to` carries traffic at `t`.
    pub fn is_link_up(&self, from: ActorId, to: ActorId, t: SimTime) -> bool {
        self.outages
            .get(&(from, to))
            .is_none_or(|list| !list.iter().any(|o| o.covers(t)))
    }

    /// The outages recorded for the directed link (empty slice if none).
    pub fn link_outages(&self, from: ActorId, to: ActorId) -> &[Outage] {
        self.outages.get(&(from, to)).map_or(&[], Vec::as_slice)
    }

    /// Directed links with at least one outage.
    pub fn affected_links(&self) -> impl Iterator<Item = (ActorId, ActorId)> + '_ {
        self.outages.keys().copied()
    }

    /// Stops drop/dup/jitter draws at `t` (outages are unaffected).
    pub fn set_stochastic_horizon(&mut self, t: SimTime) {
        self.stochastic_horizon = t;
    }

    /// Builder-style variant of [`set_stochastic_horizon`].
    ///
    /// [`set_stochastic_horizon`]: LinkFaultPlan::set_stochastic_horizon
    pub fn with_stochastic_horizon(mut self, t: SimTime) -> Self {
        self.stochastic_horizon = t;
        self
    }

    /// True if stochastic effects (drop/dup/jitter) apply at `t`.
    pub fn stochastic_active(&self, t: SimTime) -> bool {
        t < self.stochastic_horizon
    }

    /// Total number of directed link outages.
    pub fn outage_count(&self) -> usize {
        self.outages.values().map(Vec::len).sum()
    }

    /// True if this plan never alters traffic: no outages, a lossless
    /// default profile, and no lossy overrides.
    pub fn is_noop(&self) -> bool {
        self.outages.is_empty()
            && self.default_profile.is_lossless()
            && self.overrides.values().all(LinkProfile::is_lossless)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(u: f64) -> SimTime {
        SimTime::from_units(u)
    }

    #[test]
    fn profile_rejects_bad_probabilities() {
        assert!(LinkProfile::new(1.5, 0.0, SimDuration::ZERO).is_err());
        assert!(LinkProfile::new(0.0, -0.1, SimDuration::ZERO).is_err());
        assert!(LinkProfile::new(0.0, f64::NAN, SimDuration::ZERO).is_err());
        let p = LinkProfile::new(0.05, 0.01, SimDuration::from_units(1.0)).unwrap();
        assert!(!p.is_lossless());
        assert!(LinkProfile::lossless().is_lossless());
    }

    #[test]
    fn outages_are_directed() {
        let mut plan = LinkFaultPlan::new();
        plan.add_link_outage(ActorId(0), ActorId(1), t(1.0), t(2.0))
            .unwrap();
        assert!(!plan.is_link_up(ActorId(0), ActorId(1), t(1.5)));
        assert!(plan.is_link_up(ActorId(1), ActorId(0), t(1.5)));
        assert_eq!(plan.outage_count(), 1);
        assert!(!plan.is_noop());
    }

    #[test]
    fn rejects_empty_outage() {
        let mut plan = LinkFaultPlan::new();
        assert!(plan
            .add_link_outage(ActorId(0), ActorId(1), t(2.0), t(2.0))
            .is_err());
    }

    #[test]
    fn partition_cuts_every_cross_pair_both_ways() {
        let mut plan = LinkFaultPlan::new();
        let left = [ActorId(0), ActorId(1)];
        let right = [ActorId(2), ActorId(3)];
        plan.add_partition(&left, &right, t(5.0), t(6.0)).unwrap();
        for &a in &left {
            for &b in &right {
                assert!(!plan.is_link_up(a, b, t(5.5)));
                assert!(!plan.is_link_up(b, a, t(5.5)));
            }
        }
        // Intra-group links stay up.
        assert!(plan.is_link_up(ActorId(0), ActorId(1), t(5.5)));
        assert!(plan.is_link_up(ActorId(2), ActorId(3), t(5.5)));
        assert_eq!(plan.outage_count(), 8);
    }

    #[test]
    fn horizon_gates_stochastic_effects_only() {
        let mut plan = LinkFaultPlan::new();
        plan.set_default_profile(LinkProfile::new(0.5, 0.0, SimDuration::ZERO).unwrap());
        plan.set_stochastic_horizon(t(10.0));
        plan.add_link_outage(ActorId(0), ActorId(1), t(12.0), t(14.0))
            .unwrap();
        assert!(plan.stochastic_active(t(9.9)));
        assert!(!plan.stochastic_active(t(10.0)));
        // The explicit outage still applies past the horizon.
        assert!(!plan.is_link_up(ActorId(0), ActorId(1), t(13.0)));
    }

    #[test]
    fn per_link_override_beats_default() {
        let mut plan = LinkFaultPlan::new()
            .with_default_profile(LinkProfile::new(0.1, 0.0, SimDuration::ZERO).unwrap());
        plan.set_link_profile(ActorId(3), ActorId(4), LinkProfile::lossless());
        assert_eq!(
            plan.profile(ActorId(3), ActorId(4)),
            LinkProfile::lossless()
        );
        assert_eq!(
            plan.profile(ActorId(4), ActorId(3)).drop_prob,
            0.1,
            "override is directed"
        );
    }
}
