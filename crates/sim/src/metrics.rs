//! A per-actor metrics registry: named counters, time-weighted gauges, and
//! log-scale latency histograms.
//!
//! Each instrumented actor owns one [`MetricsRegistry`]; a deployment
//! collects the per-actor registries under scope names like `server:n4`
//! and [`MetricsRegistry::merge`] folds them into fleet-wide aggregates —
//! counters add, histograms add bucket-wise (see
//! [`crate::stats::LogHistogram::merge`]), and the same fold works across
//! `balance_par` worker threads because merging is associative and
//! commutative.
//!
//! Keys are `&'static str` and storage is `BTreeMap`, so iteration order —
//! and therefore any export built from it — is deterministic.

use std::collections::BTreeMap;
use std::fmt;

use crate::stats::{LogHistogram, TimeWeighted};
use crate::time::SimTime;

/// Named counters, gauges, and histograms for one actor (or one merged
/// scope).
///
/// # Examples
///
/// ```
/// use lems_sim::metrics::MetricsRegistry;
/// use lems_sim::time::SimTime;
///
/// let mut m = MetricsRegistry::new();
/// m.inc("deposited");
/// m.counter_add("deposited", 2);
/// m.gauge_add(SimTime::from_units(1.0), "storage", 3.0);
/// m.observe("delivery_latency", 4.2);
/// assert_eq!(m.counter("deposited"), 3);
/// assert_eq!(m.counter("never_touched"), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, TimeWeighted>,
    histograms: BTreeMap<&'static str, LogHistogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increments counter `name` by one.
    pub fn inc(&mut self, name: &'static str) {
        self.counter_add(name, 1);
    }

    /// Increments counter `name` by `n`.
    pub fn counter_add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Adds `delta` to gauge `name` at instant `now`, creating it at zero
    /// from `SimTime::ZERO` on first touch. Updates must be in time order
    /// (see [`TimeWeighted::set`]).
    pub fn gauge_add(&mut self, now: SimTime, name: &'static str, delta: f64) {
        self.gauges
            .entry(name)
            .or_insert_with(|| TimeWeighted::new(SimTime::ZERO, 0.0))
            .add(now, delta);
    }

    /// Sets gauge `name` to `value` at instant `now`, creating it at zero
    /// from `SimTime::ZERO` on first touch.
    pub fn gauge_set(&mut self, now: SimTime, name: &'static str, value: f64) {
        self.gauges
            .entry(name)
            .or_insert_with(|| TimeWeighted::new(SimTime::ZERO, 0.0))
            .set(now, value);
    }

    /// The gauge named `name`, if it was ever touched.
    pub fn gauge(&self, name: &str) -> Option<&TimeWeighted> {
        self.gauges.get(name)
    }

    /// Records `x` into histogram `name`, creating it with the
    /// [`LogHistogram::latency`] layout on first touch. All histograms in
    /// all registries share that layout, so cross-actor merges are always
    /// compatible.
    pub fn observe(&mut self, name: &'static str, x: f64) {
        self.histograms
            .entry(name)
            .or_insert_with(LogHistogram::latency)
            .observe(x);
    }

    /// The histogram named `name`, if it was ever touched.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, &TimeWeighted)> + '_ {
        self.gauges.iter().map(|(&k, v)| (k, v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &LogHistogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// True if nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into this registry: counters add and histograms merge
    /// bucket-wise. Gauges are *not* merged — a time-weighted average of
    /// one server's storage has no meaning summed with another's — so the
    /// merged registry keeps only its own gauges; read per-scope gauges
    /// from the per-actor registries.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in other.counters() {
            self.counter_add(name, v);
        }
        for (name, h) in other.histograms() {
            self.histograms
                .entry(name)
                .or_insert_with(LogHistogram::latency)
                .merge(h);
        }
    }
}

impl fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} counter(s), {} gauge(s), {} histogram(s)",
            self.counters.len(),
            self.gauges.len(),
            self.histograms.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.inc("a");
        m.inc("a");
        m.counter_add("b", 5);
        assert_eq!(m.counter("a"), 2);
        assert_eq!(m.counter("b"), 5);
        assert_eq!(m.counter("c"), 0);
        let names: Vec<_> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn gauges_track_time_average() {
        let mut m = MetricsRegistry::new();
        m.gauge_add(SimTime::from_units(2.0), "storage", 4.0);
        m.gauge_add(SimTime::from_units(4.0), "storage", -4.0);
        let g = m.gauge("storage").expect("gauge was touched");
        // 0 for [0,2), 4 for [2,4), 0 after => average over [0,4) is 2.
        assert!((g.average(SimTime::from_units(4.0)) - 2.0).abs() < 1e-9);
        assert_eq!(g.current(), 0.0);
        assert!(m.gauge("absent").is_none());
    }

    #[test]
    fn merge_adds_counters_and_histograms_but_not_gauges() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.inc("x");
        b.counter_add("x", 9);
        b.inc("y");
        a.observe("lat", 1.0);
        b.observe("lat", 100.0);
        b.gauge_set(SimTime::from_units(1.0), "storage", 7.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 10);
        assert_eq!(a.counter("y"), 1);
        let h = a.histogram("lat").expect("histogram was touched");
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(100.0));
        assert!(a.gauge("storage").is_none(), "gauges must not merge");
    }

    #[test]
    fn merge_order_does_not_matter() {
        let mk = |vals: &[f64], n: u64| {
            let mut m = MetricsRegistry::new();
            m.counter_add("c", n);
            for &v in vals {
                m.observe("h", v);
            }
            m
        };
        let parts = [mk(&[1.0], 2), mk(&[5.0, 9.0], 3), mk(&[0.2], 7)];
        let mut fwd = MetricsRegistry::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = MetricsRegistry::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd.counter("c"), rev.counter("c"));
        assert_eq!(
            fwd.histogram("h").map(LogHistogram::bins),
            rev.histogram("h").map(LogHistogram::bins)
        );
    }
}
