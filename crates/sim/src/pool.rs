//! A generation-checked slab for event payloads.
//!
//! The calendar queue ([`queue`](crate::queue)) keeps its ordering
//! structures small and cache-dense by storing 24-byte index entries and
//! parking the actual payloads here. Freed slots are recycled through a
//! free list, so steady-state scheduling — push one event, pop one event —
//! allocates nothing once the pool has warmed up to the peak pending count.
//!
//! Every slot carries a *generation* that is bumped when its value is
//! taken. A [`Handle`] captures the generation at insert time, so a stale
//! handle (slot since recycled) is detected and refused instead of silently
//! aliasing another event's payload — the classic slab-reuse bug class.

/// A generation-checked reference to a pooled value.
///
/// Handles are `Copy` and 8 bytes: a slot index plus the slot generation
/// observed at insert time. A handle is *live* until the value is taken;
/// afterwards every access through it returns `None`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Handle {
    index: u32,
    gen: u32,
}

struct Slot<T> {
    gen: u32,
    val: Option<T>,
}

/// Allocation-behaviour counters for one [`Pool`].
///
/// Hits recycle a freed slot; misses allocate a fresh one (every miss
/// grows the slab, so `misses == grows` today — both are kept so the
/// distinction survives a future reservation strategy). A warmed-up
/// steady state is *all hits*: `crates/sim/tests/zero_alloc.rs` pins the
/// counter form of its counting-allocator proof against these.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct PoolStats {
    /// Inserts served by recycling a freed slot.
    pub hits: u64,
    /// Inserts that found no free slot.
    pub misses: u64,
    /// Slots appended to the slab.
    pub grows: u64,
    /// Values currently live.
    pub live: usize,
    /// Slots allocated (live + recyclable) — the high-water mark.
    pub capacity: usize,
}

/// A slab of `T` with free-list recycling and generation-checked handles.
///
/// # Examples
///
/// ```
/// use lems_sim::pool::Pool;
///
/// let mut p = Pool::new();
/// let a = p.insert("alpha");
/// let b = p.insert("beta");
/// assert_eq!(p.get(a), Some(&"alpha"));
/// assert_eq!(p.take(a), Some("alpha"));
/// assert_eq!(p.get(a), None, "taken handles are dead");
///
/// // The freed slot is recycled under a new generation: the old handle
/// // stays dead.
/// let c = p.insert("gamma");
/// assert_eq!(p.get(a), None);
/// assert_eq!(p.get(c), Some(&"gamma"));
/// assert_eq!(p.get(b), Some(&"beta"));
/// ```
pub struct Pool<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
    hits: u64,
    misses: u64,
}

impl<T> Default for Pool<T> {
    fn default() -> Self {
        Pool::new()
    }
}

impl<T> Pool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        Pool {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// An empty pool with room for `capacity` values before reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        Pool {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            live: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Stores `val`, recycling a freed slot when one exists.
    pub fn insert(&mut self, val: T) -> Handle {
        self.live += 1;
        if let Some(index) = self.free.pop() {
            self.hits += 1;
            let slot = &mut self.slots[index as usize];
            slot.val = Some(val);
            return Handle {
                index,
                gen: slot.gen,
            };
        }
        self.misses += 1;
        let index = u32::try_from(self.slots.len()).unwrap_or(u32::MAX);
        debug_assert!(index != u32::MAX, "pool exceeded u32 slot space");
        self.slots.push(Slot {
            gen: 0,
            val: Some(val),
        });
        Handle { index, gen: 0 }
    }

    fn slot_of(&self, h: Handle) -> Option<&Slot<T>> {
        self.slots
            .get(h.index as usize)
            .filter(|s| s.gen == h.gen && s.val.is_some())
    }

    /// Borrows the value behind `h`, or `None` when the handle is stale.
    pub fn get(&self, h: Handle) -> Option<&T> {
        self.slot_of(h).and_then(|s| s.val.as_ref())
    }

    /// Mutably borrows the value behind `h`, or `None` when stale.
    pub fn get_mut(&mut self, h: Handle) -> Option<&mut T> {
        self.slots
            .get_mut(h.index as usize)
            .filter(|s| s.gen == h.gen)
            .and_then(|s| s.val.as_mut())
    }

    /// Removes and returns the value behind `h`, freeing its slot under a
    /// new generation. `None` when the handle is stale.
    pub fn take(&mut self, h: Handle) -> Option<T> {
        let slot = self
            .slots
            .get_mut(h.index as usize)
            .filter(|s| s.gen == h.gen)?;
        let val = slot.val.take()?;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(h.index);
        self.live -= 1;
        Some(val)
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no values are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Slots allocated (live + recyclable) — the pool's high-water mark.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Allocation-behaviour counters accumulated since construction.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits,
            misses: self.misses,
            grows: self.misses,
            live: self.live,
            capacity: self.slots.len(),
        }
    }

    /// Drops every live value and recycles all slots (generations advance,
    /// so handles issued before the clear are all dead).
    pub fn clear(&mut self) {
        self.free.clear();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.val.take().is_some() {
                slot.gen = slot.gen.wrapping_add(1);
            }
            self.free.push(i as u32);
        }
        self.live = 0;
    }
}

impl<T> std::fmt::Debug for Pool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("live", &self.live)
            .field("capacity", &self.slots.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_take_round_trip() {
        let mut p = Pool::new();
        let h = p.insert(42u64);
        assert_eq!(p.len(), 1);
        assert_eq!(p.get(h), Some(&42));
        *p.get_mut(h).unwrap() = 43;
        assert_eq!(p.take(h), Some(43));
        assert!(p.is_empty());
        assert_eq!(p.take(h), None, "double-take refused");
    }

    #[test]
    fn stale_handles_are_refused_after_recycling() {
        let mut p = Pool::new();
        let a = p.insert("a");
        assert_eq!(p.take(a), Some("a"));
        let b = p.insert("b");
        // Same slot, new generation.
        assert_eq!(p.get(a), None);
        assert_eq!(p.get_mut(a), None);
        assert_eq!(p.take(a), None);
        assert_eq!(p.get(b), Some(&"b"));
        assert_eq!(p.capacity(), 1, "slot was recycled, not re-allocated");
    }

    #[test]
    fn steady_state_recycles_without_growth() {
        let mut p = Pool::new();
        let mut handles: Vec<Handle> = (0..64).map(|i| p.insert(i)).collect();
        let peak = p.capacity();
        for round in 0..1000u32 {
            let h = handles.remove(0);
            let v = p.take(h).expect("live handle");
            assert_eq!(p.get(h), None);
            handles.push(p.insert(v + round));
        }
        assert_eq!(p.capacity(), peak, "steady churn must not grow the slab");
        assert_eq!(p.len(), 64);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut p = Pool::new();
        let a = p.insert(1);
        let b = p.insert(2);
        assert_eq!(p.stats().misses, 2, "cold inserts miss");
        assert_eq!(p.stats().hits, 0);
        p.take(a);
        p.take(b);
        p.insert(3);
        p.insert(4);
        let s = p.stats();
        assert_eq!(s.hits, 2, "warm inserts recycle");
        assert_eq!(s.misses, 2);
        assert_eq!(s.grows, s.misses);
        assert_eq!(s.live, 2);
        assert_eq!(s.capacity, 2);
    }

    #[test]
    fn clear_kills_all_handles() {
        let mut p = Pool::new();
        let hs: Vec<Handle> = (0..8).map(|i| p.insert(i)).collect();
        p.clear();
        assert!(p.is_empty());
        for h in hs {
            assert_eq!(p.get(h), None);
        }
        // Slots are recyclable after clear.
        let h = p.insert(99);
        assert_eq!(p.get(h), Some(&99));
        assert_eq!(p.capacity(), 8);
    }
}
