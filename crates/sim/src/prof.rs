//! A deterministic kernel profiler: dispatch attribution, queue health,
//! and shard batch statistics — zero-cost when off.
//!
//! The profiler answers the sizing questions of the paper's §3–§4 (which
//! actor kinds consume the simulated capacity, how deep does the event
//! queue run) for *our* kernel: per-(actor-kind, event-kind) dispatch
//! counts with sim-time busy attribution, periodic event-queue depth
//! samples, calendar-queue structure snapshots (bucket ring, front,
//! overflow, resizes), event-pool hit/miss/grow counters, and sharded-
//! engine batch statistics.
//!
//! # Determinism
//!
//! Everything exported through [`Prof::samples`] is a pure function of sim
//! time and event counts: enabling the profiler changes **no** output byte
//! of a run — trace digests, span logs, and metrics are identical with
//! profiling on or off, on both the sequential and sharded engines
//! (pinned by `crates/sim/tests/prof_digest.rs`).
//!
//! *Busy attribution* charges each dispatched event the sim-time advance
//! it caused: when the clock moves from `t0` to `t1` to fire an event,
//! that event's (actor-kind, event-kind) cell absorbs `t1 - t0` ticks.
//! Same-instant followers absorb zero. Summed over a run this decomposes
//! total simulated time across the actor kinds that consumed it, and the
//! decomposition is identical on both engines because the sharded commit
//! replays the sequential dispatch order exactly.
//!
//! Wall-clock readings live in a separate [`Wall`] side channel lapped
//! around the run loops — two `Instant` reads per run call, never per
//! event. The side channel is deliberately *not* part of
//! [`Prof::samples`]: nothing wall-clock-derived can reach a deterministic
//! artifact. This module is the single vetted wall-clock site in the
//! crate (see the `no-wall-clock` / `determinism-taint` trusted-module
//! exemption in `lems-check`).

use crate::queue::QueueStats;
use crate::time::SimTime;

/// The event classes the profiler attributes dispatches to.
///
/// These mirror the kernel's dispatch dispositions (the arms of the
/// sequential engine's `step` and the sharded engine's commit): every
/// processed event lands in exactly one class.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum ProfEvent {
    /// A message reached a live actor's `on_message`.
    Deliver,
    /// A message was dropped because its destination was down.
    DropDown,
    /// A message was dropped because its destination was never registered.
    DropUnknown,
    /// A timer fired and reached a live actor's `on_timer`.
    TimerFired,
    /// A timer was suppressed (cancelled, unknown target, or target down).
    TimerSuppressed,
    /// A crash event was applied.
    Crash,
    /// A recovery event was applied.
    Recover,
}

impl ProfEvent {
    /// Every event class, in [`Ord`] (declaration) order — the iteration
    /// order of [`Prof::samples`]' dispatch cells within one actor kind.
    const ALL: [ProfEvent; EVENT_CLASSES] = [
        ProfEvent::Deliver,
        ProfEvent::DropDown,
        ProfEvent::DropUnknown,
        ProfEvent::TimerFired,
        ProfEvent::TimerSuppressed,
        ProfEvent::Crash,
        ProfEvent::Recover,
    ];

    /// Stable label used in exported sample names.
    pub fn name(self) -> &'static str {
        match self {
            ProfEvent::Deliver => "deliver",
            ProfEvent::DropDown => "drop-down",
            ProfEvent::DropUnknown => "drop-unknown",
            ProfEvent::TimerFired => "timer",
            ProfEvent::TimerSuppressed => "timer-suppressed",
            ProfEvent::Crash => "crash",
            ProfEvent::Recover => "recover",
        }
    }
}

impl std::fmt::Display for ProfEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Actor-kind label used when an event targets an unregistered id.
const UNKNOWN_KIND: &str = "unknown";

/// Number of [`ProfEvent`] classes; sizes one actor kind's row in the
/// flat dispatch-cell table.
const EVENT_CLASSES: usize = 7;

/// How many dispatches between queue-depth samples.
///
/// Depth sampling keyed to the dispatch count (not to sim time) keeps the
/// sample schedule deterministic and the memory bound proportional to
/// events processed, independent of the simulated clock's scale.
const SAMPLE_EVERY: u64 = 1024;

#[derive(Clone, Copy, Default, Debug)]
struct Cell {
    count: u64,
    busy_ticks: u64,
}

/// One deterministic profiler sample, ready for export.
///
/// Samples come in four scopes:
///
/// * `"dispatch"` — one per (actor-kind, event-kind) cell; `name` is
///   `"{kind}/{event}"`, `count` the dispatch count, `ticks` the sim-time
///   busy attribution.
/// * `"pool"` — event-pool counters (`hits`, `misses`, `grows`, `live`,
///   `capacity`).
/// * `"queue"` — calendar-queue aggregates (`depth`, `front`,
///   `in-buckets`, `overflow`, `buckets`, `resizes`) and the depth
///   timeline (`name == "depth-sample"`, one per [`SAMPLE_EVERY`]
///   dispatches, `at` carrying the sample instant).
/// * `"shard"` — batch statistics, present only on the sharded engine
///   (`batches`, `batch-events`, `batch-max`, `groups`, `groups-max`,
///   `offloaded`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProfSample {
    /// Which subsystem the sample describes.
    pub scope: &'static str,
    /// Stable metric name within the scope.
    pub name: String,
    /// Sim time the sample refers to (`SimTime::ZERO` for run aggregates).
    pub at: SimTime,
    /// Primary value: a count or a level.
    pub count: u64,
    /// Sim-time ticks attributed to the sample (0 where not applicable).
    pub ticks: u64,
}

/// Wall-clock side channel: total real time spent inside profiled run
/// loops.
///
/// This is the **only** wall-clock reader in `lems-sim`, and its readings
/// never enter [`Prof::samples`] — they surface separately (e.g. as bench
/// report notes) so deterministic artifacts stay pure functions of the
/// seed. Laps wrap whole run calls, not events, so the cost is two
/// `Instant` reads per `run_*` invocation.
#[derive(Default, Debug)]
pub struct Wall {
    nanos: u128,
    started: Option<std::time::Instant>,
}

impl Wall {
    fn start(&mut self) {
        if self.started.is_none() {
            self.started = Some(std::time::Instant::now());
        }
    }

    fn stop(&mut self) {
        if let Some(s) = self.started.take() {
            self.nanos += s.elapsed().as_nanos();
        }
    }

    /// Total nanoseconds accumulated across completed laps.
    pub fn nanos(&self) -> u128 {
        self.nanos
    }
}

/// The kernel profiler. Owned by the engine core; disabled (and free
/// beyond one branch per event) until `enable_prof` is called on the
/// engine.
///
/// # Examples
///
/// ```
/// use lems_sim::actor::{Actor, ActorId, ActorSim, Ctx};
/// use lems_sim::time::SimDuration;
///
/// struct Echo;
/// impl Actor for Echo {
///     type Msg = ();
///     fn on_message(&mut self, _f: ActorId, _m: (), _c: &mut Ctx<'_, ()>) {}
///     fn kind(&self) -> &'static str { "echo" }
/// }
///
/// let mut sim = ActorSim::new(1);
/// let a = sim.add_actor(Echo);
/// sim.enable_prof();
/// sim.inject(a, (), SimDuration::from_units(1.0));
/// sim.run_to_quiescence();
/// let samples = sim.profile_samples();
/// assert!(samples
///     .iter()
///     .any(|s| s.scope == "dispatch" && s.name == "echo/deliver" && s.count == 1));
/// ```
#[derive(Default, Debug)]
pub struct Prof {
    enabled: bool,
    /// Deduplicated actor-kind labels; slot 0 is [`UNKNOWN_KIND`]. One
    /// row of [`EVENT_CLASSES`] cells per slot in `cells`.
    kind_names: Vec<&'static str>,
    /// Actor id -> slot in `kind_names`; registered at `add_actor`
    /// regardless of the enabled flag so late `enable_prof` calls still
    /// attribute correctly.
    kind_slots: Vec<usize>,
    /// Flat dispatch-cell table, indexed `slot * EVENT_CLASSES + event`.
    /// A dense array lookup keeps the per-dispatch hook to a couple of
    /// adds — no string compares, no tree walk — which is what holds the
    /// profiler inside its gated 5% overhead budget.
    cells: Vec<Cell>,
    last_now: SimTime,
    dispatches: u64,
    queue_samples: Vec<(SimTime, u64)>,
    batches: u64,
    batch_events: u64,
    batch_max: u64,
    groups: u64,
    groups_max: u64,
    offloaded: u64,
    wall: Wall,
}

impl Prof {
    /// True once profiling has been switched on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn enable(&mut self) {
        self.enabled = true;
        self.ensure_unknown_slot();
    }

    /// Guarantees slot 0 ([`UNKNOWN_KIND`]) and its cell row exist, so
    /// the dispatch hook can index unconditionally.
    fn ensure_unknown_slot(&mut self) {
        if self.kind_names.is_empty() {
            self.kind_names.push(UNKNOWN_KIND);
            self.cells.resize(EVENT_CLASSES, Cell::default());
        }
    }

    pub(crate) fn register_kind(&mut self, kind: &'static str) {
        self.ensure_unknown_slot();
        let slot = self
            .kind_names
            .iter()
            .position(|&k| k == kind)
            .unwrap_or_else(|| {
                self.kind_names.push(kind);
                self.cells
                    .resize(self.kind_names.len() * EVENT_CLASSES, Cell::default());
                self.kind_names.len() - 1
            });
        self.kind_slots.push(slot);
    }

    /// Records one dispatched event: bumps the (actor-kind, event-kind)
    /// cell, charges it the sim-time advance since the previous dispatch,
    /// and samples the queue depth every [`SAMPLE_EVERY`] dispatches.
    ///
    /// Callers guard on [`Prof::is_enabled`]; the hook is a no-op when
    /// profiling is off.
    pub(crate) fn dispatch(&mut self, actor_idx: usize, ev: ProfEvent, now: SimTime, depth: u64) {
        if !self.enabled {
            return;
        }
        let slot = self.kind_slots.get(actor_idx).copied().unwrap_or(0);
        let delta = now.as_ticks().saturating_sub(self.last_now.as_ticks());
        self.last_now = now;
        let cell = &mut self.cells[slot * EVENT_CLASSES + ev as usize];
        cell.count += 1;
        cell.busy_ticks += delta;
        self.dispatches += 1;
        if self.dispatches.is_multiple_of(SAMPLE_EVERY) {
            self.queue_samples.push((now, depth));
        }
    }

    /// Records one sharded batch: its event count, group (task) count, and
    /// whether evaluation was offloaded to the worker pool.
    pub(crate) fn batch(&mut self, events: u64, groups: u64, offloaded: bool) {
        if !self.enabled {
            return;
        }
        self.batches += 1;
        self.batch_events += events;
        self.batch_max = self.batch_max.max(events);
        self.groups += groups;
        self.groups_max = self.groups_max.max(groups);
        if offloaded {
            self.offloaded += 1;
        }
    }

    pub(crate) fn wall_start(&mut self) {
        if self.enabled {
            self.wall.start();
        }
    }

    pub(crate) fn wall_stop(&mut self) {
        if self.enabled {
            self.wall.stop();
        }
    }

    /// Total events the profiler has attributed.
    pub fn dispatches(&self) -> u64 {
        self.dispatches
    }

    /// Wall-clock nanoseconds spent inside profiled run loops — the
    /// non-deterministic side channel, surfaced separately from
    /// [`Prof::samples`] by design.
    pub fn wall_nanos(&self) -> u128 {
        self.wall.nanos()
    }

    /// Renders the profiler state as a deterministic, ordered sample list:
    /// dispatch cells (sorted by kind then event), pool counters, queue
    /// aggregates, the depth timeline, and — when the sharded engine ran —
    /// batch statistics. `queue` supplies the owning engine's current
    /// queue structure snapshot.
    ///
    /// Empty when profiling is disabled.
    pub fn samples(&self, queue: QueueStats) -> Vec<ProfSample> {
        if !self.enabled {
            return Vec::new();
        }
        let agg = |name: &str, count: u64| ProfSample {
            scope: "queue",
            name: name.to_owned(),
            at: SimTime::ZERO,
            count,
            ticks: 0,
        };
        let pool = |name: &str, count: u64| ProfSample {
            scope: "pool",
            name: name.to_owned(),
            at: SimTime::ZERO,
            count,
            ticks: 0,
        };
        // Render touched cells sorted by (kind label, event class) — the
        // order the old tree-keyed table exported, kept stable for the
        // golden dumps.
        let mut touched: Vec<(&'static str, ProfEvent, Cell)> = Vec::new();
        for (slot, &kind) in self.kind_names.iter().enumerate() {
            for ev in ProfEvent::ALL {
                let cell = self.cells[slot * EVENT_CLASSES + ev as usize];
                if cell.count > 0 {
                    touched.push((kind, ev, cell));
                }
            }
        }
        touched.sort_by_key(|&(kind, ev, _)| (kind, ev));
        let mut out = Vec::with_capacity(touched.len() + self.queue_samples.len() + 16);
        for (kind, ev, cell) in touched {
            out.push(ProfSample {
                scope: "dispatch",
                name: format!("{kind}/{ev}"),
                at: SimTime::ZERO,
                count: cell.count,
                ticks: cell.busy_ticks,
            });
        }
        out.push(pool("hits", queue.pool_hits));
        out.push(pool("misses", queue.pool_misses));
        out.push(pool("grows", queue.pool_grows));
        out.push(pool("live", queue.pool_live as u64));
        out.push(pool("capacity", queue.pool_capacity as u64));
        out.push(agg("depth", queue.depth as u64));
        out.push(agg("front", queue.front as u64));
        out.push(agg("in-buckets", queue.in_buckets as u64));
        out.push(agg("overflow", queue.overflow as u64));
        out.push(agg("buckets", queue.buckets as u64));
        out.push(agg("resizes", queue.resizes));
        for &(at, depth) in &self.queue_samples {
            out.push(ProfSample {
                scope: "queue",
                name: "depth-sample".to_owned(),
                at,
                count: depth,
                ticks: 0,
            });
        }
        if self.batches > 0 {
            let shard = |name: &str, count: u64| ProfSample {
                scope: "shard",
                name: name.to_owned(),
                at: SimTime::ZERO,
                count,
                ticks: 0,
            };
            out.push(shard("batches", self.batches));
            out.push(shard("batch-events", self.batch_events));
            out.push(shard("batch-max", self.batch_max));
            out.push(shard("groups", self.groups));
            out.push(shard("groups-max", self.groups_max));
            out.push(shard("offloaded", self.offloaded));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_prof_records_nothing() {
        let mut p = Prof::default();
        p.register_kind("a");
        p.dispatch(0, ProfEvent::Deliver, SimTime::from_ticks(5), 1);
        p.batch(3, 2, true);
        assert_eq!(p.dispatches(), 0);
        assert!(p.samples(QueueStats::default()).is_empty());
        assert_eq!(p.wall_nanos(), 0);
    }

    #[test]
    fn busy_attribution_charges_time_advances() {
        let mut p = Prof::default();
        p.register_kind("server");
        p.register_kind("host");
        p.enable();
        // Clock advances 10 ticks to fire the first event, then a
        // same-instant follower, then 5 more ticks.
        p.dispatch(0, ProfEvent::Deliver, SimTime::from_ticks(10), 4);
        p.dispatch(1, ProfEvent::Deliver, SimTime::from_ticks(10), 3);
        p.dispatch(0, ProfEvent::TimerFired, SimTime::from_ticks(15), 2);
        let samples = p.samples(QueueStats::default());
        let cell = |name: &str| {
            samples
                .iter()
                .find(|s| s.scope == "dispatch" && s.name == name)
                .expect("cell present")
        };
        assert_eq!(cell("server/deliver").count, 1);
        assert_eq!(cell("server/deliver").ticks, 10);
        assert_eq!(cell("host/deliver").ticks, 0, "same-instant follower");
        assert_eq!(cell("server/timer").ticks, 5);
        assert_eq!(p.dispatches(), 3);
    }

    #[test]
    fn unknown_actor_indices_fall_back_to_unknown_kind() {
        let mut p = Prof::default();
        p.enable();
        p.dispatch(999, ProfEvent::DropUnknown, SimTime::from_ticks(1), 0);
        let samples = p.samples(QueueStats::default());
        assert!(samples
            .iter()
            .any(|s| s.name == "unknown/drop-unknown" && s.count == 1));
    }

    #[test]
    fn depth_samples_land_on_the_sampling_grid() {
        let mut p = Prof::default();
        p.register_kind("a");
        p.enable();
        for i in 0..(SAMPLE_EVERY * 2 + 10) {
            p.dispatch(0, ProfEvent::Deliver, SimTime::from_ticks(i), i % 7);
        }
        let samples = p.samples(QueueStats::default());
        let depth_samples: Vec<&ProfSample> = samples
            .iter()
            .filter(|s| s.name == "depth-sample")
            .collect();
        assert_eq!(depth_samples.len(), 2);
        assert_eq!(depth_samples[0].at, SimTime::from_ticks(SAMPLE_EVERY - 1));
    }

    #[test]
    fn shard_stats_appear_only_after_batches() {
        let mut p = Prof::default();
        p.enable();
        assert!(!p
            .samples(QueueStats::default())
            .iter()
            .any(|s| s.scope == "shard"));
        p.batch(8, 4, true);
        p.batch(2, 2, false);
        let samples = p.samples(QueueStats::default());
        let shard = |name: &str| {
            samples
                .iter()
                .find(|s| s.scope == "shard" && s.name == name)
                .expect("shard stat present")
                .count
        };
        assert_eq!(shard("batches"), 2);
        assert_eq!(shard("batch-events"), 10);
        assert_eq!(shard("batch-max"), 8);
        assert_eq!(shard("groups-max"), 4);
        assert_eq!(shard("offloaded"), 1);
    }

    #[test]
    fn wall_side_channel_accumulates_only_when_enabled() {
        let mut p = Prof::default();
        p.wall_start();
        p.wall_stop();
        assert_eq!(p.wall_nanos(), 0, "disabled prof must not read the clock");
        p.enable();
        p.wall_start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        p.wall_stop();
        assert!(p.wall_nanos() > 0);
    }
}
