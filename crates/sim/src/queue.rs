//! The future-event list: a time-ordered priority queue with a deterministic
//! FIFO tie-break.
//!
//! Two events scheduled for the same instant fire in the order they were
//! scheduled. This is what makes same-seed runs byte-for-byte reproducible.
//!
//! The queue is backed by an ordered map keyed on `(time, sequence)`, which
//! pops in exactly the order the old binary-heap implementation did while
//! also exposing the *ready set* — every event scheduled for the earliest
//! pending instant — so a [`Scheduler`](crate::sched::Scheduler) can pick
//! which one fires next during schedule exploration.

use std::collections::BTreeMap;

use crate::time::SimTime;

/// Monotonic sequence number used to break ties between events scheduled for
/// the same instant.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct EventSeq(pub u64);

/// A future-event list holding events of type `E`.
///
/// # Examples
///
/// ```
/// use lems_sim::queue::EventQueue;
/// use lems_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_units(2.0), "later");
/// q.push(SimTime::from_units(1.0), "sooner");
/// q.push(SimTime::from_units(1.0), "sooner-but-second");
///
/// assert_eq!(q.pop().unwrap().1, "sooner");
/// assert_eq!(q.pop().unwrap().1, "sooner-but-second");
/// assert_eq!(q.pop().unwrap().1, "later");
/// assert!(q.pop().is_none());
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    map: BTreeMap<(SimTime, EventSeq), E>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            map: BTreeMap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `at`. Returns the sequence number
    /// assigned to the event (useful for cancellation bookkeeping).
    pub fn push(&mut self, at: SimTime, event: E) -> EventSeq {
        let seq = EventSeq(self.next_seq);
        self.next_seq += 1;
        self.map.insert((at, seq), event);
        seq
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.map.pop_first().map(|((at, _), e)| (at, e))
    }

    /// Removes and returns the earliest event together with its sequence
    /// number.
    pub fn pop_with_seq(&mut self) -> Option<(SimTime, EventSeq, E)> {
        self.map.pop_first().map(|((at, seq), e)| (at, seq, e))
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.map.first_key_value().map(|((at, _), _)| *at)
    }

    /// Iterates over the *ready set*: every event scheduled for the earliest
    /// pending instant, in scheduling (sequence) order. Empty when the queue
    /// is empty.
    pub fn ready(&self) -> impl Iterator<Item = (SimTime, EventSeq, &E)> {
        let head = self.peek_time();
        self.map
            .iter()
            .take_while(move |((at, _), _)| Some(*at) == head)
            .map(|(&(at, seq), e)| (at, seq, e))
    }

    /// Removes a specific event by its firing time and sequence number.
    /// Used by schedulers to fire a ready event other than the head.
    pub fn remove(&mut self, at: SimTime, seq: EventSeq) -> Option<E> {
        self.map.remove(&(at, seq))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.map.len())
            .field("scheduled_total", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(30), 3);
        q.push(SimTime::from_ticks(10), 1);
        q.push(SimTime::from_ticks(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ticks(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ticks(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(7)));
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 1);
    }

    #[test]
    fn ready_set_covers_exactly_the_earliest_instant() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(5), "a");
        q.push(SimTime::from_ticks(5), "b");
        q.push(SimTime::from_ticks(9), "c");
        let ready: Vec<&str> = q.ready().map(|(_, _, e)| *e).collect();
        assert_eq!(ready, vec!["a", "b"]);
    }

    #[test]
    fn remove_targets_a_specific_entry() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ticks(5);
        q.push(t, "a");
        let seq_b = q.push(t, "b");
        q.push(t, "c");
        assert_eq!(q.remove(t, seq_b), Some("b"));
        assert_eq!(q.remove(t, seq_b), None);
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "c"]);
    }

    proptest! {
        /// Popping always yields events in non-decreasing time order, and
        /// within equal times in scheduling order.
        #[test]
        fn pop_order_is_sorted_and_stable(times in proptest::collection::vec(0u64..50, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_ticks(t), i);
            }
            let mut prev: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((pt, pidx)) = prev {
                    prop_assert!(t >= pt);
                    if t == pt {
                        prop_assert!(idx > pidx);
                    }
                }
                prev = Some((t, idx));
            }
        }

        /// The head of the ready set is always what `pop` would return.
        #[test]
        fn ready_head_matches_pop(times in proptest::collection::vec(0u64..10, 1..100)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_ticks(t), i);
            }
            while !q.is_empty() {
                let head = q.ready().next().map(|(at, seq, e)| (at, seq, *e));
                let popped = q.pop_with_seq();
                prop_assert_eq!(head, popped);
            }
        }
    }
}
