//! The future-event list: a time-ordered priority queue with a deterministic
//! FIFO tie-break.
//!
//! Two events scheduled for the same instant fire in the order they were
//! scheduled. This is what makes same-seed runs byte-for-byte reproducible.
//!
//! # Backends
//!
//! The queue pops in exactly `(time, sequence)` order under either of two
//! interchangeable backends:
//!
//! * **Calendar** (default, [`EventQueue::new`]) — a bucketed *calendar
//!   queue* in the style of Brown (CACM 1988), rebuilt here for the mail
//!   simulations' hot path. Time is divided into power-of-two-wide *days*;
//!   each day hashes onto a ring of buckets. The current day is kept
//!   extracted into a sorted `front` vector consumed by a cursor, so
//!   `pop`, `peek_time` and the same-instant [`ready`](EventQueue::ready)
//!   view are O(1) and allocation-free in steady state. Pushes binary-insert
//!   into the front (same day) or append to a bucket (later day); days
//!   beyond the ring spill into a small ordered overflow map. Payloads live
//!   in a generation-checked [`Pool`](crate::pool::Pool), so the structures
//!   that get sorted and shuffled are 24-byte index entries, and freed slots
//!   recycle without touching the allocator. The ring resizes (and re-picks
//!   its day width from the observed inter-event gaps) when the pending
//!   count outgrows or undershoots it, keeping inserts and pops amortized
//!   O(1) where the previous ordered-map backend paid O(log n) per event.
//!
//! * **Baseline** ([`EventQueue::baseline`]) — the previous
//!   `BTreeMap<(time, seq), E>` implementation, kept as the differential
//!   oracle for the calendar backend (`tests/queue_differential.rs`) and as
//!   the measured before-side of the kernel throughput benchmark.
//!
//! Both backends expose the *ready set* — every event scheduled for the
//! earliest pending instant — so a [`Scheduler`](crate::sched::Scheduler)
//! can pick which one fires next during schedule exploration.

use std::collections::BTreeMap;

use crate::pool::{Handle, Pool};
use crate::time::SimTime;

/// Monotonic sequence number used to break ties between events scheduled for
/// the same instant.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct EventSeq(pub u64);

/// A 24-byte index entry: where and when, with the payload parked in the
/// pool behind a generation-checked handle.
#[derive(Clone, Copy, Debug)]
struct Entry {
    ticks: u64,
    seq: u64,
    slot: Handle,
}

impl Entry {
    fn key(&self) -> (u64, u64) {
        (self.ticks, self.seq)
    }
}

/// Smallest bucket-ring size; the ring never shrinks below this.
const MIN_BUCKETS: usize = 16;
/// Largest bucket-ring size; growth stops here.
const MAX_BUCKETS: usize = 1 << 20;
/// Initial day width exponent: 2^20 ticks ≈ one simulated time unit.
const INITIAL_SHIFT: u32 = 20;
/// Widest permitted day (2^40 ticks); keeps day arithmetic well away from
/// the u64 edge while still covering any realistic event horizon per day.
const MAX_SHIFT: u32 = 40;
/// Empty days scanned on a refill before jumping straight to the earliest
/// pending day. Bounds worst-case refill latency on sparse queues.
const SCAN_LIMIT: u64 = 64;

struct Calendar<E> {
    pool: Pool<E>,
    /// All pending entries whose day precedes `current_day`, sorted by
    /// `(ticks, seq)`; `front[cursor..]` is the unconsumed suffix.
    front: Vec<Entry>,
    cursor: usize,
    /// The next day the refill scan will visit. Every pending entry with an
    /// earlier day is in `front` — that invariant is what lets `peek_time`
    /// and `ready` take `&self`.
    current_day: u64,
    /// Ring of unsorted buckets; day `d` hashes to `buckets[d & mask]`.
    buckets: Vec<Vec<Entry>>,
    shift: u32,
    in_buckets: usize,
    /// Entries whose day falls beyond the ring's reach from `current_day`.
    overflow: BTreeMap<(u64, u64), Handle>,
    len: usize,
    /// Ring rebuilds (growth or shrink) since construction.
    resizes: u64,
}

impl<E> Calendar<E> {
    fn new() -> Self {
        Calendar::with_capacity(0)
    }

    fn with_capacity(capacity: usize) -> Self {
        Calendar {
            pool: Pool::with_capacity(capacity),
            front: Vec::new(),
            cursor: 0,
            current_day: 0,
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            shift: INITIAL_SHIFT,
            in_buckets: 0,
            overflow: BTreeMap::new(),
            len: 0,
            resizes: 0,
        }
    }

    fn mask(&self) -> u64 {
        self.buckets.len() as u64 - 1
    }

    fn day_of(&self, ticks: u64) -> u64 {
        ticks >> self.shift
    }

    /// Files an entry into front, ring, or overflow according to its day.
    /// Does not touch `len` and does not restore the front invariant.
    fn place(&mut self, e: Entry) {
        let day = self.day_of(e.ticks);
        if day < self.current_day {
            let key = e.key();
            let pos = self.cursor + self.front[self.cursor..].partition_point(|x| x.key() < key);
            self.front.insert(pos, e);
        } else if day - self.current_day < self.buckets.len() as u64 {
            let idx = usize::try_from(day & self.mask()).unwrap_or(0);
            self.buckets[idx].push(e);
            self.in_buckets += 1;
        } else {
            self.overflow.insert(e.key(), e.slot);
        }
    }

    /// Re-establishes `cursor < front.len()` whenever the queue is
    /// non-empty, by extracting the earliest non-empty day into `front`.
    fn refill(&mut self) {
        debug_assert!(self.front.is_empty() && self.cursor == 0 && self.len > 0);
        let mut d = self.current_day;
        let mut scanned = 0u64;
        loop {
            let idx = usize::try_from(d & self.mask()).unwrap_or(0);
            let shift = self.shift;
            let b = &mut self.buckets[idx];
            if !b.is_empty() {
                if b.iter().all(|e| e.ticks >> shift == d) {
                    // The whole bucket belongs to this day — the common
                    // case once the ring outspans the event horizon, so no
                    // later day aliases onto this slot. Move it wholesale:
                    // one memcpy, and both buffers keep their capacity for
                    // reuse (the front in particular must not restart at
                    // exact capacity, or same-day pushes reallocate it).
                    self.in_buckets -= b.len();
                    self.front.append(b);
                } else {
                    let mut i = 0;
                    while i < b.len() {
                        if b[i].ticks >> shift == d {
                            self.front.push(b.swap_remove(i));
                            self.in_buckets -= 1;
                        } else {
                            i += 1;
                        }
                    }
                }
            }
            while let Some((&(t, _), _)) = self.overflow.first_key_value() {
                if t >> self.shift > d {
                    break;
                }
                if let Some(((t, s), slot)) = self.overflow.pop_first() {
                    self.front.push(Entry {
                        ticks: t,
                        seq: s,
                        slot,
                    });
                }
            }
            if !self.front.is_empty() {
                self.front.sort_unstable_by_key(Entry::key);
                self.current_day = d.saturating_add(1);
                return;
            }
            scanned += 1;
            d = d.saturating_add(1);
            if scanned >= SCAN_LIMIT.min(self.buckets.len() as u64) {
                // Sparse stretch: jump straight to the earliest pending day.
                let bucket_min = self
                    .buckets
                    .iter()
                    .flatten()
                    .map(|e| e.ticks >> self.shift)
                    .min();
                let over_min = self
                    .overflow
                    .first_key_value()
                    .map(|(&(t, _), _)| t >> self.shift);
                match bucket_min.into_iter().chain(over_min).min() {
                    Some(m) => d = m,
                    // Unreachable while `len > 0`; bail rather than spin.
                    None => return,
                }
                scanned = 0;
            }
        }
    }

    /// Restores the front invariant after a mutation that may have consumed
    /// or removed the last front entry.
    fn maintain_front(&mut self) {
        if self.cursor >= self.front.len() {
            self.front.clear();
            self.cursor = 0;
            if self.len > 0 {
                self.refill();
            }
        }
    }

    fn push(&mut self, ticks: u64, seq: u64, event: E) {
        let slot = self.pool.insert(event);
        self.len += 1;
        self.place(Entry { ticks, seq, slot });
        self.maintain_front();
        if self.len > self.buckets.len() * 2 && self.buckets.len() < MAX_BUCKETS {
            self.resize(self.buckets.len() * 2);
        }
    }

    fn pop(&mut self) -> Option<(u64, u64, E)> {
        let e = *self.front.get(self.cursor)?;
        // The sorted front is the exact future pop order, so the payload a
        // few pops ahead can be pulled toward cache while this pop's work
        // retires — on multi-gigabyte pending sets the cold slot read is
        // the dominant per-pop cost. `black_box` keeps the speculative
        // read from being optimized away.
        if let Some(ahead) = self.front.get(self.cursor + 4) {
            std::hint::black_box(self.pool.get(ahead.slot).is_some());
        }
        let val = self.pool.take(e.slot)?;
        self.cursor += 1;
        self.len -= 1;
        self.maintain_front();
        if self.buckets.len() > MIN_BUCKETS && self.len < self.buckets.len() / 4 {
            self.resize(self.buckets.len() / 2);
        }
        Some((e.ticks, e.seq, val))
    }

    fn peek(&self) -> Option<&Entry> {
        self.front.get(self.cursor)
    }

    fn remove(&mut self, ticks: u64, seq: u64) -> Option<E> {
        let day = self.day_of(ticks);
        if day < self.current_day {
            let key = (ticks, seq);
            let rel = self.front[self.cursor..].partition_point(|x| x.key() < key);
            let pos = self.cursor + rel;
            if self.front.get(pos).map(Entry::key) == Some(key) {
                let e = self.front.remove(pos);
                let val = self.pool.take(e.slot)?;
                self.len -= 1;
                self.maintain_front();
                return Some(val);
            }
            return None;
        }
        if day - self.current_day < self.buckets.len() as u64 {
            let idx = usize::try_from(day & self.mask()).unwrap_or(0);
            let b = &mut self.buckets[idx];
            if let Some(i) = b.iter().position(|x| x.key() == (ticks, seq)) {
                let e = b.swap_remove(i);
                self.in_buckets -= 1;
                let val = self.pool.take(e.slot)?;
                self.len -= 1;
                return Some(val);
            }
        }
        // The entry may predate a window advance: pushed to overflow when
        // its day was out of the ring's reach, even if that day is within
        // reach now.
        let slot = self.overflow.remove(&(ticks, seq))?;
        let val = self.pool.take(slot)?;
        self.len -= 1;
        Some(val)
    }

    fn clear(&mut self) {
        self.pool.clear();
        self.front.clear();
        self.cursor = 0;
        for b in &mut self.buckets {
            b.clear();
        }
        self.in_buckets = 0;
        self.overflow.clear();
        self.len = 0;
    }

    /// Rebuilds the ring at `nbuckets` buckets, re-estimating the day width
    /// from the observed spread of pending events.
    fn resize(&mut self, nbuckets: usize) {
        self.resizes += 1;
        let mut all: Vec<Entry> = Vec::with_capacity(self.len);
        all.extend_from_slice(&self.front[self.cursor..]);
        self.front.clear();
        self.cursor = 0;
        for b in &mut self.buckets {
            all.append(b);
        }
        self.in_buckets = 0;
        while let Some(((t, s), slot)) = self.overflow.pop_first() {
            all.push(Entry {
                ticks: t,
                seq: s,
                slot,
            });
        }
        debug_assert_eq!(all.len(), self.len);
        self.shift = estimate_shift(&mut all, self.shift);
        self.buckets.resize_with(nbuckets, Vec::new);
        if let Some(min) = all.iter().map(|e| e.ticks).min() {
            self.current_day = min >> self.shift;
        }
        for e in all {
            self.place(e);
        }
        self.maintain_front();
    }
}

/// Picks a day-width exponent so that the events nearest the head land a
/// few per day: the calendar sweet spot where the sorted front stays short
/// but refills rarely walk empty days. The density estimate deliberately
/// counts duplicate instants — many events per tick must *narrow* the day,
/// because a wide current day swallows thousands of events and every push
/// that lands inside it pays a linear front insertion. For the same reason
/// a sample saturated by one instant picks the narrowest day rather than
/// keeping the inherited width: total duplicate saturation is the strongest
/// possible density signal, not a reason to stand pat.
fn estimate_shift(entries: &mut [Entry], current: u32) -> u32 {
    if entries.len() < 8 {
        return current;
    }
    let k = entries.len().min(256);
    entries.select_nth_unstable_by_key(k - 1, Entry::key);
    let head = &entries[..k];
    let lo = head.iter().map(|e| e.ticks).min().unwrap_or(0);
    let hi = head.iter().map(|e| e.ticks).max().unwrap_or(0);
    if lo == hi {
        return 1;
    }
    // Aim for roughly four head-adjacent events per day: with k events
    // spanning `hi - lo` ticks, a day of `4 * span / k` ticks holds ~4.
    let width = ((hi - lo).saturating_mul(4) / k as u64).max(1);
    let bits = 64 - width.leading_zeros();
    bits.clamp(1, MAX_SHIFT)
}

enum Backend<E> {
    Calendar(Calendar<E>),
    Baseline(BTreeMap<(SimTime, EventSeq), E>),
}

/// A point-in-time structural snapshot of an [`EventQueue`], for the
/// kernel profiler ([`prof`](crate::prof)) and queue-health telemetry.
///
/// On the baseline backend only `depth` is meaningful; the calendar
/// structure fields and pool counters stay zero (trees have no ring, no
/// pool).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct QueueStats {
    /// Pending events.
    pub depth: usize,
    /// Unconsumed entries in the sorted current-day front.
    pub front: usize,
    /// Entries parked in the bucket ring.
    pub in_buckets: usize,
    /// Entries in the far-future overflow map.
    pub overflow: usize,
    /// Bucket-ring size.
    pub buckets: usize,
    /// Ring rebuilds (growth or shrink) since construction.
    pub resizes: u64,
    /// Payload-pool live values.
    pub pool_live: usize,
    /// Payload-pool slot high-water mark.
    pub pool_capacity: usize,
    /// Payload-pool inserts served by recycling.
    pub pool_hits: u64,
    /// Payload-pool inserts that found no free slot.
    pub pool_misses: u64,
    /// Payload-pool slab growths.
    pub pool_grows: u64,
}

/// A future-event list holding events of type `E`.
///
/// # Examples
///
/// ```
/// use lems_sim::queue::EventQueue;
/// use lems_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_units(2.0), "later");
/// q.push(SimTime::from_units(1.0), "sooner");
/// q.push(SimTime::from_units(1.0), "sooner-but-second");
///
/// assert_eq!(q.pop().unwrap().1, "sooner");
/// assert_eq!(q.pop().unwrap().1, "sooner-but-second");
/// assert_eq!(q.pop().unwrap().1, "later");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    backend: Backend<E>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue on the calendar backend.
    pub fn new() -> Self {
        EventQueue {
            backend: Backend::Calendar(Calendar::new()),
            next_seq: 0,
        }
    }

    /// Creates an empty calendar-backed queue whose payload pool is
    /// pre-sized for `capacity` simultaneously-pending events.
    ///
    /// Steady-state scheduling never allocates once the pool has warmed up
    /// to the peak pending count; pre-sizing reaches that state in one
    /// contiguous allocation instead of a doubling ladder, which matters
    /// for multi-gigabyte pending sets where reallocation churn fragments
    /// the slab across the address space. (The baseline ordered map has no
    /// equivalent: trees allocate per node, by construction.)
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            backend: Backend::Calendar(Calendar::with_capacity(capacity)),
            next_seq: 0,
        }
    }

    /// Creates an empty queue on the baseline ordered-map backend: the
    /// pre-calendar implementation, kept as the differential-test oracle
    /// and as the before-side of throughput benchmarks.
    pub fn baseline() -> Self {
        EventQueue {
            backend: Backend::Baseline(BTreeMap::new()),
            next_seq: 0,
        }
    }

    /// True when this queue runs the baseline ordered-map backend.
    pub fn is_baseline(&self) -> bool {
        matches!(self.backend, Backend::Baseline(_))
    }

    /// Schedules `event` to fire at `at`. Returns the sequence number
    /// assigned to the event (useful for cancellation bookkeeping).
    pub fn push(&mut self, at: SimTime, event: E) -> EventSeq {
        let seq = EventSeq(self.next_seq);
        self.next_seq += 1;
        match &mut self.backend {
            Backend::Calendar(c) => c.push(at.as_ticks(), seq.0, event),
            Backend::Baseline(m) => {
                m.insert((at, seq), event);
            }
        }
        seq
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_with_seq().map(|(at, _, e)| (at, e))
    }

    /// Removes and returns the earliest event together with its sequence
    /// number.
    pub fn pop_with_seq(&mut self) -> Option<(SimTime, EventSeq, E)> {
        match &mut self.backend {
            Backend::Calendar(c) => c
                .pop()
                .map(|(t, s, e)| (SimTime::from_ticks(t), EventSeq(s), e)),
            Backend::Baseline(m) => m.pop_first().map(|((at, seq), e)| (at, seq, e)),
        }
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Calendar(c) => c.peek().map(|e| SimTime::from_ticks(e.ticks)),
            Backend::Baseline(m) => m.first_key_value().map(|((at, _), _)| *at),
        }
    }

    /// Iterates over the *ready set*: every event scheduled for the earliest
    /// pending instant, in scheduling (sequence) order. Empty when the queue
    /// is empty.
    ///
    /// The view borrows payloads in place — nothing is cloned or moved, on
    /// either backend.
    pub fn ready(&self) -> impl Iterator<Item = (SimTime, EventSeq, &E)> {
        match &self.backend {
            Backend::Calendar(c) => ReadyIter::Calendar {
                pool: &c.pool,
                rest: c.front[c.cursor..].iter(),
                head: c.peek().map_or(0, |e| e.ticks),
            },
            Backend::Baseline(m) => ReadyIter::Baseline {
                head: m.first_key_value().map(|((at, _), _)| *at),
                iter: m.iter(),
            },
        }
    }

    /// Removes a specific event by its firing time and sequence number.
    /// Used by schedulers to fire a ready event other than the head.
    pub fn remove(&mut self, at: SimTime, seq: EventSeq) -> Option<E> {
        match &mut self.backend {
            Backend::Calendar(c) => c.remove(at.as_ticks(), seq.0),
            Backend::Baseline(m) => m.remove(&(at, seq)),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Calendar(c) => c.len,
            Backend::Baseline(m) => m.len(),
        }
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// A structural snapshot for queue-health telemetry. See
    /// [`QueueStats`] for the baseline backend's reduced coverage.
    pub fn stats(&self) -> QueueStats {
        match &self.backend {
            Backend::Calendar(c) => {
                let pool = c.pool.stats();
                QueueStats {
                    depth: c.len,
                    front: c.front.len().saturating_sub(c.cursor),
                    in_buckets: c.in_buckets,
                    overflow: c.overflow.len(),
                    buckets: c.buckets.len(),
                    resizes: c.resizes,
                    pool_live: pool.live,
                    pool_capacity: pool.capacity,
                    pool_hits: pool.hits,
                    pool_misses: pool.misses,
                    pool_grows: pool.grows,
                }
            }
            Backend::Baseline(m) => QueueStats {
                depth: m.len(),
                ..QueueStats::default()
            },
        }
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Calendar(c) => c.clear(),
            Backend::Baseline(m) => m.clear(),
        }
    }
}

enum ReadyIter<'a, E> {
    Calendar {
        pool: &'a Pool<E>,
        rest: std::slice::Iter<'a, Entry>,
        head: u64,
    },
    Baseline {
        head: Option<SimTime>,
        iter: std::collections::btree_map::Iter<'a, (SimTime, EventSeq), E>,
    },
}

impl<'a, E> Iterator for ReadyIter<'a, E> {
    type Item = (SimTime, EventSeq, &'a E);

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            ReadyIter::Calendar { pool, rest, head } => {
                let e = rest.next()?;
                if e.ticks != *head {
                    return None;
                }
                pool.get(e.slot)
                    .map(|p| (SimTime::from_ticks(e.ticks), EventSeq(e.seq), p))
            }
            ReadyIter::Baseline { head, iter } => {
                let (&(at, seq), e) = iter.next()?;
                if Some(at) != *head {
                    return None;
                }
                Some((at, seq, e))
            }
        }
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let backend = match &self.backend {
            Backend::Calendar(_) => "calendar",
            Backend::Baseline(_) => "baseline",
        };
        f.debug_struct("EventQueue")
            .field("backend", &backend)
            .field("pending", &self.len())
            .field("scheduled_total", &self.next_seq)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn both() -> [EventQueue<i32>; 2] {
        [EventQueue::new(), EventQueue::baseline()]
    }

    #[test]
    fn orders_by_time() {
        for mut q in both() {
            q.push(SimTime::from_ticks(30), 3);
            q.push(SimTime::from_ticks(10), 1);
            q.push(SimTime::from_ticks(20), 2);
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![1, 2, 3]);
        }
    }

    #[test]
    fn fifo_within_same_instant() {
        for mut q in both() {
            let t = SimTime::from_ticks(5);
            for i in 0..100 {
                q.push(t, i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn peek_and_len() {
        for mut q in both() {
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
            q.push(SimTime::from_ticks(7), 0);
            assert_eq!(q.peek_time(), Some(SimTime::from_ticks(7)));
            assert_eq!(q.len(), 1);
            q.clear();
            assert!(q.is_empty());
            assert_eq!(q.scheduled_total(), 1);
        }
    }

    #[test]
    fn ready_set_covers_exactly_the_earliest_instant() {
        for backend in [EventQueue::new(), EventQueue::baseline()] {
            let mut q = backend;
            q.push(SimTime::from_ticks(5), "a");
            q.push(SimTime::from_ticks(5), "b");
            q.push(SimTime::from_ticks(9), "c");
            let ready: Vec<&str> = q.ready().map(|(_, _, e)| *e).collect();
            assert_eq!(ready, vec!["a", "b"]);
        }
    }

    #[test]
    fn remove_targets_a_specific_entry() {
        for backend in [EventQueue::new(), EventQueue::baseline()] {
            let mut q = backend;
            let t = SimTime::from_ticks(5);
            q.push(t, "a");
            let seq_b = q.push(t, "b");
            q.push(t, "c");
            assert_eq!(q.remove(t, seq_b), Some("b"));
            assert_eq!(q.remove(t, seq_b), None);
            let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec!["a", "c"]);
        }
    }

    #[test]
    fn far_future_events_survive_in_overflow() {
        let mut q = EventQueue::new();
        q.push(SimTime::MAX, 99);
        q.push(SimTime::from_ticks(u64::MAX - 1), 98);
        q.push(SimTime::from_ticks(1), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(1)));
        assert_eq!(q.pop(), Some((SimTime::from_ticks(1), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_ticks(u64::MAX - 1), 98)));
        assert_eq!(q.pop(), Some((SimTime::MAX, 99)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn bucket_rotation_across_many_days() {
        // Spread events far beyond MIN_BUCKETS days so the ring wraps and
        // the refill scan needs its jump-to-minimum path.
        let mut q = EventQueue::new();
        let day = 1u64 << INITIAL_SHIFT;
        for i in (0..200u64).rev() {
            q.push(SimTime::from_ticks(i * 37 * day), i);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn growth_and_shrink_keep_order() {
        // Push enough to force ring growth, drain to force shrink, and keep
        // checking order against a sorted reference throughout.
        let mut q = EventQueue::new();
        let mut expect: Vec<(u64, u64)> = Vec::new();
        for i in 0..5000u64 {
            let t = (i * 7919) % 1024 * 1000;
            let seq = q.push(SimTime::from_ticks(t), i);
            expect.push((t, seq.0));
        }
        expect.sort_unstable();
        let mut got = Vec::new();
        while let Some((t, s, _)) = q.pop_with_seq() {
            got.push((t.as_ticks(), s.0));
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn remove_reaches_front_bucket_and_overflow() {
        let mut q = EventQueue::new();
        let near = SimTime::from_ticks(10);
        let later = SimTime::from_ticks(5 << INITIAL_SHIFT);
        let far = SimTime::from_ticks(u64::MAX / 2);
        let s_near = q.push(near, "front");
        let s_later = q.push(later, "bucket");
        let s_far = q.push(far, "overflow");
        assert_eq!(q.remove(later, s_later), Some("bucket"));
        assert_eq!(q.remove(far, s_far), Some("overflow"));
        assert_eq!(q.remove(near, s_near), Some("front"));
        assert!(q.is_empty());
        assert_eq!(q.remove(near, s_near), None);
    }

    #[test]
    fn stats_reflect_structure_and_resizes() {
        let mut q = EventQueue::new();
        let fresh = q.stats();
        assert_eq!(fresh.depth, 0);
        assert_eq!(fresh.buckets, MIN_BUCKETS);
        assert_eq!(fresh.resizes, 0);
        for i in 0..5000u64 {
            q.push(SimTime::from_ticks(i * 1000), i);
        }
        let s = q.stats();
        assert_eq!(s.depth, 5000);
        assert_eq!(
            s.front + s.in_buckets + s.overflow,
            5000,
            "every pending entry is in exactly one structure"
        );
        assert!(s.resizes > 0, "growth to 5000 events rebuilds the ring");
        assert_eq!(s.pool_misses, s.pool_grows);
        while q.pop().is_some() {}
        let drained = q.stats();
        assert_eq!(drained.depth, 0);
        assert_eq!(drained.pool_live, 0);
        assert!(drained.resizes >= s.resizes, "shrink also counts");

        let mut b = EventQueue::baseline();
        b.push(SimTime::from_ticks(1), 1u64);
        assert_eq!(b.stats().depth, 1);
        assert_eq!(b.stats().buckets, 0, "baseline reports no calendar fields");
    }

    #[test]
    fn interleaved_push_pop_tracks_baseline() {
        // A quick deterministic differential check; the exhaustive
        // command-sequence version lives in tests/queue_differential.rs.
        let mut cal = EventQueue::new();
        let mut base = EventQueue::baseline();
        let mut x = 9u64;
        for round in 0..10_000u64 {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let t = SimTime::from_ticks((x >> 33) % 500_000);
            cal.push(t, round);
            base.push(t, round);
            if x.is_multiple_of(3) {
                assert_eq!(cal.pop_with_seq(), base.pop_with_seq());
            }
            assert_eq!(cal.peek_time(), base.peek_time());
            assert_eq!(cal.len(), base.len());
        }
        while !base.is_empty() {
            assert_eq!(cal.pop_with_seq(), base.pop_with_seq());
        }
        assert!(cal.pop().is_none());
    }

    proptest! {
        /// Popping always yields events in non-decreasing time order, and
        /// within equal times in scheduling order.
        #[test]
        fn pop_order_is_sorted_and_stable(times in proptest::collection::vec(0u64..50, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_ticks(t), i);
            }
            let mut prev: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((pt, pidx)) = prev {
                    prop_assert!(t >= pt);
                    if t == pt {
                        prop_assert!(idx > pidx);
                    }
                }
                prev = Some((t, idx));
            }
        }

        /// The head of the ready set is always what `pop` would return.
        #[test]
        fn ready_head_matches_pop(times in proptest::collection::vec(0u64..10, 1..100)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_ticks(t), i);
            }
            while !q.is_empty() {
                let head = q.ready().next().map(|(at, seq, e)| (at, seq, *e));
                let popped = q.pop_with_seq();
                prop_assert_eq!(head, popped);
            }
        }
    }
}
