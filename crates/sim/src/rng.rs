//! Deterministic, forkable random number generation.
//!
//! Every stochastic element of a simulation (workload arrivals, failure
//! times, topology generation) draws from a [`SimRng`] derived from a single
//! run seed, so that a run is exactly reproducible from its seed alone.
//! Independent subsystems *fork* their own streams by label, which keeps the
//! streams decoupled: adding draws in one subsystem does not perturb another.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::time::SimDuration;

/// A deterministic random stream.
///
/// # Examples
///
/// ```
/// use lems_sim::rng::SimRng;
///
/// let mut a = SimRng::seed(42).fork("workload");
/// let mut b = SimRng::seed(42).fork("workload");
/// assert_eq!(a.range(0..100u32), b.range(0..100u32));
///
/// // Different labels give decoupled streams.
/// let mut c = SimRng::seed(42).fork("failures");
/// let _ = c.range(0..100u32); // does not affect `a`/`b`
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Creates the root stream for a run from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this stream (or its root) was created from.
    pub fn root_seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent labelled stream.
    ///
    /// Forking does not consume randomness from `self`, so the set of forks
    /// taken from a root is stable regardless of draw order.
    pub fn fork(&self, label: &str) -> SimRng {
        // FNV-1a over the label, mixed with the root seed. Stable across
        // platforms and Rust versions (unlike `DefaultHasher`).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let derived = h ^ self.seed.rotate_left(17);
        SimRng {
            inner: StdRng::seed_from_u64(derived),
            seed: derived,
        }
    }

    /// Derives an independent stream from a numeric salt — the indexed
    /// counterpart of [`SimRng::fork`], for per-actor or per-shard streams
    /// where the discriminant is a dense integer rather than a label.
    ///
    /// Like `fork`, this does not consume randomness from `self`: the
    /// stream for a given salt is the same regardless of draw order or of
    /// which other salts were forked.
    pub fn fork_u64(&self, salt: u64) -> SimRng {
        // FNV-1a over the salt's little-endian bytes, mixed exactly as the
        // labelled fork mixes, so `fork_u64(n)` and `fork(label)` draw from
        // disjoint families unless the label collides byte-for-byte.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in salt.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let derived = h ^ self.seed.rotate_left(17);
        SimRng {
            inner: StdRng::seed_from_u64(derived),
            seed: derived,
        }
    }

    /// Uniform draw from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Exponentially distributed duration with the given mean.
    ///
    /// Used for Poisson inter-arrival times and failure/repair processes.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        let mean_units = mean.as_units();
        assert!(
            mean_units > 0.0 && mean_units.is_finite(),
            "exponential mean must be positive, got {mean_units}"
        );
        // Inverse-CDF sampling; 1-u avoids ln(0).
        let u: f64 = self.inner.gen();
        let draw = -mean_units * (1.0 - u).ln();
        SimDuration::from_units(draw.min(mean_units * 1e6))
    }

    /// Picks an index in `0..len` (uniform).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick an index from an empty collection");
        self.inner.gen_range(0..len)
    }

    /// Picks a reference to a uniformly random element of a slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Samples an index from a discrete distribution proportional to
    /// `weights`.
    ///
    /// Zipf-style recipient popularity in the workload generators is built
    /// on this.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative/non-finite value,
    /// or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(
            !weights.is_empty(),
            "weighted_index needs at least one weight"
        );
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "weights must be finite and >= 0");
                w
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut target = self.inner.gen::<f64>() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_of_draw_order() {
        let root = SimRng::seed(7);
        let mut f1 = root.fork("a");
        // Draw from the root's clone heavily; fork again — identical stream.
        let mut noisy = root.clone();
        for _ in 0..50 {
            let _ = noisy.next_u64();
        }
        let mut f2 = noisy.fork("a");
        for _ in 0..20 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    #[test]
    fn forks_with_different_labels_differ() {
        let root = SimRng::seed(7);
        let mut a = root.fork("x");
        let mut b = root.fork("y");
        let same = (0..16).all(|_| a.next_u64() == b.next_u64());
        assert!(!same, "labelled forks should diverge");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-3.0));
        assert!(r.chance(42.0));
    }

    #[test]
    fn exp_duration_mean_roughly_correct() {
        let mut r = SimRng::seed(11);
        let mean = SimDuration::from_units(2.0);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| r.exp_duration(mean).as_units()).sum();
        let avg = total / n as f64;
        assert!(
            (avg - 2.0).abs() < 0.1,
            "empirical mean {avg} too far from 2.0"
        );
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut r = SimRng::seed(3);
        let weights = [0.0, 9.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[r.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > counts[2] * 5);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed(5);
        let mut v: Vec<u32> = (0..64).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn index_empty_panics() {
        SimRng::seed(0).index(0);
    }
}
