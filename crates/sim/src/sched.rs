//! Pluggable event scheduling: FIFO replay, seeded schedule fuzzing, and
//! exhaustive small-scope exploration of same-instant interleavings.
//!
//! The engine's future-event list is totally ordered by `(time, sequence)`,
//! which makes every run deterministic — and means each run exercises
//! exactly *one* of the many message orderings a real distributed system
//! could produce. A [`Scheduler`] intercepts the moments where that order is
//! not forced: whenever two or more events are ready at the same simulated
//! instant, the engine hands the scheduler the candidate list and lets it
//! pick which event fires first.
//!
//! Three strategies are provided:
//!
//! * [`FifoScheduler`] — always picks the lowest sequence number,
//!   byte-identical to the engine's built-in order (and to the engine before
//!   schedulers existed);
//! * [`RandomScheduler`] — a seeded fuzzer that picks uniformly at each
//!   branch point and records its choices as a replayable [`Schedule`];
//! * [`ExploreScheduler`] (driven by [`Explorer`]) — depth-first exhaustive
//!   enumeration of all schedules up to configurable bounds, with a
//!   partial-order reduction that only branches when two ready events
//!   target the *same* actor.
//!
//! ## What counts as a branch point
//!
//! Candidate lists the engine builds already respect FIFO link order: for
//! deliveries, only the oldest undelivered message per ordered `(from, to)`
//! actor pair is eligible ("without error and in sequence", §3.3.1A), so no
//! scheduler can reorder one sender's messages to one receiver. Messages
//! injected from [`ActorId::EXTERNAL`] model independent workload arrivals
//! and are each their own lane.
//!
//! The partial-order reduction then skips candidate sets where every ready
//! event targets a distinct actor: actor handlers touch only their own
//! state, so those events commute and any one order is representative. Only
//! *contended* sets — two or more ready events aimed at the same actor —
//! produce a logged decision. A [`Schedule`] is the list of those decisions,
//! and replaying it through [`ReplayScheduler`] reproduces the run
//! byte-for-byte.
//!
//! The reduction is exact for handlers whose same-instant effects stay
//! local (the rule in this workspace: sends schedule strictly positive
//! delays). A handler that sent to a *third* actor with zero delay could
//! create a same-instant ordering the reduction does not enumerate.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::str::FromStr;

use crate::actor::ActorId;
use crate::queue::EventSeq;
use crate::rng::SimRng;
use crate::time::SimTime;

/// What kind of event a ready candidate is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReadyKind {
    /// A message delivery.
    Deliver,
    /// A timer firing.
    Timer,
    /// A scheduled crash.
    Crash,
    /// A scheduled recovery.
    Recover,
}

/// Summary of one event in the ready set, as shown to a [`Scheduler`].
///
/// Candidates are always presented in ascending sequence order, so index 0
/// is the event the engine would fire under plain FIFO order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReadyEvent {
    /// The event's position in global scheduling order.
    pub seq: EventSeq,
    /// The instant the event fires (identical for all candidates).
    pub at: SimTime,
    /// The kind of event.
    pub kind: ReadyKind,
    /// The actor the event acts on (delivery destination, timer owner,
    /// crash/recovery subject).
    pub target: ActorId,
    /// The sender for deliveries; for other kinds, equal to `target`.
    pub from: ActorId,
}

/// Picks which of several same-instant ready events fires next.
///
/// The engine calls [`Scheduler::choose`] only when the (FIFO-filtered)
/// candidate list has two or more entries; a single ready event always
/// fires directly. Implementations return an index into `candidates`.
pub trait Scheduler {
    /// Returns the index (into `candidates`) of the event to fire next.
    ///
    /// `candidates` is non-empty and sorted by ascending sequence number.
    /// Returning an out-of-range index is a contract violation; the engine
    /// clamps it to the last candidate.
    fn choose(&mut self, candidates: &[ReadyEvent]) -> usize;
}

/// The default strategy: always fire the lowest sequence number.
///
/// Byte-identical to the engine's behaviour with no scheduler installed
/// (and to the pre-scheduler engine): same seed, same trace.
#[derive(Clone, Copy, Debug, Default)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {
    fn choose(&mut self, _candidates: &[ReadyEvent]) -> usize {
        0
    }
}

/// A recorded series of branch decisions — one entry per contended choice
/// point, in the order the run reached them.
///
/// Schedules render as a comma-separated choice list (`"0,2,1"`; the empty
/// schedule renders as `"-"`) and parse back from that form, so a
/// counterexample printed by the explorer can be replayed from the command
/// line or pinned in a regression test.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Schedule(pub Vec<u32>);

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "-");
        }
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl FromStr for Schedule {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || s == "-" {
            return Ok(Schedule(Vec::new()));
        }
        s.split(',')
            .map(|p| {
                p.trim()
                    .parse::<u32>()
                    .map_err(|e| format!("bad schedule element {p:?}: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Schedule)
    }
}

/// Splits a candidate set into the partial-order-reduced decision.
///
/// Returns `Forced(i)` when no decision is needed (fire candidate `i`
/// without logging a branch), or `Branch(indices)` with the candidate
/// indices of the first contended group — all ready events aimed at the
/// same actor — to choose among.
enum PorDecision {
    Forced(usize),
    Branch(Vec<usize>),
}

fn por_decision(candidates: &[ReadyEvent]) -> PorDecision {
    // Count how many candidates target each actor.
    let contended = |target: ActorId| candidates.iter().filter(|c| c.target == target).count() > 1;

    // Uncontended events commute with everything at this instant: fire the
    // oldest one first, no branching. (Candidates are in sequence order, so
    // the first uncontended candidate is the oldest.)
    if let Some(i) = candidates.iter().position(|c| !contended(c.target)) {
        return PorDecision::Forced(i);
    }
    // Every candidate's target is contended; order within a group is
    // observable. Branch over the group containing the oldest candidate.
    let group_target = candidates[0].target;
    PorDecision::Branch(
        (0..candidates.len())
            .filter(|&i| candidates[i].target == group_target)
            .collect(),
    )
}

/// Seeded schedule fuzzing: at each contended choice point, picks uniformly
/// among the contended group and records the choice.
///
/// Uses the same partial-order reduction (and therefore the same decision
/// points) as the exhaustive explorer, so a schedule recorded here replays
/// byte-identically through [`ReplayScheduler`]. Because the scheduler is
/// boxed into the engine, the choice log is read back through a
/// [`ScheduleLog`] handle taken before installation.
#[derive(Debug)]
pub struct RandomScheduler {
    rng: SimRng,
    log: Rc<RefCell<Vec<u32>>>,
}

/// Read-side handle onto a [`RandomScheduler`]'s recorded choices.
#[derive(Clone, Debug)]
pub struct ScheduleLog(Rc<RefCell<Vec<u32>>>);

impl ScheduleLog {
    /// The choices recorded so far, as a replayable schedule.
    pub fn schedule(&self) -> Schedule {
        Schedule(self.0.borrow().clone())
    }
}

impl RandomScheduler {
    /// Creates a fuzzer whose choices derive from `seed`.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: SimRng::seed(seed).fork("sched-fuzz"),
            log: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// A handle that can read the recorded schedule after the scheduler
    /// has been installed into an engine.
    pub fn schedule_log(&self) -> ScheduleLog {
        ScheduleLog(Rc::clone(&self.log))
    }
}

impl Scheduler for RandomScheduler {
    fn choose(&mut self, candidates: &[ReadyEvent]) -> usize {
        match por_decision(candidates) {
            PorDecision::Forced(i) => i,
            PorDecision::Branch(group) => {
                let k = self.rng.index(group.len());
                self.log.borrow_mut().push(k as u32);
                group[k]
            }
        }
    }
}

/// Replays a recorded [`Schedule`]: consumes one recorded choice per
/// contended choice point, then falls back to choice 0 once exhausted.
#[derive(Clone, Debug)]
pub struct ReplayScheduler {
    choices: Vec<u32>,
    cursor: usize,
}

impl ReplayScheduler {
    /// Creates a scheduler replaying `schedule`.
    pub fn new(schedule: Schedule) -> Self {
        ReplayScheduler {
            choices: schedule.0,
            cursor: 0,
        }
    }
}

impl Scheduler for ReplayScheduler {
    fn choose(&mut self, candidates: &[ReadyEvent]) -> usize {
        match por_decision(candidates) {
            PorDecision::Forced(i) => i,
            PorDecision::Branch(group) => {
                let k = self.choices.get(self.cursor).copied().unwrap_or(0) as usize;
                self.cursor += 1;
                group[k.min(group.len() - 1)]
            }
        }
    }
}

/// Bounds on an exhaustive exploration.
#[derive(Clone, Copy, Debug)]
pub struct ExploreBounds {
    /// Maximum number of logged decision points per run; deeper choice
    /// points fall back to choice 0 and mark the exploration truncated.
    pub max_decisions: usize,
    /// Maximum branches explored per decision point; wider groups are
    /// clamped and mark the exploration truncated.
    pub branch_bound: usize,
    /// Maximum number of schedules to run before giving up (marks the
    /// exploration truncated).
    pub max_schedules: u64,
}

impl Default for ExploreBounds {
    fn default() -> Self {
        ExploreBounds {
            max_decisions: 64,
            branch_bound: 8,
            max_schedules: 100_000,
        }
    }
}

/// Shared state between an [`Explorer`] and the [`ExploreScheduler`] it
/// hands to each run.
#[derive(Debug)]
struct ExplorerCore {
    /// Choice prefix the current run must follow; beyond it, choice 0.
    prescribed: Vec<u32>,
    /// `(chosen, arity)` per decision point reached by the current run.
    log: Vec<(u32, u32)>,
    bounds: ExploreBounds,
    truncated: bool,
}

impl ExplorerCore {
    fn choose(&mut self, candidates: &[ReadyEvent]) -> usize {
        match por_decision(candidates) {
            PorDecision::Forced(i) => i,
            PorDecision::Branch(group) => {
                let depth = self.log.len();
                if depth >= self.bounds.max_decisions {
                    // Depth bound reached: stop logging (so the DFS cannot
                    // backtrack into this region) and follow FIFO order.
                    self.truncated = true;
                    return group[0];
                }
                let mut arity = group.len();
                if arity > self.bounds.branch_bound {
                    self.truncated = true;
                    arity = self.bounds.branch_bound;
                }
                let k = self.prescribed.get(depth).copied().unwrap_or(0) as usize;
                let k = k.min(arity - 1);
                self.log.push((k as u32, arity as u32));
                group[k]
            }
        }
    }
}

/// The scheduler handle an [`Explorer`] installs into each run.
#[derive(Debug)]
pub struct ExploreScheduler {
    core: Rc<RefCell<ExplorerCore>>,
}

impl Scheduler for ExploreScheduler {
    fn choose(&mut self, candidates: &[ReadyEvent]) -> usize {
        self.core.borrow_mut().choose(candidates)
    }
}

/// Depth-first exhaustive enumeration of schedules.
///
/// Drive it in a loop: [`Explorer::begin_run`] yields the scheduler for a
/// fresh simulation of the *same* workload, [`Explorer::finish_run`]
/// returns the schedule the run followed, and [`Explorer::advance`]
/// backtracks to the next unexplored branch (returning `false` once the
/// space — within bounds — is exhausted).
///
/// # Examples
///
/// ```
/// use lems_sim::prelude::*;
/// use lems_sim::sched::{Explorer, ExploreBounds};
///
/// struct Sink;
/// impl Actor for Sink {
///     type Msg = u8;
///     fn on_message(&mut self, _f: ActorId, _m: u8, _c: &mut Ctx<'_, u8>) {}
/// }
///
/// let mut ex = Explorer::new(ExploreBounds::default());
/// let mut schedules = 0;
/// loop {
///     let mut sim = ActorSim::new(1);
///     let a = sim.add_actor(Sink);
///     // Three simultaneous external arrivals at one actor: 3! orders.
///     for m in 0..3 {
///         sim.inject(a, m, SimDuration::from_units(1.0));
///     }
///     sim.set_scheduler(Box::new(ex.begin_run()));
///     sim.run_to_quiescence_bounded(1_000);
///     schedules += 1;
///     if !ex.advance() {
///         break;
///     }
/// }
/// assert_eq!(schedules, 6);
/// assert!(!ex.truncated());
/// ```
#[derive(Debug)]
pub struct Explorer {
    core: Rc<RefCell<ExplorerCore>>,
    schedules_run: u64,
}

impl Explorer {
    /// Creates an explorer with the given bounds.
    pub fn new(bounds: ExploreBounds) -> Self {
        Explorer {
            core: Rc::new(RefCell::new(ExplorerCore {
                prescribed: Vec::new(),
                log: Vec::new(),
                bounds,
                truncated: false,
            })),
            schedules_run: 0,
        }
    }

    /// Starts the next run: resets the per-run choice log and returns the
    /// scheduler to install into a freshly built simulation of the same
    /// workload.
    pub fn begin_run(&mut self) -> ExploreScheduler {
        let mut core = self.core.borrow_mut();
        core.log.clear();
        ExploreScheduler {
            core: Rc::clone(&self.core),
        }
    }

    /// The schedule the just-completed run followed (replayable via
    /// [`ReplayScheduler`]).
    pub fn finish_run(&self) -> Schedule {
        Schedule(self.core.borrow().log.iter().map(|&(c, _)| c).collect())
    }

    /// Backtracks to the next unexplored schedule. Returns `false` when the
    /// bounded space is exhausted (the driving loop should stop).
    pub fn advance(&mut self) -> bool {
        self.schedules_run += 1;
        let mut core = self.core.borrow_mut();
        if self.schedules_run >= core.bounds.max_schedules {
            core.truncated = true;
            return false;
        }
        // Deepest decision point with an unexplored sibling branch.
        let log = std::mem::take(&mut core.log);
        for i in (0..log.len()).rev() {
            let (chosen, arity) = log[i];
            if chosen + 1 < arity {
                core.prescribed = log[..i].iter().map(|&(c, _)| c).collect();
                core.prescribed.push(chosen + 1);
                return true;
            }
        }
        false
    }

    /// Number of schedules completed so far.
    pub fn schedules_run(&self) -> u64 {
        self.schedules_run
    }

    /// True when any bound clipped the exploration: results are a
    /// best-effort sample, not an exhaustive proof.
    pub fn truncated(&self) -> bool {
        self.core.borrow().truncated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(seq: u64, target: usize) -> ReadyEvent {
        ReadyEvent {
            seq: EventSeq(seq),
            at: SimTime::from_units(1.0),
            kind: ReadyKind::Deliver,
            target: ActorId(target),
            from: ActorId::EXTERNAL,
        }
    }

    #[test]
    fn fifo_scheduler_always_picks_head() {
        let mut s = FifoScheduler;
        assert_eq!(s.choose(&[cand(0, 1), cand(1, 1), cand(2, 2)]), 0);
    }

    #[test]
    fn por_forces_uncontended_candidates() {
        // Targets 1,2,3 all distinct: forced, oldest first.
        match por_decision(&[cand(0, 1), cand(1, 2), cand(2, 3)]) {
            PorDecision::Forced(i) => assert_eq!(i, 0),
            PorDecision::Branch(_) => panic!("expected forced"),
        }
        // Target 2 contended, target 9 not: the uncontended one is forced
        // first even though it is younger.
        match por_decision(&[cand(0, 2), cand(1, 2), cand(2, 9)]) {
            PorDecision::Forced(i) => assert_eq!(i, 2),
            PorDecision::Branch(_) => panic!("expected forced"),
        }
    }

    #[test]
    fn por_branches_on_first_contended_group() {
        match por_decision(&[cand(0, 5), cand(1, 7), cand(2, 5), cand(3, 7)]) {
            PorDecision::Branch(g) => assert_eq!(g, vec![0, 2]),
            PorDecision::Forced(_) => panic!("expected branch"),
        }
    }

    #[test]
    fn schedule_round_trips_through_display() {
        let s = Schedule(vec![0, 2, 1]);
        assert_eq!(s.to_string(), "0,2,1");
        assert_eq!("0,2,1".parse::<Schedule>().unwrap(), s);
        assert_eq!(Schedule::default().to_string(), "-");
        assert_eq!("-".parse::<Schedule>().unwrap(), Schedule::default());
        assert!(" 1, x ".parse::<Schedule>().is_err());
    }

    #[test]
    fn explorer_enumerates_a_two_way_branch_twice() {
        let mut ex = Explorer::new(ExploreBounds::default());
        let mut seen = Vec::new();
        loop {
            let mut s = ex.begin_run();
            // One decision point with two contended candidates.
            let pick = s.choose(&[cand(0, 1), cand(1, 1)]);
            seen.push(pick);
            if !ex.advance() {
                break;
            }
        }
        assert_eq!(seen, vec![0, 1]);
        assert_eq!(ex.schedules_run(), 2);
        assert!(!ex.truncated());
    }

    #[test]
    fn branch_bound_truncates() {
        let mut ex = Explorer::new(ExploreBounds {
            branch_bound: 2,
            ..ExploreBounds::default()
        });
        let cands: Vec<ReadyEvent> = (0..4).map(|s| cand(s, 1)).collect();
        let mut count = 0;
        loop {
            let mut s = ex.begin_run();
            let _ = s.choose(&cands);
            count += 1;
            if !ex.advance() {
                break;
            }
        }
        assert_eq!(count, 2, "clamped to branch_bound");
        assert!(ex.truncated());
    }

    #[test]
    fn replay_follows_recorded_choices() {
        let mut r = ReplayScheduler::new(Schedule(vec![1]));
        let picked = r.choose(&[cand(0, 1), cand(1, 1)]);
        assert_eq!(picked, 1);
        // Exhausted: falls back to choice 0.
        assert_eq!(r.choose(&[cand(2, 1), cand(3, 1)]), 0);
    }
}
