//! Session-layer retry discipline: capped exponential backoff with jitter.
//!
//! The paper's senders assume a perfect network; once links can lose and
//! delay messages (see [`linkfault`](crate::linkfault)), every
//! request/response exchange needs an end-to-end session: arm a timeout,
//! retransmit with backoff on expiry, give up after a bounded budget and
//! fall back (e.g. to the next authority server). [`RetryPolicy`] is the
//! shared timing discipline used by the System-1 and System-2 actors; it is
//! pure arithmetic over simulated time, so both protocol crates share one
//! deterministic implementation.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// Timeout/retransmit parameters for one peer exchange.
///
/// Attempt `k` (0-based) times out after
/// `min(base * backoff_factor^k, max_timeout)` plus a uniform jitter of up
/// to `jitter_frac` of that value. Jitter decorrelates retransmissions from
/// different senders so retry storms do not synchronise.
///
/// # Examples
///
/// ```
/// use lems_sim::rng::SimRng;
/// use lems_sim::session::RetryPolicy;
/// use lems_sim::time::SimDuration;
///
/// let policy = RetryPolicy::default_session();
/// let mut rng = SimRng::seed(7).fork("session");
/// let base = SimDuration::from_units(4.0);
/// let t0 = policy.timeout(base, 0, &mut rng);
/// let t1 = policy.timeout(base, 1, &mut rng);
/// assert!(t1 >= t0, "backoff grows");
/// assert!(!policy.exhausted(1));
/// assert!(policy.exhausted(policy.max_attempts));
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RetryPolicy {
    /// Total attempts per peer (first try + retransmissions). Zero means
    /// "don't even try"; callers treat every exchange as instantly failed.
    pub max_attempts: u32,
    /// Multiplier applied to the timeout per attempt.
    pub backoff_factor: f64,
    /// Upper bound for the backed-off timeout (before jitter).
    pub max_timeout: SimDuration,
    /// Uniform jitter as a fraction of the timeout (`0.1` = up to +10%).
    pub jitter_frac: f64,
}

impl RetryPolicy {
    /// The default session discipline: 3 attempts, doubling timeout capped
    /// at 60 time units, 10% jitter.
    pub fn default_session() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_factor: 2.0,
            max_timeout: SimDuration::from_units(60.0),
            jitter_frac: 0.1,
        }
    }

    /// A single attempt with no backoff and no jitter — the pre-session
    /// behaviour, kept so experiments can prove the retry layer is
    /// load-bearing.
    pub fn no_retry() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_factor: 1.0,
            max_timeout: SimDuration::MAX,
            jitter_frac: 0.0,
        }
    }

    /// The timeout to arm for 0-based attempt `attempt` given the
    /// first-attempt timeout `base`.
    pub fn timeout(&self, base: SimDuration, attempt: u32, rng: &mut SimRng) -> SimDuration {
        let factor = self.backoff_factor.powi(attempt.min(63) as i32);
        let backed = (base.as_units() * factor).min(self.max_timeout.as_units());
        let jitter = if self.jitter_frac > 0.0 {
            backed * self.jitter_frac * rng.unit()
        } else {
            0.0
        };
        SimDuration::from_units(backed + jitter)
    }

    /// True once `attempts` tries have been spent on the current peer.
    pub fn exhausted(&self, attempts: u32) -> bool {
        attempts >= self.max_attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 5,
            backoff_factor: 2.0,
            max_timeout: SimDuration::from_units(10.0),
            jitter_frac: 0.0,
        };
        let mut rng = SimRng::seed(1).fork("t");
        let base = SimDuration::from_units(3.0);
        assert_eq!(policy.timeout(base, 0, &mut rng), base);
        assert_eq!(
            policy.timeout(base, 1, &mut rng),
            SimDuration::from_units(6.0)
        );
        // 3 * 2^2 = 12 > cap 10.
        assert_eq!(
            policy.timeout(base, 2, &mut rng),
            SimDuration::from_units(10.0)
        );
    }

    #[test]
    fn jitter_stays_within_fraction() {
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff_factor: 1.0,
            max_timeout: SimDuration::MAX,
            jitter_frac: 0.25,
        };
        let mut rng = SimRng::seed(9).fork("t");
        let base = SimDuration::from_units(8.0);
        for _ in 0..100 {
            let t = policy.timeout(base, 0, &mut rng);
            assert!(t >= base);
            assert!(t <= SimDuration::from_units(8.0 * 1.25));
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let policy = RetryPolicy::default_session();
        let base = SimDuration::from_units(5.0);
        let draw = |seed: u64| {
            let mut rng = SimRng::seed(seed).fork("t");
            (0..10)
                .map(|k| policy.timeout(base, k, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(4), draw(4));
        assert_ne!(draw(4), draw(5));
    }

    #[test]
    fn no_retry_is_one_shot() {
        let policy = RetryPolicy::no_retry();
        assert!(!policy.exhausted(0));
        assert!(policy.exhausted(1));
        let mut rng = SimRng::seed(2).fork("t");
        let base = SimDuration::from_units(4.0);
        assert_eq!(policy.timeout(base, 0, &mut rng), base);
    }
}
