//! Sharded actor execution: parallel handler evaluation with a
//! deterministic, byte-identical ordered commit.
//!
//! [`ShardedSim`] runs the same actor programs as
//! [`ActorSim`](crate::actor::ActorSim), but evaluates each *frozen batch*
//! — every event scheduled for the earliest pending instant, in sequence
//! order — across worker threads. The pattern is freeze → partition →
//! parallel evaluate → ordered commit:
//!
//! 1. **Freeze.** All events at the head instant are popped in `(time,
//!    seq)` order. Nothing else can join the instant mid-batch (handlers
//!    that schedule zero-delay work create a *later wave* at the same
//!    instant, exactly as they do sequentially).
//! 2. **Partition.** The batch is split into per-actor groups (an event's
//!    group is its target actor). Events for disjoint actors touch
//!    disjoint state, so groups are independent; within a group, events
//!    keep batch order, so per-actor effects such as a crash gating a
//!    same-instant delivery, or one timer cancelling another, evolve
//!    exactly as they would sequentially.
//! 3. **Evaluate.** Groups run on worker threads (contiguous chunks, one
//!    message per worker per batch). Handlers see a [`Ctx`] backed by a
//!    shard scratch: sends, self-sends, timer arms and cancels buffer as
//!    [`Effect`]s; nothing touches shared state.
//! 4. **Commit.** The coordinator replays outcomes *in batch sequence
//!    order*: dispositions (deliver/drop/fire/suppress/crash/recover)
//!    update counters, trace, and down flags, then each handler's effects
//!    apply through the very same [`Core`] methods the sequential engine
//!    uses. FIFO clamps, link-fault randomness, trace records, and event
//!    sequence numbers are therefore assigned in exactly the order a
//!    sequential run would assign them — which is the whole argument for
//!    byte-identity at any thread count (the equivalence battery in
//!    `tests/kernel_equivalence.rs` pins it).
//!
//! # Contract
//!
//! Byte-identity with the sequential engine (and invariance across thread
//! counts) holds for actor programs that stay inside the sharded contract:
//!
//! * **Randomness**: handlers must not depend on the *interleaving* of
//!   ambient [`Ctx::rng`] draws across actors. Sequentially there is one
//!   shared stream; sharded, each actor draws from its own fork of the
//!   root seed. Programs that draw no ambient randomness in handlers (or
//!   fork their own streams) are identical on both engines.
//! * **Cancellation**: a timer cancelled in the same instant it fires is
//!   honoured when canceller and timer share an actor (the common case —
//!   timers are private to their actor). Cross-actor same-instant
//!   cancellation is outside the contract.
//! * **Down oracle**: [`Ctx::is_down`] for *other* actors answers from the
//!   batch-start snapshot; same-instant cross-actor crash visibility is
//!   outside the contract.
//!
//! Timer ids differ between engines (dense global counter vs. per-actor
//! namespaces) by design; they are opaque handles and never traced.

use std::collections::HashSet;
use std::sync::mpsc;
use std::sync::Arc;

use crate::actor::{Actor, ActorId, Core, Ctx, Ev, SimCounters, TimerId};
use crate::linkfault::LinkFaultPlan;
use crate::prof::{Prof, ProfEvent, ProfSample};
use crate::queue::QueueStats;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceKind};

/// A buffered handler effect, applied on the coordinator at commit time in
/// batch sequence order.
pub(crate) enum Effect<M> {
    /// `Ctx::send` — link faults, FIFO clamping, and trace recording all
    /// happen at commit via [`Core::send`].
    Send {
        to: ActorId,
        msg: M,
        delay: SimDuration,
    },
    /// `Ctx::send_self` — bypasses links, applied via [`Core::enqueue`].
    SendSelf { msg: M, delay: SimDuration },
    /// `Ctx::set_timer` — the namespaced id was already handed to the
    /// handler; commit schedules the timer event under that id.
    SetTimer {
        id: TimerId,
        delay: SimDuration,
        tag: u64,
    },
    /// `Ctx::cancel_timer` — commit inserts into the global cancelled set.
    CancelTimer { id: TimerId },
}

/// Per-handler scratch backing a shard-mode [`Ctx`].
pub(crate) struct ShardScratch<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) actor_idx: usize,
    /// The running actor's own down flag as locally evolved this batch.
    pub(crate) down_self: bool,
    /// Batch-start snapshot of every actor's down flag.
    pub(crate) shared_down: &'a [bool],
    /// This actor's private random stream.
    pub(crate) rng: &'a mut SimRng,
    /// This actor's namespaced timer counter.
    pub(crate) next_timer: &'a mut u64,
    /// Cancellations visible to later events in this group this batch.
    pub(crate) local_cancelled: &'a mut Vec<TimerId>,
    /// Buffered effects, in the order the handler issued them.
    pub(crate) effects: Vec<Effect<M>>,
}

/// Read-only state shared with every worker for one batch.
struct BatchShared {
    now: SimTime,
    down: Vec<bool>,
    cancelled: HashSet<TimerId>,
}

/// One group of same-instant events for a single target actor, together
/// with everything a worker needs to evaluate them.
struct Task<M> {
    /// Target actor index, or `usize::MAX` for unknown destinations.
    actor_idx: usize,
    boxed: Option<Box<dyn Actor<Msg = M> + Send>>,
    rng: SimRng,
    timer_next: u64,
    /// `(batch index, event)` in batch (sequence) order.
    events: Vec<(usize, Ev<M>)>,
}

struct TaskResult<M> {
    actor_idx: usize,
    boxed: Option<Box<dyn Actor<Msg = M> + Send>>,
    rng: SimRng,
    timer_next: u64,
    outcomes: Vec<(usize, Outcome<M>)>,
}

/// What one batch event turned out to be, decided on a worker, applied on
/// the coordinator.
enum Outcome<M> {
    Delivered {
        from: ActorId,
        to: ActorId,
        effects: Vec<Effect<M>>,
    },
    DroppedDown {
        from: ActorId,
        to: ActorId,
    },
    DroppedUnknown {
        from: ActorId,
        to: ActorId,
    },
    /// Timer reached its instant; `fired` distinguishes a handled fire
    /// from a suppression (cancelled, unknown, or down). Either way the
    /// commit removes the id from the cancelled set, as the sequential
    /// engine does.
    TimerHandled {
        id: TimerId,
        actor: ActorId,
        fired: bool,
        effects: Vec<Effect<M>>,
    },
    Crashed {
        actor: ActorId,
    },
    Recovered {
        actor: ActorId,
        effects: Vec<Effect<M>>,
    },
    /// Crash of an already-down actor, recovery of an up one, or either
    /// aimed at an unknown id: a silent no-op, exactly as sequentially.
    Skipped,
}

/// Evaluates one task: runs the group's events in order against the
/// actor's state, buffering effects. Runs on workers and on the
/// coordinator's inline path alike — one function, one semantics.
fn eval_task<M: Send + 'static>(mut task: Task<M>, shared: &BatchShared) -> TaskResult<M> {
    let mut down_self = shared.down.get(task.actor_idx).copied().unwrap_or(false);
    let mut local_cancelled: Vec<TimerId> = Vec::new();
    let mut outcomes = Vec::with_capacity(task.events.len());
    let events = std::mem::take(&mut task.events);
    for (bidx, ev) in events {
        let out = match ev {
            Ev::Deliver { from, to, msg } => {
                if task.boxed.is_none() {
                    Outcome::DroppedUnknown { from, to }
                } else if down_self {
                    Outcome::DroppedDown { from, to }
                } else {
                    let effects = run_handler(
                        &mut task,
                        shared,
                        down_self,
                        &mut local_cancelled,
                        |actor, ctx| actor.on_message(from, msg, ctx),
                    );
                    Outcome::Delivered { from, to, effects }
                }
            }
            Ev::Timer { actor, id, tag } => {
                let cancelled = shared.cancelled.contains(&id) || local_cancelled.contains(&id);
                if cancelled || task.boxed.is_none() || down_self {
                    Outcome::TimerHandled {
                        id,
                        actor,
                        fired: false,
                        effects: Vec::new(),
                    }
                } else {
                    let effects = run_handler(
                        &mut task,
                        shared,
                        down_self,
                        &mut local_cancelled,
                        |a, ctx| a.on_timer(id, tag, ctx),
                    );
                    Outcome::TimerHandled {
                        id,
                        actor,
                        fired: true,
                        effects,
                    }
                }
            }
            Ev::Crash { actor } => {
                if task.boxed.is_some() && !down_self {
                    down_self = true;
                    if let Some(a) = task.boxed.as_deref_mut() {
                        a.on_crash(shared.now);
                    }
                    Outcome::Crashed { actor }
                } else {
                    Outcome::Skipped
                }
            }
            Ev::Recover { actor } => {
                if task.boxed.is_some() && down_self {
                    down_self = false;
                    let effects = run_handler(
                        &mut task,
                        shared,
                        down_self,
                        &mut local_cancelled,
                        super::actor::Actor::on_recover,
                    );
                    Outcome::Recovered { actor, effects }
                } else {
                    Outcome::Skipped
                }
            }
        };
        outcomes.push((bidx, out));
    }
    TaskResult {
        actor_idx: task.actor_idx,
        boxed: task.boxed,
        rng: task.rng,
        timer_next: task.timer_next,
        outcomes,
    }
}

/// Runs one handler under a shard-backed [`Ctx`], returning its buffered
/// effects. Returns no effects when the actor box is absent (never the
/// case on the paths that call this).
fn run_handler<M: Send + 'static>(
    task: &mut Task<M>,
    shared: &BatchShared,
    down_self: bool,
    local_cancelled: &mut Vec<TimerId>,
    f: impl FnOnce(&mut dyn Actor<Msg = M>, &mut Ctx<'_, M>),
) -> Vec<Effect<M>> {
    let Some(actor) = task.boxed.as_deref_mut() else {
        return Vec::new();
    };
    let me = ActorId(task.actor_idx);
    let scratch = ShardScratch {
        now: shared.now,
        actor_idx: task.actor_idx,
        down_self,
        shared_down: &shared.down,
        rng: &mut task.rng,
        next_timer: &mut task.timer_next,
        local_cancelled,
        effects: Vec::new(),
    };
    let mut ctx = Ctx::shard(scratch, me);
    f(actor, &mut ctx);
    ctx.into_effects()
}

type WorkerMsg<M> = (Arc<BatchShared>, Vec<Task<M>>);

/// A persistent worker pool: one thread per worker, one channel message
/// per worker per batch. Workers own their tasks outright (actor boxes,
/// rng streams, timer counters travel with the task), so no borrows cross
/// threads.
struct Workers<M: Send + 'static> {
    to: Vec<mpsc::Sender<WorkerMsg<M>>>,
    from: mpsc::Receiver<Vec<TaskResult<M>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl<M: Send + 'static> Workers<M> {
    fn spawn(count: usize) -> Self {
        let (result_tx, from) = mpsc::channel::<Vec<TaskResult<M>>>();
        let mut to = Vec::with_capacity(count);
        let mut handles = Vec::with_capacity(count);
        for _ in 0..count {
            let (task_tx, task_rx) = mpsc::channel::<WorkerMsg<M>>();
            let tx = result_tx.clone();
            to.push(task_tx);
            handles.push(std::thread::spawn(move || {
                while let Ok((shared, tasks)) = task_rx.recv() {
                    let results: Vec<TaskResult<M>> =
                        tasks.into_iter().map(|t| eval_task(t, &shared)).collect();
                    if tx.send(results).is_err() {
                        return;
                    }
                }
            }));
        }
        Workers { to, from, handles }
    }
}

impl<M: Send + 'static> Drop for Workers<M> {
    fn drop(&mut self) {
        self.to.clear(); // closes the task channels; workers exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The sharded deterministic actor engine.
///
/// Same actor programming model as [`ActorSim`](crate::actor::ActorSim)
/// (for `Send` actors and messages), with same-instant events for disjoint
/// actors evaluated in parallel and committed in deterministic order. See
/// the [module docs](self) for the equivalence argument and contract.
///
/// # Examples
///
/// ```
/// use lems_sim::shard::ShardedSim;
/// use lems_sim::actor::{Actor, ActorId, Ctx};
/// use lems_sim::time::{SimDuration, SimTime};
///
/// struct Counter { got: u32 }
/// impl Actor for Counter {
///     type Msg = u32;
///     fn on_message(&mut self, _f: ActorId, m: u32, _c: &mut Ctx<'_, u32>) {
///         self.got += m;
///     }
/// }
///
/// let mut sim = ShardedSim::new(7, 4); // seed 7, up to 4 threads
/// let a = sim.add_actor(Counter { got: 0 });
/// let b = sim.add_actor(Counter { got: 0 });
/// // Same instant, different actors: evaluated in parallel.
/// sim.inject(a, 3, SimDuration::from_units(1.0));
/// sim.inject(b, 4, SimDuration::from_units(1.0));
/// assert!(sim.run_to_quiescence_bounded(100));
/// assert_eq!(sim.actor::<Counter>(a).unwrap().got, 3);
/// assert_eq!(sim.actor::<Counter>(b).unwrap().got, 4);
/// assert_eq!(sim.now(), SimTime::from_units(1.0));
/// ```
pub struct ShardedSim<M: Send + 'static> {
    core: Core<M>,
    actors: Vec<Option<Box<dyn Actor<Msg = M> + Send>>>,
    started: Vec<bool>,
    /// Per-actor random streams, forked from the root seed by index.
    rngs: Vec<SimRng>,
    /// Per-actor namespaced timer counters.
    timer_next: Vec<u64>,
    seed: u64,
    threads: usize,
    workers: Option<Workers<M>>,
    /// Epoch-stamped scratch mapping actor index → task slot for the batch
    /// being partitioned (last slot = unknown destinations). Stamping
    /// avoids clearing the whole map every batch.
    group_slot: Vec<(u64, u32)>,
    group_epoch: u64,
}

/// Batches smaller than this always evaluate inline on the coordinator:
/// the channel round-trip costs more than the work.
const INLINE_GROUPS: usize = 4;

impl<M: Send + 'static> ShardedSim<M> {
    /// Creates a sharded engine whose randomness derives from `seed`,
    /// evaluating batches on up to `threads` threads (clamped to at least
    /// 1; the coordinator counts as one). The digests a run produces are
    /// the same for every `threads` value — parallelism changes wall-clock
    /// time, never results.
    pub fn new(seed: u64, threads: usize) -> Self {
        let threads = threads.max(1);
        let workers = if threads > 1 {
            Some(Workers::spawn(threads - 1))
        } else {
            None
        };
        ShardedSim {
            core: Core::new(seed),
            actors: Vec::new(),
            started: Vec::new(),
            rngs: Vec::new(),
            timer_next: Vec::new(),
            seed,
            threads,
            workers,
            group_slot: vec![(0, 0)],
            group_epoch: 0,
        }
    }

    /// Disables per-pair FIFO delivery, allowing messages to reorder when
    /// delays differ.
    pub fn without_fifo_links(mut self) -> Self {
        self.core.fifo = false;
        self
    }

    /// Enables bounded in-memory event tracing (for debugging and tests).
    /// A capacity of `usize::MAX` keeps the complete history.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.core.trace = Trace::bounded(capacity);
    }

    /// Enables the kernel profiler ([`prof`](crate::prof)). Profiling
    /// changes no output byte of the run, at any thread count — the
    /// profiler hooks ride the ordered commit, so attribution matches the
    /// sequential engine's dispatch order exactly (pinned by
    /// `tests/prof_digest.rs`).
    pub fn enable_prof(&mut self) {
        self.core.prof.enable();
    }

    /// The kernel profiler's accumulated state.
    pub fn prof(&self) -> &Prof {
        &self.core.prof
    }

    /// Renders the profiler state as a deterministic sample list, folding
    /// in the current queue-structure snapshot. Empty when profiling is
    /// off.
    pub fn profile_samples(&self) -> Vec<ProfSample> {
        self.core.prof.samples(self.core.queue.stats())
    }

    /// A structural snapshot of the future-event list (depth, calendar
    /// ring, payload-pool counters).
    pub fn queue_stats(&self) -> QueueStats {
        self.core.queue.stats()
    }

    /// Registers an actor; returns its id. `on_start` runs at the current
    /// simulation time the next time the engine advances.
    pub fn add_actor<A>(&mut self, actor: A) -> ActorId
    where
        A: Actor<Msg = M> + Send + 'static,
    {
        let id = ActorId(self.actors.len());
        self.core.prof.register_kind(actor.kind());
        self.actors.push(Some(Box::new(actor)));
        self.core.down.push(false);
        self.started.push(false);
        self.rngs.push(
            SimRng::seed(self.seed)
                .fork("shard-actor")
                .fork_u64(id.0 as u64),
        );
        self.timer_next.push(0);
        // Keep one extra slot for the unknown-destination group.
        self.group_slot.push((0, 0));
        id
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// The configured parallelism (coordinator included).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> &SimCounters {
        &self.core.counters
    }

    /// The bounded trace, if enabled.
    pub fn trace(&self) -> &Trace {
        &self.core.trace
    }

    /// Injects a message from outside the simulation, delivered to `to` at
    /// `now + delay`. Injections model workload arrivals, not link
    /// traffic, so link faults do not apply.
    pub fn inject(&mut self, to: ActorId, msg: M, delay: SimDuration) {
        self.core.enqueue(ActorId::EXTERNAL, to, msg, delay);
    }

    /// Installs (or replaces) the link-fault plan consulted on every
    /// actor-to-actor send.
    pub fn set_link_faults(&mut self, plan: LinkFaultPlan) {
        self.core.link_faults = Some(plan);
    }

    /// Schedules `actor` to crash at `at` (no-op if already down then).
    pub fn schedule_crash(&mut self, actor: ActorId, at: SimTime) {
        self.core.queue.push(at, Ev::Crash { actor });
    }

    /// Schedules `actor` to recover at `at` (no-op if already up then).
    pub fn schedule_recover(&mut self, actor: ActorId, at: SimTime) {
        self.core.queue.push(at, Ev::Recover { actor });
    }

    /// True if `actor` is currently crashed.
    pub fn is_down(&self, actor: ActorId) -> bool {
        self.core.down.get(actor.0).copied().unwrap_or(false)
    }

    /// Immutable access to an actor's state (for assertions and metrics).
    pub fn actor<A>(&self, id: ActorId) -> Option<&A>
    where
        A: Actor<Msg = M> + Send + 'static,
    {
        self.actors
            .get(id.0)
            .and_then(|slot| slot.as_deref())
            .and_then(|a| (a as &dyn std::any::Any).downcast_ref::<A>())
    }

    /// Mutable access to an actor's state between runs.
    pub fn actor_mut<A>(&mut self, id: ActorId) -> Option<&mut A>
    where
        A: Actor<Msg = M> + Send + 'static,
    {
        self.actors
            .get_mut(id.0)
            .and_then(|slot| slot.as_deref_mut())
            .and_then(|a| (a as &mut dyn std::any::Any).downcast_mut::<A>())
    }

    fn start_pending(&mut self) {
        for idx in 0..self.actors.len() {
            if !self.started[idx] {
                self.started[idx] = true;
                if let Some(mut boxed) = self.actors[idx].take() {
                    let mut ctx = Ctx::live(&mut self.core, ActorId(idx));
                    boxed.on_start(&mut ctx);
                    self.actors[idx] = Some(boxed);
                }
            }
        }
    }
}

impl<M: Clone + Send + 'static> ShardedSim<M> {
    /// Processes one frozen batch — every event at the earliest pending
    /// instant. Returns the number of events processed (0 when idle).
    pub fn step_batch(&mut self) -> u64 {
        self.start_pending();
        let Some(t) = self.core.queue.peek_time() else {
            return 0;
        };
        debug_assert!(t >= self.core.now, "time went backwards");
        self.core.now = t;

        // Freeze: pop the whole instant in sequence order.
        let mut batch: Vec<Ev<M>> = Vec::new();
        while self.core.queue.peek_time() == Some(t) {
            match self.core.queue.pop() {
                Some((_, ev)) => batch.push(ev),
                None => break,
            }
        }
        let n = batch.len() as u64;

        // Partition into per-actor groups, preserving batch order within
        // each group. The actor box, rng stream, and timer counter travel
        // with the task so workers own everything they touch.
        self.group_epoch += 1;
        let unknown_slot = self.actors.len();
        let mut tasks: Vec<Task<M>> = Vec::new();
        for (bidx, ev) in batch.into_iter().enumerate() {
            let target = match &ev {
                Ev::Deliver { to, .. } => to.0,
                Ev::Timer { actor, .. } | Ev::Crash { actor } | Ev::Recover { actor } => actor.0,
            };
            let key = if target < self.actors.len() {
                target
            } else {
                unknown_slot
            };
            let slot = &mut self.group_slot[key];
            if slot.0 != self.group_epoch {
                *slot = (self.group_epoch, tasks.len() as u32);
                tasks.push(if key < unknown_slot {
                    Task {
                        actor_idx: key,
                        boxed: self.actors[key].take(),
                        rng: std::mem::replace(&mut self.rngs[key], SimRng::seed(0)),
                        timer_next: self.timer_next[key],
                        events: Vec::new(),
                    }
                } else {
                    Task {
                        actor_idx: usize::MAX,
                        boxed: None,
                        rng: SimRng::seed(0),
                        timer_next: 0,
                        events: Vec::new(),
                    }
                });
            }
            let task_idx = self.group_slot[key].1 as usize;
            tasks[task_idx].events.push((bidx, ev));
        }

        let shared = BatchShared {
            now: t,
            down: self.core.down.clone(),
            cancelled: self.core.cancelled.clone(),
        };

        let ngroups = tasks.len() as u64;
        let offloaded = self.workers.is_some() && tasks.len() >= INLINE_GROUPS;

        // Evaluate: inline when parallelism cannot pay for itself,
        // otherwise contiguous chunks across the worker pool. The results
        // are identical either way — outcomes are keyed by batch index and
        // committed in that order, so thread count never shows in output.
        let results: Vec<TaskResult<M>> = match &self.workers {
            Some(workers) if tasks.len() >= INLINE_GROUPS => {
                let shared = Arc::new(shared);
                let nchunks = (workers.to.len() + 1).min(tasks.len());
                let chunk_size = tasks.len().div_ceil(nchunks);
                let mut results: Vec<TaskResult<M>> = Vec::with_capacity(tasks.len());
                let mut sent = 0usize;
                let mut mine: Vec<Task<M>> = Vec::new();
                for (i, chunk) in chunked(tasks, chunk_size).into_iter().enumerate() {
                    if i == 0 {
                        mine = chunk;
                    } else if workers.to[(i - 1) % workers.to.len()]
                        .send((Arc::clone(&shared), chunk))
                        .is_ok()
                    {
                        sent += 1;
                    }
                }
                // Coordinator chews its own chunk while workers run theirs.
                results.extend(mine.into_iter().map(|t| eval_task(t, &shared)));
                for _ in 0..sent {
                    match workers.from.recv() {
                        Ok(bundle) => results.extend(bundle),
                        Err(_) => break,
                    }
                }
                results
            }
            _ => tasks.into_iter().map(|t| eval_task(t, &shared)).collect(),
        };

        // Restore actor state and index outcomes by batch position.
        let mut by_idx: Vec<Option<Outcome<M>>> = (0..n as usize).map(|_| None).collect();
        for r in results {
            if r.actor_idx < self.actors.len() {
                self.actors[r.actor_idx] = r.boxed;
                self.rngs[r.actor_idx] = r.rng;
                self.timer_next[r.actor_idx] = r.timer_next;
            }
            for (bidx, out) in r.outcomes {
                if let Some(slot) = by_idx.get_mut(bidx) {
                    *slot = Some(out);
                }
            }
        }

        // Ordered commit: replay the sequential interleaving exactly.
        for out in by_idx.into_iter().flatten() {
            self.commit(out);
        }
        if self.core.prof.is_enabled() {
            self.core.prof.batch(n, ngroups, offloaded);
        }
        n
    }

    fn commit(&mut self, out: Outcome<M>) {
        let t = self.core.now;
        // Each arm yields the profiler disposition, mirroring the
        // sequential engine's `step` hook exactly: the commit replays the
        // sequential dispatch order, so attribution is engine-invariant.
        let hook: Option<(usize, ProfEvent)> = match out {
            Outcome::Delivered { from, to, effects } => {
                self.core.counters.delivered.inc();
                self.core.trace.record(t, TraceKind::Deliver, from, to);
                self.apply_effects(to, effects);
                Some((to.0, ProfEvent::Deliver))
            }
            Outcome::DroppedDown { from, to } => {
                self.core.counters.dropped_down.inc();
                self.core.trace.record(t, TraceKind::Drop, from, to);
                Some((to.0, ProfEvent::DropDown))
            }
            Outcome::DroppedUnknown { from, to } => {
                self.core.counters.dropped_unknown.inc();
                self.core.trace.record(t, TraceKind::Drop, from, to);
                Some((to.0, ProfEvent::DropUnknown))
            }
            Outcome::TimerHandled {
                id,
                actor,
                fired,
                effects,
            } => {
                self.core.cancelled.remove(&id);
                if fired {
                    self.core.counters.timers_fired.inc();
                    self.apply_effects(actor, effects);
                    Some((actor.0, ProfEvent::TimerFired))
                } else {
                    self.core.counters.timers_suppressed.inc();
                    Some((actor.0, ProfEvent::TimerSuppressed))
                }
            }
            Outcome::Crashed { actor } => {
                if let Some(flag) = self.core.down.get_mut(actor.0) {
                    *flag = true;
                }
                self.core.counters.crashes.inc();
                self.core.trace.record(t, TraceKind::Crash, actor, actor);
                Some((actor.0, ProfEvent::Crash))
            }
            Outcome::Recovered { actor, effects } => {
                if let Some(flag) = self.core.down.get_mut(actor.0) {
                    *flag = false;
                }
                self.core.counters.recoveries.inc();
                self.core.trace.record(t, TraceKind::Recover, actor, actor);
                self.apply_effects(actor, effects);
                Some((actor.0, ProfEvent::Recover))
            }
            Outcome::Skipped => None,
        };
        if self.core.prof.is_enabled() {
            if let Some((idx, pe)) = hook {
                let depth = self.core.queue.len() as u64;
                self.core.prof.dispatch(idx, pe, t, depth);
            }
        }
    }

    /// Applies one handler's buffered effects through the sequential
    /// engine's own primitives, in issue order.
    fn apply_effects(&mut self, me: ActorId, effects: Vec<Effect<M>>) {
        for e in effects {
            match e {
                Effect::Send { to, msg, delay } => self.core.send(me, to, msg, delay),
                Effect::SendSelf { msg, delay } => self.core.enqueue(me, me, msg, delay),
                Effect::SetTimer { id, delay, tag } => {
                    let at = self.core.now + delay;
                    self.core.queue.push(at, Ev::Timer { actor: me, id, tag });
                }
                Effect::CancelTimer { id } => {
                    self.core.cancelled.insert(id);
                }
            }
        }
    }

    /// Runs until the queue is empty or the next batch is later than
    /// `deadline`; the clock then rests at `min(deadline, last batch
    /// time)` or `deadline`, whichever is later.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.core.prof.wall_start();
        self.start_pending();
        while let Some(next) = self.core.queue.peek_time() {
            if next > deadline {
                break;
            }
            self.step_batch();
        }
        if self.core.now < deadline {
            self.core.now = deadline;
        }
        self.core.prof.wall_stop();
    }

    /// Runs until quiescence or until at least `max_events` events have
    /// been processed (whole batches — the bound may overshoot by at most
    /// one batch). Returns `true` if the simulation quiesced.
    pub fn run_to_quiescence_bounded(&mut self, max_events: u64) -> bool {
        self.core.prof.wall_start();
        let mut processed = 0u64;
        let mut quiesced = false;
        while processed < max_events {
            let n = self.step_batch();
            if n == 0 {
                quiesced = true;
                break;
            }
            processed += n;
        }
        self.core.prof.wall_stop();
        quiesced || self.core.queue.is_empty()
    }
}

/// Splits `items` into contiguous chunks of at most `size` elements.
fn chunked<T>(items: Vec<T>, size: usize) -> Vec<Vec<T>> {
    let size = size.max(1);
    let mut out = Vec::with_capacity(items.len().div_ceil(size));
    let mut cur = Vec::with_capacity(size);
    for it in items {
        cur.push(it);
        if cur.len() == size {
            out.push(std::mem::replace(&mut cur, Vec::with_capacity(size)));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

impl<M: Send + 'static> std::fmt::Debug for ShardedSim<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSim")
            .field("now", &self.core.now)
            .field("actors", &self.actors.len())
            .field("threads", &self.threads)
            .field("pending_events", &self.core.queue.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::ActorSim;

    fn unit(u: f64) -> SimDuration {
        SimDuration::from_units(u)
    }

    /// Forwards each message to the next actor with a decremented TTL
    /// (packed in the low byte); fans out on start.
    struct Ring {
        n: usize,
        got: u64,
    }
    impl Actor for Ring {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            let next = ActorId((ctx.me().0 + 1) % self.n);
            ctx.send(next, 16, unit(0.5));
        }
        fn on_message(&mut self, _f: ActorId, m: u64, ctx: &mut Ctx<'_, u64>) {
            self.got += 1;
            if m > 0 {
                let next = ActorId((ctx.me().0 + 1) % self.n);
                ctx.send(next, m - 1, unit(0.5));
            }
        }
    }

    fn fingerprint<MkSeq, MkShard>(mk_seq: MkSeq, mk_shard: MkShard) -> (u64, u64)
    where
        MkSeq: FnOnce() -> ActorSim<u64>,
        MkShard: FnOnce() -> ShardedSim<u64>,
    {
        let mut seq = mk_seq();
        assert!(seq.run_to_quiescence_bounded(100_000));
        let mut sh = mk_shard();
        assert!(sh.run_to_quiescence_bounded(100_000));
        assert_eq!(
            seq.counters().delivered.get(),
            sh.counters().delivered.get()
        );
        assert_eq!(seq.now(), sh.now());
        (seq.trace().digest(), sh.trace().digest())
    }

    #[test]
    fn ring_matches_sequential_engine_exactly() {
        for threads in [1, 2, 8] {
            let (a, b) = fingerprint(
                || {
                    let mut s = ActorSim::new(5);
                    s.enable_trace(usize::MAX);
                    for _ in 0..6 {
                        s.add_actor(Ring { n: 6, got: 0 });
                    }
                    s
                },
                || {
                    let mut s = ShardedSim::new(5, threads);
                    s.enable_trace(usize::MAX);
                    for _ in 0..6 {
                        s.add_actor(Ring { n: 6, got: 0 });
                    }
                    s
                },
            );
            assert_eq!(a, b, "threads={threads} diverged from sequential");
        }
    }

    /// Arms two timers at the same instant; the first to fire cancels the
    /// second — the same-instant cancellation determinism probe, run on
    /// one actor so it is inside the sharded contract.
    struct KillerPair {
        fired: Vec<u64>,
        doomed: Option<TimerId>,
    }
    impl Actor for KillerPair {
        type Msg = u64;
        fn on_message(&mut self, _f: ActorId, _m: u64, _c: &mut Ctx<'_, u64>) {}
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            let _killer = ctx.set_timer(unit(1.0), 1);
            self.doomed = Some(ctx.set_timer(unit(1.0), 2));
        }
        fn on_timer(&mut self, _id: TimerId, tag: u64, ctx: &mut Ctx<'_, u64>) {
            self.fired.push(tag);
            if tag == 1 {
                if let Some(d) = self.doomed.take() {
                    ctx.cancel_timer(d);
                }
            }
        }
    }

    #[test]
    fn same_instant_cancellation_suppresses_on_both_engines() {
        let mut seq = ActorSim::new(3);
        let a = seq.add_actor(KillerPair {
            fired: Vec::new(),
            doomed: None,
        });
        assert!(seq.run_to_quiescence_bounded(1000));
        let mut sh = ShardedSim::new(3, 4);
        let b = sh.add_actor(KillerPair {
            fired: Vec::new(),
            doomed: None,
        });
        assert!(sh.run_to_quiescence_bounded(1000));
        assert_eq!(seq.actor::<KillerPair>(a).unwrap().fired, vec![1]);
        assert_eq!(sh.actor::<KillerPair>(b).unwrap().fired, vec![1]);
        assert_eq!(seq.counters().timers_suppressed.get(), 1);
        assert_eq!(sh.counters().timers_suppressed.get(), 1);
    }

    #[test]
    fn crash_gates_same_instant_delivery() {
        // Crash scheduled at t=1 (earlier seq) must drop a delivery to the
        // same actor at t=1 (later seq) on both engines.
        let mut seq = ActorSim::new(1);
        let a = seq.add_actor(Ring { n: 1, got: 0 });
        seq.schedule_crash(a, SimTime::from_units(1.0));
        seq.inject(a, 0, unit(1.0));
        assert!(seq.run_to_quiescence_bounded(1000));

        let mut sh = ShardedSim::new(1, 4);
        let b = sh.add_actor(Ring { n: 1, got: 0 });
        sh.schedule_crash(b, SimTime::from_units(1.0));
        sh.inject(b, 0, unit(1.0));
        assert!(sh.run_to_quiescence_bounded(1000));

        // The injected message and the ring's own forwarded self-send both
        // land at t=1.0 after the crash (crash has the earlier seq).
        assert_eq!(seq.counters().dropped_down.get(), 2);
        assert_eq!(sh.counters().dropped_down.get(), 2);
        // The on-start ring send still delivered before the crash.
        assert_eq!(
            seq.counters().delivered.get(),
            sh.counters().delivered.get()
        );
    }

    #[test]
    fn unknown_destinations_drop_identically() {
        let mut sh: ShardedSim<u64> = ShardedSim::new(1, 2);
        sh.inject(ActorId(999), 1, unit(1.0));
        assert!(sh.run_to_quiescence_bounded(100));
        assert_eq!(sh.counters().dropped_unknown.get(), 1);
    }

    #[test]
    fn run_until_parks_clock_at_deadline() {
        let mut sh: ShardedSim<u64> = ShardedSim::new(1, 2);
        let a = sh.add_actor(Ring { n: 1, got: 0 });
        sh.inject(a, 0, unit(10.0));
        sh.run_until(SimTime::from_units(4.0));
        assert_eq!(sh.now(), SimTime::from_units(4.0));
        sh.run_until(SimTime::from_units(20.0));
        assert_eq!(sh.now(), SimTime::from_units(20.0));
    }

    #[test]
    fn wide_instants_exercise_the_worker_pool() {
        // 64 actors all receiving at the same instants: forces the
        // chunked worker-pool path (groups >= INLINE_GROUPS).
        fn build(threads: usize) -> ShardedSim<u64> {
            let mut s = ShardedSim::new(11, threads);
            s.enable_trace(usize::MAX);
            for _ in 0..64 {
                s.add_actor(Ring { n: 64, got: 0 });
            }
            s
        }
        let mut one = build(1);
        assert!(one.run_to_quiescence_bounded(1_000_000));
        let d1 = one.trace().digest();
        for threads in [2, 8] {
            let mut many = build(threads);
            assert!(many.run_to_quiescence_bounded(1_000_000));
            assert_eq!(d1, many.trace().digest(), "threads={threads}");
            assert_eq!(
                one.counters().delivered.get(),
                many.counters().delivered.get()
            );
        }
    }
}
