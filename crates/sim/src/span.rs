//! Causal message-lifecycle spans.
//!
//! A *span* follows one unit of end-to-end work — a mail message from
//! submission to retrieval, or a GetMail check from its first poll to its
//! last — across every actor it touches. The engine's [`crate::trace`]
//! records raw link events; spans sit one level up, at the protocol layer,
//! where retries, name resolution, and responsibility hand-offs are
//! visible.
//!
//! Spans obey a conservation law, checked by [`audit_spans`]: every span
//! opens with exactly one opening stage and terminates in exactly one
//! terminal stage, with session-layer retries accounted as non-zero
//! `attempt` numbers on [`SpanStage::Probe`] events.
//!
//! Recording is deliberately decoupled from the engine: a [`SpanLog`] is
//! shared by the domain actors (via `Rc<RefCell<..>>`, like their stats
//! ledgers) and never touches the scheduler or any RNG stream, so enabling
//! spans cannot perturb event order — the determinism pins hold by
//! construction.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::SimTime;

/// Sentinel for "no node involved" in [`SpanEvent::site`] / [`SpanEvent::peer`].
pub const NO_NODE: u64 = u64::MAX;

/// Identifies one span. Allocated densely from 0 in open order, so ids are
/// deterministic for a fixed seed and double as stable export keys.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct SpanId(pub u64);

/// The id handed out when recording is disabled.
pub const NO_SPAN: SpanId = SpanId(u64::MAX);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One step in a span's life. Stage payloads live in the uniform numeric
/// fields of [`SpanEvent`] (`site`, `peer`, `detail`) so events stay `Copy`
/// and export without per-variant schemas.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpanStage {
    /// Opening: a user handed mail to the UI (message spans).
    Submitted,
    /// Opening: a GetMail session started (check spans).
    CheckStarted,
    /// A session-layer probe left `site` for `peer`; `detail` is the
    /// 0-based attempt number — `detail > 0` is a retransmission.
    Probe,
    /// `peer` acknowledged and responsibility transferred away from `site`.
    Accepted,
    /// A server at `site` resolved the recipient; `detail` is a
    /// [`ResolveCode`].
    Resolved,
    /// A server at `site` handed the message to the authority at `peer`.
    Forwarded,
    /// The message reached stable storage at server `site`.
    Deposited,
    /// Server `site` alerted the recipient's host `peer`.
    Notified,
    /// Terminal: the recipient pulled the message down to host `site`.
    Retrieved,
    /// Terminal: the message was returned to sender; `detail` is a
    /// [`BounceCode`].
    Bounced,
    /// Terminal: the GetMail session finished; `detail` is the number of
    /// server polls it took.
    CheckDone,
}

impl SpanStage {
    /// True for stages that open a span.
    pub fn is_opening(self) -> bool {
        matches!(self, SpanStage::Submitted | SpanStage::CheckStarted)
    }

    /// True for stages that terminate a span.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            SpanStage::Retrieved | SpanStage::Bounced | SpanStage::CheckDone
        )
    }

    /// Stable lowercase name, used by the JSONL export and the inspector.
    pub fn name(self) -> &'static str {
        match self {
            SpanStage::Submitted => "submitted",
            SpanStage::CheckStarted => "check-started",
            SpanStage::Probe => "probe",
            SpanStage::Accepted => "accepted",
            SpanStage::Resolved => "resolved",
            SpanStage::Forwarded => "forwarded",
            SpanStage::Deposited => "deposited",
            SpanStage::Notified => "notified",
            SpanStage::Retrieved => "retrieved",
            SpanStage::Bounced => "bounced",
            SpanStage::CheckDone => "check-done",
        }
    }

    /// Parses a [`SpanStage::name`] back into a stage.
    pub fn from_name(s: &str) -> Option<SpanStage> {
        Some(match s {
            "submitted" => SpanStage::Submitted,
            "check-started" => SpanStage::CheckStarted,
            "probe" => SpanStage::Probe,
            "accepted" => SpanStage::Accepted,
            "resolved" => SpanStage::Resolved,
            "forwarded" => SpanStage::Forwarded,
            "deposited" => SpanStage::Deposited,
            "notified" => SpanStage::Notified,
            "retrieved" => SpanStage::Retrieved,
            "bounced" => SpanStage::Bounced,
            "check-done" => SpanStage::CheckDone,
            _ => return None,
        })
    }
}

impl fmt::Display for SpanStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// `detail` codes for [`SpanStage::Bounced`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BounceCode {
    /// The recipient name failed to resolve anywhere.
    UnknownRecipient,
    /// Every authority server for the recipient was unavailable.
    AllServersDown,
    /// The recipient region was unreachable.
    RegionUnreachable,
}

impl BounceCode {
    /// The wire value stored in [`SpanEvent::detail`].
    pub fn as_detail(self) -> u64 {
        match self {
            BounceCode::UnknownRecipient => 0,
            BounceCode::AllServersDown => 1,
            BounceCode::RegionUnreachable => 2,
        }
    }

    /// Decodes a [`SpanEvent::detail`] value.
    pub fn from_detail(d: u64) -> Option<BounceCode> {
        Some(match d {
            0 => BounceCode::UnknownRecipient,
            1 => BounceCode::AllServersDown,
            2 => BounceCode::RegionUnreachable,
            _ => return None,
        })
    }

    /// Stable lowercase name for rendering.
    pub fn name(self) -> &'static str {
        match self {
            BounceCode::UnknownRecipient => "unknown-recipient",
            BounceCode::AllServersDown => "all-servers-down",
            BounceCode::RegionUnreachable => "region-unreachable",
        }
    }
}

/// `detail` codes for [`SpanStage::Resolved`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResolveCode {
    /// This server is the recipient's authority.
    LocalAuthority,
    /// Another server in this region is the authority.
    RegionalAuthority,
    /// The recipient lives in another region.
    ForwardToRegion,
    /// Resolution failed.
    Failed,
}

impl ResolveCode {
    /// The wire value stored in [`SpanEvent::detail`].
    pub fn as_detail(self) -> u64 {
        match self {
            ResolveCode::LocalAuthority => 0,
            ResolveCode::RegionalAuthority => 1,
            ResolveCode::ForwardToRegion => 2,
            ResolveCode::Failed => 3,
        }
    }

    /// Decodes a [`SpanEvent::detail`] value.
    pub fn from_detail(d: u64) -> Option<ResolveCode> {
        Some(match d {
            0 => ResolveCode::LocalAuthority,
            1 => ResolveCode::RegionalAuthority,
            2 => ResolveCode::ForwardToRegion,
            3 => ResolveCode::Failed,
            _ => return None,
        })
    }

    /// Stable lowercase name for rendering.
    pub fn name(self) -> &'static str {
        match self {
            ResolveCode::LocalAuthority => "local-authority",
            ResolveCode::RegionalAuthority => "regional-authority",
            ResolveCode::ForwardToRegion => "forward-to-region",
            ResolveCode::Failed => "failed",
        }
    }
}

/// One recorded span event.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SpanEvent {
    /// When the event happened (sim time; never wall clock).
    pub at: SimTime,
    /// The span this event belongs to.
    pub span: SpanId,
    /// What happened.
    pub stage: SpanStage,
    /// Raw node id where the event happened ([`NO_NODE`] when none).
    pub site: u64,
    /// The other node involved, if any ([`NO_NODE`] when none).
    pub peer: u64,
    /// Stage-specific payload: attempt number for `Probe`, poll count for
    /// `CheckDone`, a [`BounceCode`] / [`ResolveCode`] wire value, else 0.
    pub detail: u64,
}

impl fmt::Display for SpanEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} {}", self.at, self.span, self.stage.name())?;
        if self.site != NO_NODE {
            write!(f, " @n{}", self.site)?;
        }
        if self.peer != NO_NODE {
            write!(f, " ->n{}", self.peer)?;
        }
        if self.detail != 0 {
            write!(f, " #{}", self.detail)?;
        }
        Ok(())
    }
}

/// An append-only log of [`SpanEvent`]s with deterministic id allocation.
///
/// Disabled by default (the engine's default everywhere): `open` returns
/// [`NO_SPAN`] and `record` is a no-op, so the instrumented hot paths cost
/// one branch. When bounded, eviction is *not* silent — `dropped_events`
/// reports the loss and [`audit_spans`] refuses to certify a lossy log.
///
/// # Examples
///
/// ```
/// use lems_sim::span::{SpanLog, SpanStage};
/// use lems_sim::time::SimTime;
///
/// let mut log = SpanLog::unbounded();
/// let s = log.open_keyed(7, SimTime::ZERO, SpanStage::Submitted, 0);
/// assert_eq!(log.span_of(7), Some(s));
/// log.record(SimTime::from_units(1.0), s, SpanStage::Retrieved, 2, 0, 0);
/// assert_eq!(log.events().len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SpanLog {
    enabled: bool,
    capacity: usize,
    events: Vec<SpanEvent>,
    dropped: u64,
    next: u64,
    /// External key (e.g. a message id) -> span, for events recorded by
    /// actors that only know the domain key.
    by_key: BTreeMap<u64, SpanId>,
}

impl SpanLog {
    /// A log that records nothing ([`NO_SPAN`] for every open).
    pub fn disabled() -> Self {
        SpanLog::default()
    }

    /// A log that keeps every event.
    pub fn unbounded() -> Self {
        SpanLog::bounded(usize::MAX)
    }

    /// A log that stops recording after `capacity` events, counting the
    /// excess in [`SpanLog::dropped_events`]. Unlike the engine trace ring
    /// this keeps the *prefix* — span conservation needs opens, which come
    /// first.
    pub fn bounded(capacity: usize) -> Self {
        SpanLog {
            enabled: capacity > 0,
            capacity,
            events: Vec::new(),
            dropped: 0,
            next: 0,
            by_key: BTreeMap::new(),
        }
    }

    /// True if this log records events.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Rebuilds a log from previously exported events (e.g. a parsed
    /// trace dump) so [`audit_spans`] can run on the inspector side.
    /// The rebuilt log is lossless by construction; if the original run
    /// dropped events, that fact must be checked before export.
    pub fn from_events(events: Vec<SpanEvent>) -> Self {
        let next = events
            .iter()
            .map(|e| e.span.0.saturating_add(1))
            .max()
            .unwrap_or(0);
        SpanLog {
            enabled: true,
            capacity: usize::MAX,
            events,
            dropped: 0,
            next,
            by_key: BTreeMap::new(),
        }
    }

    /// Opens a new span with opening stage `stage` at node `site`.
    /// Returns [`NO_SPAN`] when disabled.
    pub fn open(&mut self, at: SimTime, stage: SpanStage, site: u64) -> SpanId {
        if !self.enabled {
            return NO_SPAN;
        }
        let id = SpanId(self.next);
        self.next += 1;
        self.push(SpanEvent {
            at,
            span: id,
            stage,
            site,
            peer: NO_NODE,
            detail: 0,
        });
        id
    }

    /// Opens a new span and associates it with external key `key` so later
    /// events can find it via [`SpanLog::span_of`].
    pub fn open_keyed(&mut self, key: u64, at: SimTime, stage: SpanStage, site: u64) -> SpanId {
        let id = self.open(at, stage, site);
        if self.enabled {
            self.by_key.insert(key, id);
        }
        id
    }

    /// The span registered under `key`, if any.
    pub fn span_of(&self, key: u64) -> Option<SpanId> {
        self.by_key.get(&key).copied()
    }

    /// Records an event on an existing span (no-op when disabled or when
    /// `span` is [`NO_SPAN`]).
    pub fn record(
        &mut self,
        at: SimTime,
        span: SpanId,
        stage: SpanStage,
        site: u64,
        peer: u64,
        detail: u64,
    ) {
        if !self.enabled || span == NO_SPAN {
            return;
        }
        self.push(SpanEvent {
            at,
            span,
            stage,
            site,
            peer,
            detail,
        });
    }

    /// Records an event on the span registered under `key`, if one exists.
    pub fn record_keyed(
        &mut self,
        at: SimTime,
        key: u64,
        stage: SpanStage,
        site: u64,
        peer: u64,
        detail: u64,
    ) {
        if let Some(span) = self.span_of(key) {
            self.record(at, span, stage, site, peer, detail);
        }
    }

    fn push(&mut self, e: SpanEvent) {
        if self.events.len() < self.capacity {
            self.events.push(e);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in record order.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Events lost to the capacity bound. Nonzero means [`audit_spans`]
    /// cannot certify conservation.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Number of spans ever opened.
    pub fn spans_opened(&self) -> u64 {
        self.next
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A violation of the span conservation law.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SpanViolation {
    /// The log dropped events; conservation cannot be judged.
    LossyLog {
        /// How many events were lost.
        dropped: u64,
    },
    /// An event referenced a span that was never opened.
    EventWithoutOpen {
        /// The orphaned span id.
        span: SpanId,
    },
    /// A span recorded more than one opening stage.
    MultipleOpen {
        /// The offending span.
        span: SpanId,
    },
    /// A span recorded more than one terminal stage.
    MultipleTerminal {
        /// The offending span.
        span: SpanId,
        /// Number of terminal events seen.
        terminals: u64,
    },
    /// A span never reached a terminal stage (only reported when the
    /// auditor is told the run drained).
    NeverTerminated {
        /// The offending span.
        span: SpanId,
    },
    /// A non-opening event preceded the span's opening stage.
    EventBeforeOpen {
        /// The offending span.
        span: SpanId,
    },
}

impl fmt::Display for SpanViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpanViolation::LossyLog { dropped } => {
                write!(f, "span log dropped {dropped} event(s); cannot audit")
            }
            SpanViolation::EventWithoutOpen { span } => {
                write!(f, "span {span} has events but no opening stage")
            }
            SpanViolation::MultipleOpen { span } => {
                write!(f, "span {span} opened more than once")
            }
            SpanViolation::MultipleTerminal { span, terminals } => {
                write!(f, "span {span} reached {terminals} terminal stages")
            }
            SpanViolation::NeverTerminated { span } => {
                write!(f, "span {span} never reached a terminal stage")
            }
            SpanViolation::EventBeforeOpen { span } => {
                write!(f, "span {span} recorded events before its opening stage")
            }
        }
    }
}

/// What [`audit_spans`] found.
#[derive(Clone, Debug, Default)]
pub struct SpanAuditReport {
    /// Conservation violations, in discovery order.
    pub violations: Vec<SpanViolation>,
    /// Spans opened.
    pub opened: u64,
    /// Spans that reached [`SpanStage::Retrieved`].
    pub retrieved: u64,
    /// Spans that reached [`SpanStage::Bounced`].
    pub bounced: u64,
    /// Spans that reached [`SpanStage::CheckDone`].
    pub checks_done: u64,
    /// Spans still open (no terminal stage).
    pub open_ended: u64,
    /// Session-layer retransmissions: [`SpanStage::Probe`] events with a
    /// non-zero attempt number.
    pub retransmits: u64,
}

impl SpanAuditReport {
    /// True when no violations were found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for SpanAuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} span(s): {} retrieved, {} bounced, {} check(s) done, \
             {} open-ended, {} retransmit(s), {} violation(s)",
            self.opened,
            self.retrieved,
            self.bounced,
            self.checks_done,
            self.open_ended,
            self.retransmits,
            self.violations.len()
        )
    }
}

/// Checks the span conservation law over `log`.
///
/// Every span must open with exactly one opening stage, which must be its
/// first event, and reach at most one terminal stage. When
/// `require_terminal` is set (the run drained to quiescence with all work
/// accounted), a span with no terminal stage is a violation: mail silently
/// stuck in the pipeline. Events recorded *after* a terminal stage are
/// tolerated — a crash-replayed duplicate can deposit a residual copy
/// after the original was retrieved — but a second terminal is not.
pub fn audit_spans(log: &SpanLog, require_terminal: bool) -> SpanAuditReport {
    #[derive(Default)]
    struct SpanState {
        opens: u64,
        terminals: u64,
        saw_event_first: bool,
        last_terminal: Option<SpanStage>,
    }

    let mut report = SpanAuditReport {
        opened: log.spans_opened(),
        ..SpanAuditReport::default()
    };
    if log.dropped_events() > 0 {
        report.violations.push(SpanViolation::LossyLog {
            dropped: log.dropped_events(),
        });
        return report;
    }
    let mut states: BTreeMap<SpanId, SpanState> = BTreeMap::new();

    for e in log.events() {
        let st = states.entry(e.span).or_default();
        if e.stage.is_opening() {
            st.opens += 1;
        } else {
            if st.opens == 0 {
                st.saw_event_first = true;
            }
            if e.stage.is_terminal() {
                st.terminals += 1;
                st.last_terminal = Some(e.stage);
            }
            if e.stage == SpanStage::Probe && e.detail > 0 {
                report.retransmits += 1;
            }
        }
    }

    for (span, st) in &states {
        if st.opens == 0 {
            report
                .violations
                .push(SpanViolation::EventWithoutOpen { span: *span });
            continue;
        }
        if st.saw_event_first {
            report
                .violations
                .push(SpanViolation::EventBeforeOpen { span: *span });
        }
        if st.opens > 1 {
            report
                .violations
                .push(SpanViolation::MultipleOpen { span: *span });
        }
        match st.terminals {
            0 => {
                report.open_ended += 1;
                if require_terminal {
                    report
                        .violations
                        .push(SpanViolation::NeverTerminated { span: *span });
                }
            }
            1 => match st.last_terminal {
                Some(SpanStage::Retrieved) => report.retrieved += 1,
                Some(SpanStage::Bounced) => report.bounced += 1,
                Some(SpanStage::CheckDone) => report.checks_done += 1,
                _ => {}
            },
            n => report.violations.push(SpanViolation::MultipleTerminal {
                span: *span,
                terminals: n,
            }),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(u: f64) -> SimTime {
        SimTime::from_units(u)
    }

    #[test]
    fn disabled_log_is_free() {
        let mut log = SpanLog::disabled();
        let s = log.open(t(0.0), SpanStage::Submitted, 1);
        assert_eq!(s, NO_SPAN);
        log.record(t(1.0), s, SpanStage::Retrieved, 2, NO_NODE, 0);
        assert!(log.is_empty());
        assert!(!log.is_enabled());
        assert_eq!(log.spans_opened(), 0);
    }

    #[test]
    fn keyed_lookup_round_trips() {
        let mut log = SpanLog::unbounded();
        let a = log.open_keyed(10, t(0.0), SpanStage::Submitted, 1);
        let b = log.open_keyed(11, t(0.5), SpanStage::Submitted, 2);
        assert_eq!(log.span_of(10), Some(a));
        assert_eq!(log.span_of(11), Some(b));
        assert_eq!(log.span_of(12), None);
        assert_ne!(a, b);
        log.record_keyed(t(1.0), 10, SpanStage::Deposited, 5, NO_NODE, 0);
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.events()[2].span, a);
    }

    #[test]
    fn ids_are_dense_and_deterministic() {
        let mut log = SpanLog::unbounded();
        for i in 0..5 {
            let s = log.open(t(0.0), SpanStage::Submitted, i);
            assert_eq!(s, SpanId(i));
        }
        assert_eq!(log.spans_opened(), 5);
    }

    #[test]
    fn bounded_log_counts_drops_and_fails_audit() {
        let mut log = SpanLog::bounded(2);
        let s = log.open(t(0.0), SpanStage::Submitted, 1);
        log.record(t(1.0), s, SpanStage::Deposited, 2, NO_NODE, 0);
        log.record(t(2.0), s, SpanStage::Retrieved, 3, NO_NODE, 0);
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.dropped_events(), 1);
        let report = audit_spans(&log, false);
        assert_eq!(
            report.violations,
            vec![SpanViolation::LossyLog { dropped: 1 }]
        );
    }

    fn clean_log() -> SpanLog {
        let mut log = SpanLog::unbounded();
        let m = log.open_keyed(100, t(1.0), SpanStage::Submitted, 0);
        log.record(t(1.1), m, SpanStage::Probe, 0, 4, 0);
        log.record(t(1.4), m, SpanStage::Probe, 0, 4, 1); // one retransmit
        log.record(t(1.5), m, SpanStage::Accepted, 0, 4, 0);
        log.record(
            t(1.6),
            m,
            SpanStage::Resolved,
            4,
            NO_NODE,
            ResolveCode::LocalAuthority.as_detail(),
        );
        log.record(t(1.7), m, SpanStage::Deposited, 4, NO_NODE, 0);
        log.record(t(1.8), m, SpanStage::Notified, 4, 2, 0);
        let c = log.open(t(3.0), SpanStage::CheckStarted, 2);
        log.record(t(3.1), c, SpanStage::Probe, 2, 4, 0);
        log.record(t(3.5), m, SpanStage::Retrieved, 2, 4, 0);
        log.record(t(3.6), c, SpanStage::CheckDone, 2, NO_NODE, 1);
        log
    }

    #[test]
    fn conservation_holds_on_clean_lifecycle() {
        let report = audit_spans(&clean_log(), true);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.opened, 2);
        assert_eq!(report.retrieved, 1);
        assert_eq!(report.checks_done, 1);
        assert_eq!(report.retransmits, 1);
        assert_eq!(report.open_ended, 0);
    }

    #[test]
    fn double_terminal_is_caught() {
        let mut log = clean_log();
        let m = log.span_of(100).expect("span 100 was opened");
        log.record(t(4.0), m, SpanStage::Retrieved, 2, NO_NODE, 0);
        let report = audit_spans(&log, true);
        assert_eq!(
            report.violations,
            vec![SpanViolation::MultipleTerminal {
                span: m,
                terminals: 2
            }]
        );
    }

    #[test]
    fn unterminated_span_flags_only_when_required() {
        let mut log = SpanLog::unbounded();
        let m = log.open(t(0.0), SpanStage::Submitted, 1);
        log.record(t(0.5), m, SpanStage::Deposited, 4, NO_NODE, 0);
        let lax = audit_spans(&log, false);
        assert!(lax.is_clean());
        assert_eq!(lax.open_ended, 1);
        let strict = audit_spans(&log, true);
        assert_eq!(
            strict.violations,
            vec![SpanViolation::NeverTerminated { span: m }]
        );
    }

    #[test]
    fn event_without_open_is_caught() {
        let mut log = SpanLog::unbounded();
        // Forge an event on a span id that was never opened.
        let ghost = SpanId(99);
        log.record(t(1.0), ghost, SpanStage::Deposited, 4, NO_NODE, 0);
        let report = audit_spans(&log, false);
        assert_eq!(
            report.violations,
            vec![SpanViolation::EventWithoutOpen { span: ghost }]
        );
    }

    #[test]
    fn residual_events_after_terminal_are_tolerated() {
        // A crash-replayed duplicate deposits a residual copy after the
        // original retrieval: non-terminal residue must not violate.
        let mut log = clean_log();
        let m = log.span_of(100).expect("span 100 was opened");
        log.record(t(5.0), m, SpanStage::Deposited, 5, NO_NODE, 0);
        let report = audit_spans(&log, true);
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn codes_round_trip() {
        for code in [
            BounceCode::UnknownRecipient,
            BounceCode::AllServersDown,
            BounceCode::RegionUnreachable,
        ] {
            assert_eq!(BounceCode::from_detail(code.as_detail()), Some(code));
        }
        assert_eq!(BounceCode::from_detail(77), None);
        for code in [
            ResolveCode::LocalAuthority,
            ResolveCode::RegionalAuthority,
            ResolveCode::ForwardToRegion,
            ResolveCode::Failed,
        ] {
            assert_eq!(ResolveCode::from_detail(code.as_detail()), Some(code));
        }
        for stage in [
            SpanStage::Submitted,
            SpanStage::CheckStarted,
            SpanStage::Probe,
            SpanStage::Accepted,
            SpanStage::Resolved,
            SpanStage::Forwarded,
            SpanStage::Deposited,
            SpanStage::Notified,
            SpanStage::Retrieved,
            SpanStage::Bounced,
            SpanStage::CheckDone,
        ] {
            assert_eq!(SpanStage::from_name(stage.name()), Some(stage));
        }
        assert_eq!(SpanStage::from_name("nope"), None);
    }

    #[test]
    fn display_is_informative() {
        let e = SpanEvent {
            at: t(2.0),
            span: SpanId(3),
            stage: SpanStage::Probe,
            site: 1,
            peer: 4,
            detail: 2,
        };
        let s = format!("{e}");
        assert!(s.contains("s3") && s.contains("probe") && s.contains("n1") && s.contains("n4"));
    }
}
