//! Measurement primitives: counters, time-weighted gauges, and histograms.
//!
//! The experiments in `lems-bench` report polls per retrieval, delivery
//! latencies, server utilizations, and broadcast costs; these types collect
//! those observations inside simulations without imposing any I/O.

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use lems_sim::stats::Counter;
///
/// let mut polls = Counter::default();
/// polls.inc();
/// polls.add(2);
/// assert_eq!(polls.get(), 3);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Running mean/min/max/variance over a stream of `f64` observations
/// (Welford's algorithm; numerically stable, O(1) memory).
///
/// # Examples
///
/// ```
/// use lems_sim::stats::Summary;
///
/// let mut s = Summary::default();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.observe(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), Some(1.0));
/// assert_eq!(s.max(), Some(4.0));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn observe(&mut self, x: f64) {
        assert!(x.is_finite(), "Summary::observe requires finite values");
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Records a duration observation in paper time units.
    pub fn observe_duration(&mut self, d: SimDuration) {
        self.observe(d.as_units());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.stddev(),
            self.min().unwrap_or(0.0),
            self.max().unwrap_or(0.0)
        )
    }
}

/// A time-weighted gauge: tracks a piecewise-constant value (queue length,
/// number of users assigned to a server, up/down state) and reports its
/// time-average.
///
/// # Examples
///
/// ```
/// use lems_sim::stats::TimeWeighted;
/// use lems_sim::time::SimTime;
///
/// let mut g = TimeWeighted::new(SimTime::ZERO, 0.0);
/// g.set(SimTime::from_units(2.0), 10.0); // 0.0 for 2 units
/// g.set(SimTime::from_units(4.0), 0.0);  // 10.0 for 2 units
/// assert_eq!(g.average(SimTime::from_units(4.0)), 5.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct TimeWeighted {
    last_change: SimTime,
    current: f64,
    weighted_sum: f64,
    origin: SimTime,
}

impl TimeWeighted {
    /// Starts tracking at `start` with initial value `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            last_change: start,
            current: value,
            weighted_sum: 0.0,
            origin: start,
        }
    }

    /// Updates the value at instant `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous update.
    pub fn set(&mut self, now: SimTime, value: f64) {
        assert!(
            now >= self.last_change,
            "TimeWeighted updates must be in time order"
        );
        self.weighted_sum += self.current * now.duration_since(self.last_change).as_units();
        self.last_change = now;
        self.current = value;
    }

    /// Adds `delta` to the current value at instant `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let next = self.current + delta;
        self.set(now, next);
    }

    /// The current value.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Time-average of the value from the start of tracking until `now`.
    /// Returns the current value if no time has elapsed.
    pub fn average(&self, now: SimTime) -> f64 {
        let span = now.duration_since(self.origin).as_units();
        if span <= 0.0 {
            return self.current;
        }
        let tail = self.current * now.duration_since(self.last_change).as_units();
        (self.weighted_sum + tail) / span
    }
}

/// A fixed-bin histogram over non-negative `f64` observations with overflow
/// tracking and quantile estimation.
///
/// # Examples
///
/// ```
/// use lems_sim::stats::Histogram;
///
/// let mut h = Histogram::uniform(10, 1.0); // 10 bins of width 1.0
/// for x in [0.5, 1.5, 2.5, 2.6, 9.9, 42.0] {
///     h.observe(x);
/// }
/// assert_eq!(h.count(), 6);
/// assert_eq!(h.overflow(), 1);
/// let median = h.quantile(0.5).unwrap();
/// assert!(median >= 1.0 && median <= 3.0);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    bins: Vec<u64>,
    width: f64,
    overflow: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram of `bins` equal-width bins covering
    /// `[0, bins * width)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `width` is not positive and finite.
    pub fn uniform(bins: usize, width: f64) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            width > 0.0 && width.is_finite(),
            "bin width must be positive and finite"
        );
        Histogram {
            bins: vec![0; bins],
            width,
            overflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// Records one observation. Negative values clamp into the first bin.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn observe(&mut self, x: f64) {
        assert!(x.is_finite(), "Histogram::observe requires finite values");
        self.count += 1;
        self.sum += x;
        let idx = (x.max(0.0) / self.width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total observations (including overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Mean of all observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Upper edge of bin `i`.
    pub fn bin_edge(&self, i: usize) -> f64 {
        (i + 1) as f64 * self.width
    }

    /// Estimates quantile `q` in `[0, 1]` by linear scan; returns `None`
    /// when empty. Observations in the overflow bucket report as the top
    /// edge of the histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.bin_edge(i));
            }
        }
        Some(self.bin_edge(self.bins.len() - 1))
    }

    /// Merges another histogram into this one. Merging is associative and
    /// commutative: per-actor histograms folded in any order give the same
    /// global distribution as observing every value in one histogram.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different bin counts or widths —
    /// bin-wise addition is only meaningful over identical layouts.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.bins.len() == other.bins.len() && self.width == other.width,
            "Histogram::merge requires identical bin layouts"
        );
        for (b, &o) in self.bins.iter_mut().zip(&other.bins) {
            *b += o;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// A fixed-bucket log-scale histogram for latency-style observations whose
/// interesting behavior lives in the tail: bucket edges grow geometrically,
/// so relative quantile error is bounded by the growth factor across the
/// whole range instead of degrading at the high end like a uniform layout.
///
/// Buckets with the same `(first_edge, growth, buckets)` shape merge
/// losslessly across actors and across `balance_par` worker threads.
///
/// # Examples
///
/// ```
/// use lems_sim::stats::LogHistogram;
///
/// let mut h = LogHistogram::latency();
/// for x in [0.3, 1.0, 2.0, 4.0, 250.0] {
///     h.observe(x);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max(), Some(250.0));
/// assert!(h.quantile(0.5).unwrap() >= 1.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LogHistogram {
    /// Upper edge of bucket 0; buckets below cover `[0, first_edge)`.
    first_edge: f64,
    /// Ratio between consecutive bucket edges (> 1).
    growth: f64,
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: f64,
    max: f64,
}

impl LogHistogram {
    /// Creates a log-scale histogram: bucket `i` covers
    /// `[first_edge * growth^(i-1), first_edge * growth^i)` with bucket 0
    /// absorbing everything below `first_edge`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0`, `first_edge` is not positive and finite,
    /// or `growth <= 1`.
    pub fn new(first_edge: f64, growth: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "log histogram needs at least one bucket");
        assert!(
            first_edge > 0.0 && first_edge.is_finite(),
            "first bucket edge must be positive and finite"
        );
        assert!(
            growth > 1.0 && growth.is_finite(),
            "bucket growth factor must exceed 1"
        );
        LogHistogram {
            first_edge,
            growth,
            bins: vec![0; buckets],
            overflow: 0,
            count: 0,
            sum: 0.0,
            max: 0.0,
        }
    }

    /// The default latency layout: 64 buckets from 0.5 paper-time units
    /// growing by `2^(1/4)` per bucket (≈19% relative quantile error),
    /// covering roughly `[0.5, 32768)` units before overflow.
    pub fn latency() -> Self {
        LogHistogram::new(0.5, std::f64::consts::SQRT_2.sqrt(), 64)
    }

    /// Records one observation. Negative values clamp into bucket 0.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn observe(&mut self, x: f64) {
        assert!(
            x.is_finite(),
            "LogHistogram::observe requires finite values"
        );
        if self.count == 0 || x > self.max {
            self.max = x;
        }
        self.count += 1;
        self.sum += x;
        let idx = self.bucket_of(x);
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Records a duration observation in paper time units.
    pub fn observe_duration(&mut self, d: SimDuration) {
        self.observe(d.as_units());
    }

    /// The bucket index `x` falls into (may be `bins.len()` = overflow).
    fn bucket_of(&self, x: f64) -> usize {
        if x < self.first_edge {
            return 0;
        }
        // Edge of bucket i is first_edge * growth^i; invert via log.
        let i = ((x / self.first_edge).ln() / self.growth.ln()).floor();
        1 + i as usize
    }

    /// Upper edge of bucket `i`.
    pub fn bucket_edge(&self, i: usize) -> f64 {
        self.first_edge * self.growth.powi(i as i32)
    }

    /// Total observations (including overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Per-bucket counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of all observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Largest observation seen (exact, not bucketed), if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Estimates quantile `q` in `[0, 1]`; returns `None` when empty.
    /// Reports the upper edge of the bucket holding the target rank;
    /// overflow observations report as the exact maximum.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.bucket_edge(i));
            }
        }
        Some(self.max)
    }

    /// True if `other` has the same bucket layout and can merge losslessly.
    pub fn same_layout(&self, other: &LogHistogram) -> bool {
        self.bins.len() == other.bins.len()
            && self.first_edge == other.first_edge
            && self.growth == other.growth
    }

    /// Merges another histogram into this one (associative, commutative).
    ///
    /// # Panics
    ///
    /// Panics if the layouts differ (see [`LogHistogram::same_layout`]).
    pub fn merge(&mut self, other: &LogHistogram) {
        assert!(
            self.same_layout(other),
            "LogHistogram::merge requires identical bucket layouts"
        );
        if other.count > 0 && (self.count == 0 || other.max > self.max) {
            self.max = other.max;
        }
        for (b, &o) in self.bins.iter_mut().zip(&other.bins) {
            *b += o;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(format!("{c}"), "5");
    }

    #[test]
    fn summary_statistics() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.observe(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.observe(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &data[..37] {
            left.observe(x);
        }
        for &x in &data[37..] {
            right.observe(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_average() {
        let mut g = TimeWeighted::new(SimTime::ZERO, 1.0);
        g.set(SimTime::from_units(1.0), 3.0);
        g.add(SimTime::from_units(3.0), -2.0); // value 1.0 from t=3
                                               // [0,1): 1.0, [1,3): 3.0, [3,5): 1.0 => (1 + 6 + 2)/5 = 1.8
        assert!((g.average(SimTime::from_units(5.0)) - 1.8).abs() < 1e-9);
        assert_eq!(g.current(), 1.0);
    }

    #[test]
    fn time_weighted_empty_span() {
        let g = TimeWeighted::new(SimTime::from_units(2.0), 7.0);
        assert_eq!(g.average(SimTime::from_units(2.0)), 7.0);
    }

    #[test]
    fn summary_variance_exact_on_known_stream() {
        // Population variance of [1..=8] is 5.25; mean 4.5. Welford must
        // reproduce both exactly (small integers are exact in f64).
        let mut s = Summary::new();
        for x in 1..=8 {
            s.observe(f64::from(x));
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 4.5).abs() < 1e-12);
        assert!((s.variance() - 5.25).abs() < 1e-12);
        // Constant stream: variance exactly zero, no drift.
        let mut c = Summary::new();
        for _ in 0..1000 {
            c.observe(3.75);
        }
        assert_eq!(c.mean(), 3.75);
        assert!(c.variance().abs() < 1e-18);
    }

    #[test]
    fn summary_variance_merge_of_disjoint_halves() {
        // Merging [0,0,0,0] and [10,10,10,10]: mean 5, variance 25.
        let mut lo = Summary::new();
        let mut hi = Summary::new();
        for _ in 0..4 {
            lo.observe(0.0);
            hi.observe(10.0);
        }
        lo.merge(&hi);
        assert_eq!(lo.count(), 8);
        assert!((lo.mean() - 5.0).abs() < 1e-12);
        assert!((lo.variance() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_matches_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| f64::from(i) * 0.037).collect();
        let mut whole = Histogram::uniform(16, 1.0);
        let mut a = Histogram::uniform(16, 1.0);
        let mut b = Histogram::uniform(16, 1.0);
        for (i, &x) in xs.iter().enumerate() {
            whole.observe(x);
            if i.is_multiple_of(2) {
                a.observe(x);
            } else {
                b.observe(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.bins(), whole.bins());
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.overflow(), whole.overflow());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn histogram_quantiles_exact_on_known_stream() {
        // 10 observations landing in known bins of width 1: values
        // 0.5, 1.5, ..., 9.5 -> one per bin. quantile(k/10) is the upper
        // edge of bin k-1, i.e. exactly k.
        let mut h = Histogram::uniform(10, 1.0);
        for i in 0..10 {
            h.observe(f64::from(i) + 0.5);
        }
        for k in 1..=10u32 {
            let q = f64::from(k) / 10.0;
            assert_eq!(h.quantile(q), Some(f64::from(k)), "q={q}");
        }
    }

    #[test]
    fn log_histogram_exact_quantiles_and_max() {
        // Powers of two land exactly on bucket boundaries of a growth-2
        // layout: value 2^k falls in the bucket whose upper edge is
        // 2^(k+1).
        let mut h = LogHistogram::new(1.0, 2.0, 12);
        for k in 0..10 {
            h.observe(f64::from(1u32 << k)); // 1, 2, 4, ..., 512
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.max(), Some(512.0));
        // Rank 5 of 10 (q=0.5) is value 16 -> bucket edge 32.
        assert_eq!(h.quantile(0.5), Some(32.0));
        // q=1.0 is the last bucket holding data: value 512 -> edge 1024.
        assert_eq!(h.quantile(1.0), Some(1024.0));
        // Everything below the first edge clamps into bucket 0.
        let mut lo = LogHistogram::new(1.0, 2.0, 4);
        lo.observe(0.0);
        lo.observe(-3.0);
        assert_eq!(lo.bins()[0], 2);
        assert_eq!(lo.quantile(0.5), Some(1.0));
    }

    #[test]
    fn log_histogram_merge_is_associative() {
        let mk = |xs: &[f64]| {
            let mut h = LogHistogram::latency();
            for &x in xs {
                h.observe(x);
            }
            h
        };
        let a = mk(&[0.1, 1.0, 7.0]);
        let b = mk(&[2.0, 2.0, 90.0]);
        let c = mk(&[0.4, 400.0, 1e6]); // 1e6 overflows the latency layout
                                        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.bins(), right.bins());
        assert_eq!(left.count(), right.count());
        assert_eq!(left.overflow(), right.overflow());
        assert_eq!(left.max(), right.max());
        assert!((left.sum() - right.sum()).abs() < 1e-6);
        // And both equal observing the whole stream directly.
        let whole = mk(&[0.1, 1.0, 7.0, 2.0, 2.0, 90.0, 0.4, 400.0, 1e6]);
        assert_eq!(left.bins(), whole.bins());
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.overflow(), whole.overflow());
        assert_eq!(left.max(), whole.max());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(left.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn histogram_quantiles_bound_data() {
        let mut h = Histogram::uniform(100, 0.1);
        for i in 0..1000 {
            h.observe(i as f64 / 100.0); // 0.00 .. 9.99
        }
        let q50 = h.quantile(0.5).unwrap();
        assert!((q50 - 5.0).abs() < 0.2, "median {q50}");
        assert_eq!(h.quantile(0.0).unwrap(), 0.1);
        assert_eq!(h.overflow(), 0);
    }

    proptest! {
        /// Summary mean is always within [min, max].
        #[test]
        fn summary_mean_bounded(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut s = Summary::new();
            for &x in &xs {
                s.observe(x);
            }
            prop_assert!(s.mean() >= s.min().unwrap() - 1e-9);
            prop_assert!(s.mean() <= s.max().unwrap() + 1e-9);
            prop_assert!(s.variance() >= -1e-9);
        }

        /// Histogram count equals observations; quantiles are monotone in q.
        #[test]
        fn histogram_quantile_monotone(xs in proptest::collection::vec(0f64..20.0, 1..200)) {
            let mut h = Histogram::uniform(10, 1.0);
            for &x in &xs {
                h.observe(x);
            }
            prop_assert_eq!(h.count(), xs.len() as u64);
            let q1 = h.quantile(0.25).unwrap();
            let q2 = h.quantile(0.5).unwrap();
            let q3 = h.quantile(0.95).unwrap();
            prop_assert!(q1 <= q2 && q2 <= q3);
        }
    }
}
