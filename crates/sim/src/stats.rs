//! Measurement primitives: counters, time-weighted gauges, and histograms.
//!
//! The experiments in `lems-bench` report polls per retrieval, delivery
//! latencies, server utilizations, and broadcast costs; these types collect
//! those observations inside simulations without imposing any I/O.

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use lems_sim::stats::Counter;
///
/// let mut polls = Counter::default();
/// polls.inc();
/// polls.add(2);
/// assert_eq!(polls.get(), 3);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Running mean/min/max/variance over a stream of `f64` observations
/// (Welford's algorithm; numerically stable, O(1) memory).
///
/// # Examples
///
/// ```
/// use lems_sim::stats::Summary;
///
/// let mut s = Summary::default();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.observe(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), Some(1.0));
/// assert_eq!(s.max(), Some(4.0));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn observe(&mut self, x: f64) {
        assert!(x.is_finite(), "Summary::observe requires finite values");
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Records a duration observation in paper time units.
    pub fn observe_duration(&mut self, d: SimDuration) {
        self.observe(d.as_units());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.stddev(),
            self.min().unwrap_or(0.0),
            self.max().unwrap_or(0.0)
        )
    }
}

/// A time-weighted gauge: tracks a piecewise-constant value (queue length,
/// number of users assigned to a server, up/down state) and reports its
/// time-average.
///
/// # Examples
///
/// ```
/// use lems_sim::stats::TimeWeighted;
/// use lems_sim::time::SimTime;
///
/// let mut g = TimeWeighted::new(SimTime::ZERO, 0.0);
/// g.set(SimTime::from_units(2.0), 10.0); // 0.0 for 2 units
/// g.set(SimTime::from_units(4.0), 0.0);  // 10.0 for 2 units
/// assert_eq!(g.average(SimTime::from_units(4.0)), 5.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct TimeWeighted {
    last_change: SimTime,
    current: f64,
    weighted_sum: f64,
    origin: SimTime,
}

impl TimeWeighted {
    /// Starts tracking at `start` with initial value `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            last_change: start,
            current: value,
            weighted_sum: 0.0,
            origin: start,
        }
    }

    /// Updates the value at instant `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous update.
    pub fn set(&mut self, now: SimTime, value: f64) {
        assert!(
            now >= self.last_change,
            "TimeWeighted updates must be in time order"
        );
        self.weighted_sum += self.current * now.duration_since(self.last_change).as_units();
        self.last_change = now;
        self.current = value;
    }

    /// Adds `delta` to the current value at instant `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let next = self.current + delta;
        self.set(now, next);
    }

    /// The current value.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Time-average of the value from the start of tracking until `now`.
    /// Returns the current value if no time has elapsed.
    pub fn average(&self, now: SimTime) -> f64 {
        let span = now.duration_since(self.origin).as_units();
        if span <= 0.0 {
            return self.current;
        }
        let tail = self.current * now.duration_since(self.last_change).as_units();
        (self.weighted_sum + tail) / span
    }
}

/// A fixed-bin histogram over non-negative `f64` observations with overflow
/// tracking and quantile estimation.
///
/// # Examples
///
/// ```
/// use lems_sim::stats::Histogram;
///
/// let mut h = Histogram::uniform(10, 1.0); // 10 bins of width 1.0
/// for x in [0.5, 1.5, 2.5, 2.6, 9.9, 42.0] {
///     h.observe(x);
/// }
/// assert_eq!(h.count(), 6);
/// assert_eq!(h.overflow(), 1);
/// let median = h.quantile(0.5).unwrap();
/// assert!(median >= 1.0 && median <= 3.0);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    bins: Vec<u64>,
    width: f64,
    overflow: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram of `bins` equal-width bins covering
    /// `[0, bins * width)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `width` is not positive and finite.
    pub fn uniform(bins: usize, width: f64) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            width > 0.0 && width.is_finite(),
            "bin width must be positive and finite"
        );
        Histogram {
            bins: vec![0; bins],
            width,
            overflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// Records one observation. Negative values clamp into the first bin.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn observe(&mut self, x: f64) {
        assert!(x.is_finite(), "Histogram::observe requires finite values");
        self.count += 1;
        self.sum += x;
        let idx = (x.max(0.0) / self.width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total observations (including overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Mean of all observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Upper edge of bin `i`.
    pub fn bin_edge(&self, i: usize) -> f64 {
        (i + 1) as f64 * self.width
    }

    /// Estimates quantile `q` in `[0, 1]` by linear scan; returns `None`
    /// when empty. Observations in the overflow bucket report as the top
    /// edge of the histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.bin_edge(i));
            }
        }
        Some(self.bin_edge(self.bins.len() - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(format!("{c}"), "5");
    }

    #[test]
    fn summary_statistics() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.observe(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.observe(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &data[..37] {
            left.observe(x);
        }
        for &x in &data[37..] {
            right.observe(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_average() {
        let mut g = TimeWeighted::new(SimTime::ZERO, 1.0);
        g.set(SimTime::from_units(1.0), 3.0);
        g.add(SimTime::from_units(3.0), -2.0); // value 1.0 from t=3
                                               // [0,1): 1.0, [1,3): 3.0, [3,5): 1.0 => (1 + 6 + 2)/5 = 1.8
        assert!((g.average(SimTime::from_units(5.0)) - 1.8).abs() < 1e-9);
        assert_eq!(g.current(), 1.0);
    }

    #[test]
    fn time_weighted_empty_span() {
        let g = TimeWeighted::new(SimTime::from_units(2.0), 7.0);
        assert_eq!(g.average(SimTime::from_units(2.0)), 7.0);
    }

    #[test]
    fn histogram_quantiles_bound_data() {
        let mut h = Histogram::uniform(100, 0.1);
        for i in 0..1000 {
            h.observe(i as f64 / 100.0); // 0.00 .. 9.99
        }
        let q50 = h.quantile(0.5).unwrap();
        assert!((q50 - 5.0).abs() < 0.2, "median {q50}");
        assert_eq!(h.quantile(0.0).unwrap(), 0.1);
        assert_eq!(h.overflow(), 0);
    }

    proptest! {
        /// Summary mean is always within [min, max].
        #[test]
        fn summary_mean_bounded(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut s = Summary::new();
            for &x in &xs {
                s.observe(x);
            }
            prop_assert!(s.mean() >= s.min().unwrap() - 1e-9);
            prop_assert!(s.mean() <= s.max().unwrap() + 1e-9);
            prop_assert!(s.variance() >= -1e-9);
        }

        /// Histogram count equals observations; quantiles are monotone in q.
        #[test]
        fn histogram_quantile_monotone(xs in proptest::collection::vec(0f64..20.0, 1..200)) {
            let mut h = Histogram::uniform(10, 1.0);
            for &x in &xs {
                h.observe(x);
            }
            prop_assert_eq!(h.count(), xs.len() as u64);
            let q1 = h.quantile(0.25).unwrap();
            let q2 = h.quantile(0.5).unwrap();
            let q3 = h.quantile(0.95).unwrap();
            prop_assert!(q1 <= q2 && q2 <= q3);
        }
    }
}
