//! Simulated time.
//!
//! The paper expresses all costs in abstract "time units" (e.g. the average
//! communication time of every link in Fig. 1 is one time unit, message
//! processing takes 0.5 time units). We represent simulated time as an
//! integer number of *ticks*, with [`TICKS_PER_UNIT`] ticks per paper time
//! unit, so that event ordering is exact and runs are reproducible while the
//! fractional constants from the paper stay representable.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of integer ticks per paper "time unit".
///
/// One million ticks gives microsecond-like resolution relative to the
/// paper's unit costs, which is far finer than any constant the paper uses.
pub const TICKS_PER_UNIT: u64 = 1_000_000;

/// A point in simulated time, measured in ticks since the start of the run.
///
/// `SimTime` is an absolute instant; [`SimDuration`] is a length of time.
/// Arithmetic that would underflow saturates to zero (times before the start
/// of a simulation do not exist), while overflow panics in debug builds like
/// ordinary integer arithmetic.
///
/// # Examples
///
/// ```
/// use lems_sim::time::{SimTime, SimDuration};
///
/// let start = SimTime::ZERO;
/// let later = start + SimDuration::from_units(1.5);
/// assert_eq!(later.as_units(), 1.5);
/// assert!(later > start);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A length of simulated time, measured in ticks.
///
/// # Examples
///
/// ```
/// use lems_sim::time::SimDuration;
///
/// let one = SimDuration::from_units(1.0);
/// let half = SimDuration::from_units(0.5);
/// assert_eq!((one + half).as_units(), 1.5);
/// assert_eq!(one * 3, SimDuration::from_units(3.0));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from a raw tick count.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Creates an instant from a (possibly fractional) number of paper time
    /// units.
    ///
    /// # Panics
    ///
    /// Panics if `units` is negative or not finite.
    pub fn from_units(units: f64) -> Self {
        assert!(
            units.is_finite() && units >= 0.0,
            "SimTime units must be finite and non-negative, got {units}"
        );
        SimTime((units * TICKS_PER_UNIT as f64).round() as u64)
    }

    /// Raw tick count since the start of the run.
    pub const fn as_ticks(self) -> u64 {
        self.0
    }

    /// This instant expressed in paper time units.
    pub fn as_units(self) -> f64 {
        self.0 as f64 / TICKS_PER_UNIT as f64
    }

    /// Duration since an earlier instant, saturating to zero if `earlier` is
    /// actually later.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration; useful as an "infinite" timeout.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from a raw tick count.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Creates a duration from a (possibly fractional) number of paper time
    /// units.
    ///
    /// # Panics
    ///
    /// Panics if `units` is negative or not finite.
    pub fn from_units(units: f64) -> Self {
        assert!(
            units.is_finite() && units >= 0.0,
            "SimDuration units must be finite and non-negative, got {units}"
        );
        SimDuration((units * TICKS_PER_UNIT as f64).round() as u64)
    }

    /// Raw tick count.
    pub const fn as_ticks(self) -> u64 {
        self.0
    }

    /// This duration expressed in paper time units.
    pub fn as_units(self) -> f64 {
        self.0 as f64 / TICKS_PER_UNIT as f64
    }

    /// True if this is the zero-length duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(rhs.0).map(SimDuration)
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}", self.as_units())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.as_units())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Δ{:.6}", self.as_units())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.as_units())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_round_trip() {
        let t = SimTime::from_units(2.5);
        assert_eq!(t.as_ticks(), 2_500_000);
        assert_eq!(t.as_units(), 2.5);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_units(1.0) + SimDuration::from_units(0.5);
        assert_eq!(t, SimTime::from_units(1.5));
        assert_eq!(t - SimTime::from_units(1.0), SimDuration::from_units(0.5));
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_units(1.0);
        let late = SimTime::from_units(3.0);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.duration_since(late), SimDuration::ZERO);
        assert_eq!(late.duration_since(early), SimDuration::from_units(2.0));
    }

    #[test]
    fn duration_ops() {
        let d = SimDuration::from_units(2.0);
        assert_eq!(d * 3, SimDuration::from_units(6.0));
        assert_eq!(d / 4, SimDuration::from_units(0.5));
        assert!(SimDuration::ZERO.is_zero());
        assert!(!d.is_zero());
        assert_eq!(d.checked_sub(SimDuration::from_units(3.0)), None);
        assert_eq!(
            d.saturating_sub(SimDuration::from_units(3.0)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(|i| SimDuration::from_units(i as f64)).sum();
        assert_eq!(total, SimDuration::from_units(10.0));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_units_panic() {
        let _ = SimDuration::from_units(-1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_units(1.25)), "1.250");
        assert_eq!(format!("{}", SimDuration::from_units(0.5)), "0.500");
        assert_eq!(format!("{:?}", SimTime::from_units(1.0)), "t=1.000000");
    }
}
