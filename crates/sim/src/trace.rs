//! Bounded in-memory event tracing.
//!
//! Tracing is off by default (zero cost beyond a branch); tests and the
//! debugging binaries enable it to inspect message flow.

use std::collections::VecDeque;

use crate::actor::ActorId;
use crate::time::SimTime;

/// What happened.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// A message was scheduled for delivery.
    Send,
    /// A message reached a live actor.
    Deliver,
    /// A message was dropped because its destination was down.
    Drop,
    /// A message was lost on the wire (link outage or probabilistic loss).
    LinkDrop,
    /// An actor crashed.
    Crash,
    /// An actor recovered.
    Recover,
}

impl std::fmt::Display for TraceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TraceKind::Send => "send",
            TraceKind::Deliver => "deliver",
            TraceKind::Drop => "drop",
            TraceKind::LinkDrop => "link-drop",
            TraceKind::Crash => "crash",
            TraceKind::Recover => "recover",
        };
        f.write_str(s)
    }
}

/// One traced event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// When the event took effect.
    pub at: SimTime,
    /// The kind of event.
    pub kind: TraceKind,
    /// Source actor (equal to `to` for crash/recover).
    pub from: ActorId,
    /// Destination actor.
    pub to: ActorId,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} {} -> {}",
            self.at, self.kind, self.from, self.to
        )
    }
}

/// A bounded ring buffer of [`TraceEvent`]s.
///
/// # Examples
///
/// ```
/// use lems_sim::trace::{Trace, TraceKind};
/// use lems_sim::actor::ActorId;
/// use lems_sim::time::SimTime;
///
/// let mut t = Trace::bounded(2);
/// t.record(SimTime::ZERO, TraceKind::Send, ActorId(0), ActorId(1));
/// t.record(SimTime::ZERO, TraceKind::Deliver, ActorId(0), ActorId(1));
/// t.record(SimTime::ZERO, TraceKind::Send, ActorId(1), ActorId(0));
/// assert_eq!(t.events().count(), 2); // oldest evicted
/// ```
#[derive(Clone, Debug, Default)]
pub struct Trace {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    recorded: u64,
    dropped: u64,
}

impl Trace {
    /// A trace that records nothing.
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// A trace keeping the most recent `capacity` events.
    pub fn bounded(capacity: usize) -> Self {
        Trace {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            recorded: 0,
            dropped: 0,
        }
    }

    /// A trace that keeps every event (no eviction). Auditors that verify
    /// conservation laws over the stream need the complete history; a lossy
    /// ring buffer would report false violations for evicted prefixes.
    pub fn unbounded() -> Self {
        Trace::bounded(usize::MAX)
    }

    /// True if this trace keeps events.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// True if eviction has discarded at least one recorded event.
    pub fn is_lossy(&self) -> bool {
        self.dropped > 0
    }

    /// Events evicted by the ring buffer: recorded but no longer retained.
    /// Any nonzero value means conservation auditors cannot trust this
    /// trace — the missing prefix would surface as false violations.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Records an event (no-op when disabled).
    pub fn record(&mut self, at: SimTime, kind: TraceKind, from: ActorId, to: ActorId) {
        if self.capacity == 0 {
            return;
        }
        self.recorded += 1;
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(TraceEvent { at, kind, from, to });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded_total(&self) -> u64 {
        self.recorded
    }

    /// FNV-1a digest over the rendered event stream: each retained event's
    /// `Display` form followed by a newline, hashed in order.
    ///
    /// Two traces digest equal exactly when every retained event matches in
    /// order, timing, kind, and endpoints — the regression currency for
    /// kernel refactors (`tests/kernel_equivalence.rs` pins runs against
    /// digests captured on earlier engines). The rendering is streamed
    /// through the hasher, so digesting allocates nothing per event.
    pub fn digest(&self) -> u64 {
        use std::fmt::Write as _;
        struct Fnv(u64);
        impl std::fmt::Write for Fnv {
            fn write_str(&mut self, s: &str) -> std::fmt::Result {
                for b in s.bytes() {
                    self.0 ^= u64::from(b);
                    self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
                }
                Ok(())
            }
        }
        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        for ev in self.events() {
            // Writing into `Fnv` cannot fail; the result only propagates the
            // formatter contract.
            let _ = writeln!(h, "{ev}");
        }
        h.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, TraceKind::Send, ActorId(0), ActorId(1));
        assert_eq!(t.events().count(), 0);
        assert_eq!(t.recorded_total(), 0);
        assert!(!t.is_enabled());
    }

    #[test]
    fn bounded_trace_evicts_oldest() {
        let mut t = Trace::bounded(3);
        for i in 0..5 {
            t.record(
                SimTime::from_ticks(i),
                TraceKind::Deliver,
                ActorId(0),
                ActorId(1),
            );
        }
        let times: Vec<u64> = t.events().map(|e| e.at.as_ticks()).collect();
        assert_eq!(times, vec![2, 3, 4]);
        assert_eq!(t.recorded_total(), 5);
        assert_eq!(t.dropped_events(), 2);
        assert!(t.is_lossy());
    }

    #[test]
    fn unbounded_trace_never_evicts() {
        let mut t = Trace::unbounded();
        for i in 0..10_000 {
            t.record(
                SimTime::from_ticks(i),
                TraceKind::Send,
                ActorId(0),
                ActorId(1),
            );
        }
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.recorded_total(), 10_000);
        assert_eq!(t.dropped_events(), 0);
        assert!(!t.is_lossy());
        assert!(t.is_enabled());
    }

    #[test]
    fn digest_matches_rendered_stream_reference() {
        let mut t = Trace::unbounded();
        t.record(
            SimTime::from_units(1.0),
            TraceKind::Send,
            ActorId(0),
            ActorId(1),
        );
        t.record(
            SimTime::from_units(2.0),
            TraceKind::Deliver,
            ActorId(0),
            ActorId(1),
        );
        t.record(
            SimTime::from_units(2.0),
            TraceKind::Crash,
            ActorId(1),
            ActorId(1),
        );
        // Reference implementation: format every event, hash the bytes.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for ev in t.events() {
            for b in format!("{ev}\n").bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        assert_eq!(t.digest(), h);
    }

    #[test]
    fn digest_distinguishes_order_and_content() {
        let mut a = Trace::unbounded();
        a.record(SimTime::ZERO, TraceKind::Send, ActorId(0), ActorId(1));
        a.record(SimTime::ZERO, TraceKind::Deliver, ActorId(0), ActorId(1));
        let mut b = Trace::unbounded();
        b.record(SimTime::ZERO, TraceKind::Deliver, ActorId(0), ActorId(1));
        b.record(SimTime::ZERO, TraceKind::Send, ActorId(0), ActorId(1));
        assert_ne!(a.digest(), b.digest(), "order must matter");
        let mut c = Trace::unbounded();
        c.record(SimTime::ZERO, TraceKind::Send, ActorId(0), ActorId(2));
        c.record(SimTime::ZERO, TraceKind::Deliver, ActorId(0), ActorId(2));
        assert_ne!(a.digest(), c.digest(), "endpoints must matter");
        assert_eq!(Trace::disabled().digest(), Trace::default().digest());
    }

    #[test]
    fn display_is_informative() {
        let e = TraceEvent {
            at: SimTime::from_units(1.0),
            kind: TraceKind::Drop,
            from: ActorId(3),
            to: ActorId(7),
        };
        let s = format!("{e}");
        assert!(s.contains("drop") && s.contains("a3") && s.contains("a7"));
    }
}
