//! Pins the profiler's zero-perturbation contract: enabling profiling
//! changes **no** output byte of a run — trace digest, counters, and
//! final clock are identical with profiling on or off, on both the
//! sequential and sharded engines, at any thread count.
//!
//! (The PR 5 on/off pin covers spans on the sequential path only; this
//! battery covers the kernel profiler on both engines.)

use lems_sim::actor::{Actor, ActorId, ActorSim, Ctx, TimerId};
use lems_sim::shard::ShardedSim;
use lems_sim::time::{SimDuration, SimTime};

fn unit(u: f64) -> SimDuration {
    SimDuration::from_units(u)
}

/// Forwards a TTL-carrying token around a ring; also arms one timer that
/// fires and one that it cancels, so every dispatch class shows up.
struct Ring {
    n: usize,
    doomed: Option<TimerId>,
}

impl Actor for Ring {
    type Msg = u64;
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        let next = ActorId((ctx.me().0 + 1) % self.n);
        ctx.send(next, 24, unit(0.5));
        let _keeper = ctx.set_timer(unit(2.0), 1);
        self.doomed = Some(ctx.set_timer(unit(3.0), 2));
    }
    fn on_message(&mut self, _f: ActorId, ttl: u64, ctx: &mut Ctx<'_, u64>) {
        if ttl > 0 {
            let next = ActorId((ctx.me().0 + 1) % self.n);
            ctx.send(next, ttl - 1, unit(0.5));
        }
    }
    fn on_timer(&mut self, _id: TimerId, tag: u64, ctx: &mut Ctx<'_, u64>) {
        if tag == 1 {
            if let Some(d) = self.doomed.take() {
                ctx.cancel_timer(d);
            }
        }
    }
    fn kind(&self) -> &'static str {
        "ring"
    }
}

const N: usize = 8;
const SEED: u64 = 42;

/// Every dispatch class is exercised: deliveries, a crash and recovery
/// (with drops while down), a drop to an unknown id, fired and
/// suppressed timers.
struct Fingerprint {
    digest: u64,
    delivered: u64,
    dropped_down: u64,
    dropped_unknown: u64,
    timers_fired: u64,
    timers_suppressed: u64,
    now: SimTime,
}

fn drive<R>(sim: &mut R) -> bool
where
    R: Driver,
{
    sim.schedule_crash(ActorId(2), SimTime::from_units(1.25));
    sim.schedule_recover(ActorId(2), SimTime::from_units(4.25));
    sim.inject(ActorId(999), 0, unit(0.25));
    sim.quiesce(100_000)
}

/// The few engine entry points this battery needs, so one driver covers
/// both engines.
trait Driver {
    fn schedule_crash(&mut self, actor: ActorId, at: SimTime);
    fn schedule_recover(&mut self, actor: ActorId, at: SimTime);
    fn inject(&mut self, to: ActorId, msg: u64, delay: SimDuration);
    fn quiesce(&mut self, max: u64) -> bool;
    fn fingerprint(&self) -> Fingerprint;
}

impl Driver for ActorSim<u64> {
    fn schedule_crash(&mut self, actor: ActorId, at: SimTime) {
        ActorSim::schedule_crash(self, actor, at);
    }
    fn schedule_recover(&mut self, actor: ActorId, at: SimTime) {
        ActorSim::schedule_recover(self, actor, at);
    }
    fn inject(&mut self, to: ActorId, msg: u64, delay: SimDuration) {
        ActorSim::inject(self, to, msg, delay);
    }
    fn quiesce(&mut self, max: u64) -> bool {
        self.run_to_quiescence_bounded(max)
    }
    fn fingerprint(&self) -> Fingerprint {
        Fingerprint {
            digest: self.trace().digest(),
            delivered: self.counters().delivered.get(),
            dropped_down: self.counters().dropped_down.get(),
            dropped_unknown: self.counters().dropped_unknown.get(),
            timers_fired: self.counters().timers_fired.get(),
            timers_suppressed: self.counters().timers_suppressed.get(),
            now: self.now(),
        }
    }
}

impl Driver for ShardedSim<u64> {
    fn schedule_crash(&mut self, actor: ActorId, at: SimTime) {
        ShardedSim::schedule_crash(self, actor, at);
    }
    fn schedule_recover(&mut self, actor: ActorId, at: SimTime) {
        ShardedSim::schedule_recover(self, actor, at);
    }
    fn inject(&mut self, to: ActorId, msg: u64, delay: SimDuration) {
        ShardedSim::inject(self, to, msg, delay);
    }
    fn quiesce(&mut self, max: u64) -> bool {
        self.run_to_quiescence_bounded(max)
    }
    fn fingerprint(&self) -> Fingerprint {
        Fingerprint {
            digest: self.trace().digest(),
            delivered: self.counters().delivered.get(),
            dropped_down: self.counters().dropped_down.get(),
            dropped_unknown: self.counters().dropped_unknown.get(),
            timers_fired: self.counters().timers_fired.get(),
            timers_suppressed: self.counters().timers_suppressed.get(),
            now: self.now(),
        }
    }
}

fn assert_same(a: &Fingerprint, b: &Fingerprint, what: &str) {
    assert_eq!(a.digest, b.digest, "{what}: trace digest diverged");
    assert_eq!(a.delivered, b.delivered, "{what}: delivered");
    assert_eq!(a.dropped_down, b.dropped_down, "{what}: dropped_down");
    assert_eq!(
        a.dropped_unknown, b.dropped_unknown,
        "{what}: dropped_unknown"
    );
    assert_eq!(a.timers_fired, b.timers_fired, "{what}: timers_fired");
    assert_eq!(
        a.timers_suppressed, b.timers_suppressed,
        "{what}: timers_suppressed"
    );
    assert_eq!(a.now, b.now, "{what}: final clock");
}

fn seq_run(prof: bool) -> (Fingerprint, ActorSim<u64>) {
    let mut sim = ActorSim::new(SEED);
    sim.enable_trace(usize::MAX);
    for _ in 0..N {
        sim.add_actor(Ring { n: N, doomed: None });
    }
    if prof {
        sim.enable_prof();
    }
    assert!(drive(&mut sim), "sequential run must quiesce");
    (sim.fingerprint(), sim)
}

fn shard_run(prof: bool, threads: usize) -> (Fingerprint, ShardedSim<u64>) {
    let mut sim = ShardedSim::new(SEED, threads);
    sim.enable_trace(usize::MAX);
    for _ in 0..N {
        sim.add_actor(Ring { n: N, doomed: None });
    }
    if prof {
        sim.enable_prof();
    }
    assert!(drive(&mut sim), "sharded run must quiesce");
    (sim.fingerprint(), sim)
}

#[test]
fn profiling_is_invisible_on_the_sequential_engine() {
    let (off, _) = seq_run(false);
    let (on, sim) = seq_run(true);
    assert_same(&off, &on, "sequential prof on vs off");
    // The workload exercised every dispatch class...
    assert!(off.delivered > 0 && off.dropped_down > 0 && off.dropped_unknown > 0);
    assert!(off.timers_fired > 0 && off.timers_suppressed > 0);
    // ...and the profiler saw all of it.
    assert_eq!(
        sim.prof().dispatches(),
        off.delivered
            + off.dropped_down
            + off.dropped_unknown
            + off.timers_fired
            + off.timers_suppressed
            + 2, // the crash and the recovery
    );
    let samples = sim.profile_samples();
    for cell in [
        "ring/deliver",
        "ring/drop-down",
        "unknown/drop-unknown",
        "ring/timer",
        "ring/timer-suppressed",
        "ring/crash",
        "ring/recover",
    ] {
        assert!(
            samples
                .iter()
                .any(|s| s.scope == "dispatch" && s.name == cell && s.count > 0),
            "missing dispatch cell {cell}"
        );
    }
    // Busy attribution decomposes elapsed sim time: the per-cell charges
    // sum to the instant of the last dispatched event.
    let busy: u64 = samples
        .iter()
        .filter(|s| s.scope == "dispatch")
        .map(|s| s.ticks)
        .sum();
    assert_eq!(busy, off.now.as_ticks());
}

#[test]
fn profiling_is_invisible_on_the_sharded_engine() {
    let (seq_off, _) = seq_run(false);
    for threads in [1, 4] {
        let (off, _) = shard_run(false, threads);
        let (on, sim) = shard_run(true, threads);
        assert_same(&off, &on, &format!("sharded({threads}) prof on vs off"));
        assert_same(
            &seq_off,
            &on,
            &format!("sharded({threads}, prof) vs sequential(no prof)"),
        );
        assert!(sim.prof().dispatches() > 0);
        assert!(
            sim.profile_samples()
                .iter()
                .any(|s| s.scope == "shard" && s.name == "batches" && s.count > 0),
            "sharded engine must report batch stats"
        );
    }
}

#[test]
fn dispatch_attribution_is_engine_invariant() {
    // Queue-depth samples may differ between engines (the sharded freeze
    // pops a whole instant before committing), but dispatch cells — the
    // counts and the sim-time busy decomposition — must not.
    let (_, seq) = seq_run(true);
    let (_, shard) = shard_run(true, 4);
    let cells = |samples: Vec<lems_sim::prof::ProfSample>| {
        samples
            .into_iter()
            .filter(|s| s.scope == "dispatch")
            .map(|s| (s.name, s.count, s.ticks))
            .collect::<Vec<_>>()
    };
    assert_eq!(cells(seq.profile_samples()), cells(shard.profile_samples()));
}
