//! Differential test battery: the calendar-queue backend against the
//! baseline ordered-map oracle.
//!
//! [`EventQueue::baseline`] is the pre-calendar `BTreeMap<(time, seq), E>`
//! implementation, kept in-tree precisely so this suite can drive both
//! backends through identical command sequences and demand identical
//! observable behaviour at every step: pop order, peek, ready-set contents,
//! targeted removal, lengths, and final drain.
//!
//! The command generator is weighted to hit the calendar queue's structural
//! edges:
//! * duplicate timestamps (dense low-tick pushes) — FIFO tie-break and
//!   same-instant ready sets;
//! * multi-day spreads — bucket-ring rotation and refill-day scanning;
//! * far-future inserts near `u64::MAX` — the overflow spill and the
//!   jump-to-minimum refill path;
//! * interleaved pops/removals/clears — front-cursor maintenance, ring
//!   growth and shrink mid-sequence.

use lems_sim::queue::{EventQueue, EventSeq};
use lems_sim::time::SimTime;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Cmd {
    /// Schedule the next payload at this tick.
    Push(u64),
    /// Pop the earliest event; both backends must agree on time and payload.
    Pop,
    /// Pop with the sequence number exposed.
    PopWithSeq,
    /// Remove a previously pushed (time, seq) entry, selected by index into
    /// the push history (possibly already popped/removed — both backends
    /// must then agree it is gone).
    Remove(usize),
    /// Snapshot the full same-instant ready set.
    Ready,
    /// Peek the head firing time.
    Peek,
    /// Drop everything (sequence numbering continues).
    Clear,
}

/// Decodes one raw generated tuple into a command. The opcode space is
/// weighted: half the opcodes push (split across tick regimes), the rest
/// split between pops, removals, read-only probes, and a rare clear.
fn decode(op: u32, raw: u64, idx: usize) -> Cmd {
    match op {
        // Duplicate-heavy low ticks: FIFO tie-breaks, wide ready sets.
        0..=3 => Cmd::Push(raw % 2_000),
        // Multi-day spread: ring rotation across ~50 initial-width days.
        4..=6 => Cmd::Push(raw % 50_000_000),
        // Far future: overflow spill and saturating day arithmetic.
        7 => Cmd::Push(u64::MAX - raw % 1_000),
        8 | 9 => Cmd::Pop,
        10 => Cmd::PopWithSeq,
        11 | 12 => Cmd::Remove(idx),
        13 => Cmd::Ready,
        14 => Cmd::Peek,
        // Clears derange the whole structure; keep them rare.
        _ => {
            if raw.is_multiple_of(4) {
                Cmd::Clear
            } else {
                Cmd::Pop
            }
        }
    }
}

/// Runs one command sequence through both backends, asserting equal
/// observables after every command, then drains both to empty.
fn run_differential(cmds: &[Cmd]) {
    let mut cal: EventQueue<u64> = EventQueue::new();
    let mut base: EventQueue<u64> = EventQueue::baseline();
    assert!(!cal.is_baseline());
    assert!(base.is_baseline());
    let mut payload: u64 = 0;
    let mut history: Vec<(SimTime, EventSeq)> = Vec::new();

    for c in cmds {
        match c {
            Cmd::Push(t) => {
                let at = SimTime::from_ticks(*t);
                let s1 = cal.push(at, payload);
                let s2 = base.push(at, payload);
                assert_eq!(s1, s2, "seq assignment must match");
                history.push((at, s1));
                payload += 1;
            }
            Cmd::Pop => {
                assert_eq!(cal.pop(), base.pop());
            }
            Cmd::PopWithSeq => {
                assert_eq!(cal.pop_with_seq(), base.pop_with_seq());
            }
            Cmd::Remove(i) => {
                if !history.is_empty() {
                    let (at, seq) = history[i % history.len()];
                    assert_eq!(cal.remove(at, seq), base.remove(at, seq));
                }
            }
            Cmd::Ready => {
                let r1: Vec<(SimTime, u64, u64)> =
                    cal.ready().map(|(at, s, e)| (at, s.0, *e)).collect();
                let r2: Vec<(SimTime, u64, u64)> =
                    base.ready().map(|(at, s, e)| (at, s.0, *e)).collect();
                assert_eq!(r1, r2, "ready sets must match");
            }
            Cmd::Peek => {
                assert_eq!(cal.peek_time(), base.peek_time());
            }
            Cmd::Clear => {
                cal.clear();
                base.clear();
            }
        }
        assert_eq!(cal.len(), base.len());
        assert_eq!(cal.is_empty(), base.is_empty());
        assert_eq!(cal.peek_time(), base.peek_time());
        assert_eq!(cal.scheduled_total(), base.scheduled_total());
    }

    // Final drain: the complete remaining order must agree.
    loop {
        let a = cal.pop_with_seq();
        let b = base.pop_with_seq();
        assert_eq!(a, b);
        if b.is_none() {
            break;
        }
    }
}

proptest! {
    /// Random command sequences: every observable identical on both
    /// backends, step by step.
    #[test]
    fn calendar_matches_baseline_oracle(
        raw in proptest::collection::vec((0u32..16, 0u64..=u64::MAX, 0usize..1_000_000), 1..400),
    ) {
        let cmds: Vec<Cmd> = raw.into_iter().map(|(op, r, i)| decode(op, r, i)).collect();
        run_differential(&cmds);
    }

    /// Duplicate-timestamp stress: many events collapsed onto few distinct
    /// instants, so FIFO tie-breaks and wide ready sets carry the ordering.
    #[test]
    fn duplicate_instants_match(
        raw in proptest::collection::vec((0u64..8, 0u32..4), 1..300),
    ) {
        let cmds: Vec<Cmd> = raw
            .into_iter()
            .map(|(t, op)| match op {
                0 | 1 => Cmd::Push(t * 250_000),
                2 => Cmd::Pop,
                _ => Cmd::Ready,
            })
            .collect();
        run_differential(&cmds);
    }

    /// Bucket-rotation stress: ticks quantized to whole calendar days over
    /// a span far wider than the initial ring, interleaved with pops, so
    /// the ring wraps repeatedly while occupied.
    #[test]
    fn day_boundary_rotation_matches(
        raw in proptest::collection::vec((0u64..512, 0u32..2), 1..300),
    ) {
        let cmds: Vec<Cmd> = raw
            .into_iter()
            .map(|(day, op)| {
                if op == 0 {
                    // Exactly on a day boundary of the initial width (2^20).
                    Cmd::Push(day << 20)
                } else {
                    Cmd::Pop
                }
            })
            .collect();
        run_differential(&cmds);
    }

    /// Far-future stress: every push lands near the top of the tick range,
    /// exercising overflow spill, saturating day arithmetic, and the
    /// jump-to-minimum refill.
    #[test]
    fn far_future_inserts_match(
        raw in proptest::collection::vec(((u64::MAX - 50)..=u64::MAX, 0u32..3), 1..200),
    ) {
        let cmds: Vec<Cmd> = raw
            .into_iter()
            .map(|(t, op)| match op {
                0 => Cmd::Push(t),
                1 => Cmd::Pop,
                _ => Cmd::Peek,
            })
            .collect();
        run_differential(&cmds);
    }
}
