//! Pins the zero-allocation steady state of the sim hot path.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! phase (which grows the calendar ring, the payload pool's free list, and
//! the actor queue to their steady sizes), a measured phase dispatches many
//! more events and asserts the allocation count did not move. This is the
//! hard evidence for the "pooled events, no steady-state allocation" claim:
//! a regression that reintroduces a per-event `Box`, clone, or rehash fails
//! here, not in a profiler.
//!
//! Lives in `tests/` (its own crate) because `lems-sim` itself forbids the
//! `unsafe` that a `GlobalAlloc` impl requires.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use lems_sim::actor::{Actor, ActorId, ActorSim, Ctx};
use lems_sim::queue::EventQueue;
use lems_sim::time::{SimDuration, SimTime};

/// System allocator with an allocation counter (deallocations and
/// reallocations are counted too — a steady state must not churn at all).
struct CountingAlloc {
    allocs: AtomicU64,
    deallocs: AtomicU64,
    reallocs: AtomicU64,
}

static COUNTS: CountingAlloc = CountingAlloc {
    allocs: AtomicU64::new(0),
    deallocs: AtomicU64::new(0),
    reallocs: AtomicU64::new(0),
};

#[global_allocator]
static GLOBAL: Counting = Counting;

struct Counting;

// SAFETY: delegates every operation verbatim to `System`; the counters are
// plain relaxed atomics with no allocation of their own.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        COUNTS.allocs.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        COUNTS.deallocs.fetch_add(1, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        COUNTS.reallocs.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Snapshot of (allocs, deallocs, reallocs).
fn snapshot() -> (u64, u64, u64) {
    (
        COUNTS.allocs.load(Ordering::Relaxed),
        COUNTS.deallocs.load(Ordering::Relaxed),
        COUNTS.reallocs.load(Ordering::Relaxed),
    )
}

#[test]
fn queue_steady_state_allocates_nothing() {
    // Steady churn: a bounded pending set cycling through pushes and pops
    // with small bounded delays, so every push lands in the current bucket
    // window and every slot comes off the pool's free list. The pending
    // set is kept small so the bucket ring is small and the warm-up laps
    // it several times — a ring slot only stops allocating once it has
    // been occupied at its high-water size, so steady state begins after
    // the first few full wraps, not after the first pass.
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut now: u64 = 0;
    for i in 0..128u64 {
        q.push(SimTime::from_ticks(now + 1 + i % 97), i);
    }
    for i in 0..400_000u64 {
        if let Some((at, _)) = q.pop() {
            now = at.as_ticks();
        }
        q.push(SimTime::from_ticks(now + 1 + i % 97), i);
    }

    let before = snapshot();
    let pool_before = q.stats();
    for i in 0..100_000u64 {
        if let Some((at, _)) = q.pop() {
            now = at.as_ticks();
        }
        q.push(SimTime::from_ticks(now + 1 + i % 97), i);
    }
    let after = snapshot();
    let pool_after = q.stats();
    assert_eq!(
        before, after,
        "calendar queue steady state must not touch the allocator"
    );
    // The pool counters agree with the counting-allocator proof: all
    // 100k measured inserts recycled freed slots, none grew the slab.
    assert_eq!(
        pool_after.pool_misses, pool_before.pool_misses,
        "steady state must be miss-free"
    );
    assert_eq!(pool_after.pool_grows, pool_before.pool_grows);
    assert_eq!(pool_after.pool_hits, pool_before.pool_hits + 100_000);
    assert_eq!(pool_after.pool_capacity, pool_before.pool_capacity);
    drop(q);
}

/// Ping-pong pair: every delivery sends one message onward with a constant
/// delay — the classic steady-state dispatch loop.
struct Pong {
    peer: usize,
    got: u64,
}

impl Actor for Pong {
    type Msg = u64;
    fn on_message(&mut self, _from: ActorId, msg: u64, ctx: &mut Ctx<'_, u64>) {
        self.got += 1;
        ctx.send(ActorId(self.peer), msg, SimDuration::from_ticks(3));
    }
}

#[test]
fn actor_dispatch_steady_state_allocates_nothing() {
    let mut sim: ActorSim<u64> = ActorSim::new(42);
    let a = sim.add_actor(Pong { peer: 1, got: 0 });
    let _b = sim.add_actor(Pong { peer: 0, got: 0 });
    // Several balls in flight keep the pending set non-trivial.
    for k in 0..64 {
        sim.inject(a, k, SimDuration::from_ticks(1 + k));
    }
    // Warm-up: fills the FIFO-lane map, trace ring (disabled here), pool
    // free list, and every transient Vec's capacity.
    sim.run_until(SimTime::from_ticks(30_000));

    let before = snapshot();
    let pool_before = sim.queue_stats();
    sim.run_until(SimTime::from_ticks(90_000));
    let after = snapshot();
    let pool_after = sim.queue_stats();
    let delivered = sim.counters().delivered.get();
    assert!(
        delivered > 100_000,
        "expected a busy steady state, got {delivered} deliveries"
    );
    assert_eq!(
        before, after,
        "actor dispatch steady state must not touch the allocator"
    );
    // The same steady state, read back as a queryable metric: every
    // measured-phase event slot was a pool hit, never a miss or growth.
    assert_eq!(
        pool_after.pool_misses, pool_before.pool_misses,
        "steady state must be miss-free"
    );
    assert!(pool_after.pool_hits > pool_before.pool_hits + 100_000);
    assert_eq!(pool_after.pool_capacity, pool_before.pool_capacity);
}
