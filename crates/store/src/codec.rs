//! WAL record codec: checksummed, length-prefixed, schema-versioned frames.
//!
//! Every record is wrapped in a frame:
//!
//! ```text
//! frame   := magic(1B = 0xA7) | len(u32 LE, payload bytes) | crc32(u32 LE) | payload
//! payload := version(u16 LE) | tag(u8) | body
//! ```
//!
//! The CRC covers the payload only, so a torn write (truncated or garbled
//! frame at the end of the last segment) is always detectable: either the
//! header is short, the declared length overruns the segment, or the
//! checksum fails. A checksum *pass* followed by a body that fails to
//! decode is not a torn write — it is mid-log corruption or a codec bug,
//! and recovery refuses the log instead of guessing.

use lems_core::message::{Message, MessageId};
use lems_core::name::MailName;
use lems_sim::time::SimTime;

use crate::StoreError;

/// First byte of every frame.
pub const MAGIC: u8 = 0xA7;
/// Frame header bytes (magic + len + crc).
pub const HEADER_BYTES: usize = 9;
/// On-log schema version; bump on any record-format change.
pub const WAL_SCHEMA_VERSION: u16 = 1;
/// Upper bound on a single payload; longer declared lengths are treated as
/// tail garbage, not allocation requests.
pub const MAX_PAYLOAD_BYTES: u32 = 1 << 28;

/// One durable operation (or compaction-snapshot chunk) on the log.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// A message entered its recipient's mailbox.
    Deposit {
        /// The stored message.
        message: Message,
        /// Deposit time (drives expiry on replay).
        at: SimTime,
    },
    /// One message removed from a mailbox by id.
    Remove {
        /// Mailbox owner.
        owner: MailName,
        /// Removed message id.
        id: MessageId,
    },
    /// Expiry sweep over one mailbox.
    Expire {
        /// Mailbox owner.
        owner: MailName,
        /// Messages deposited before this instant were reclaimed.
        cutoff: SimTime,
    },
    /// Reliable retrieval reserved the whole mailbox.
    DrainReserve {
        /// Mailbox owner.
        owner: MailName,
    },
    /// Legacy destructive retrieval emptied the mailbox.
    DrainDestructive {
        /// Mailbox owner.
        owner: MailName,
    },
    /// Acknowledged ids left the reservation buffer.
    Release {
        /// Mailbox owner.
        owner: MailName,
        /// Acknowledged message ids.
        ids: Vec<MessageId>,
    },
    /// This server took custody of a message to forward onward.
    AcceptForward {
        /// The in-flight message.
        message: Message,
        /// Hop budget it carried.
        hops_left: u32,
    },
    /// A previously accepted forward was discharged.
    SettleForward {
        /// The settled message id.
        id: MessageId,
    },
    /// Compaction chunk: a slice of one mailbox's stored messages.
    SnapshotMailbox {
        /// Mailbox owner.
        owner: MailName,
        /// Stored messages with their deposit times.
        messages: Vec<(Message, SimTime)>,
    },
    /// Compaction record: one mailbox's ledger counters (written after its
    /// chunks so replay can overwrite the counter bumps chunk deposits made).
    SnapshotMeta {
        /// Mailbox owner.
        owner: MailName,
        /// Lifetime deposits.
        deposited: u64,
        /// Lifetime retrievals.
        retrieved: u64,
        /// Lifetime expirations.
        expired: u64,
    },
    /// Compaction chunk: a slice of one reservation buffer.
    SnapshotPending {
        /// Mailbox owner.
        owner: MailName,
        /// Reserved messages, oldest first.
        messages: Vec<Message>,
    },
    /// Compaction chunk: a slice of the unsettled-forward journal.
    SnapshotForwards {
        /// (message, hop budget) pairs in id order.
        entries: Vec<(Message, u32)>,
    },
    /// Compaction chunk: a slice of the deposit dedup ledger.
    SnapshotDeposited {
        /// Deposited message ids.
        ids: Vec<MessageId>,
    },
}

impl Record {
    fn tag(&self) -> u8 {
        match self {
            Record::Deposit { .. } => 1,
            Record::Remove { .. } => 2,
            Record::Expire { .. } => 3,
            Record::DrainReserve { .. } => 4,
            Record::DrainDestructive { .. } => 5,
            Record::Release { .. } => 6,
            Record::AcceptForward { .. } => 7,
            Record::SettleForward { .. } => 8,
            Record::SnapshotMailbox { .. } => 9,
            Record::SnapshotMeta { .. } => 10,
            Record::SnapshotPending { .. } => 11,
            Record::SnapshotForwards { .. } => 12,
            Record::SnapshotDeposited { .. } => 13,
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected), table-driven.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn time(&mut self, t: SimTime) {
        self.u64(t.as_ticks());
    }
    fn name(&mut self, n: &MailName) {
        self.str(&n.to_string());
    }
    fn message(&mut self, m: &Message) {
        self.u64(m.id.0);
        self.name(&m.from);
        self.name(&m.to);
        self.str(&m.subject);
        self.str(&m.body);
        self.time(m.submitted_at);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

type Decode<T> = Result<T, String>;

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Decode<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or("length overflow")?;
        if end > self.buf.len() {
            return Err(format!("payload truncated at byte {}", self.pos));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Decode<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Decode<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Decode<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Decode<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
    fn str(&mut self) -> Decode<String> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| "invalid utf-8 in string".to_string())
    }
    fn time(&mut self) -> Decode<SimTime> {
        Ok(SimTime::from_ticks(self.u64()?))
    }
    fn name(&mut self) -> Decode<MailName> {
        let s = self.str()?;
        s.parse::<MailName>()
            .map_err(|e| format!("bad mail name {s:?}: {e}"))
    }
    fn message(&mut self) -> Decode<Message> {
        let id = MessageId(self.u64()?);
        let from = self.name()?;
        let to = self.name()?;
        let subject = self.str()?;
        let body = self.str()?;
        let submitted_at = self.time()?;
        Ok(Message::new(id, from, to, subject, body, submitted_at))
    }
    fn done(&self) -> Decode<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after record body",
                self.buf.len() - self.pos
            ))
        }
    }
}

fn encode_body(record: &Record, w: &mut Writer) {
    match record {
        Record::Deposit { message, at } => {
            w.message(message);
            w.time(*at);
        }
        Record::Remove { owner, id } => {
            w.name(owner);
            w.u64(id.0);
        }
        Record::Expire { owner, cutoff } => {
            w.name(owner);
            w.time(*cutoff);
        }
        Record::DrainReserve { owner } | Record::DrainDestructive { owner } => {
            w.name(owner);
        }
        Record::Release { owner, ids } => {
            w.name(owner);
            w.u32(ids.len() as u32);
            for id in ids {
                w.u64(id.0);
            }
        }
        Record::AcceptForward { message, hops_left } => {
            w.message(message);
            w.u32(*hops_left);
        }
        Record::SettleForward { id } => {
            w.u64(id.0);
        }
        Record::SnapshotMailbox { owner, messages } => {
            w.name(owner);
            w.u32(messages.len() as u32);
            for (m, at) in messages {
                w.message(m);
                w.time(*at);
            }
        }
        Record::SnapshotMeta {
            owner,
            deposited,
            retrieved,
            expired,
        } => {
            w.name(owner);
            w.u64(*deposited);
            w.u64(*retrieved);
            w.u64(*expired);
        }
        Record::SnapshotPending { owner, messages } => {
            w.name(owner);
            w.u32(messages.len() as u32);
            for m in messages {
                w.message(m);
            }
        }
        Record::SnapshotForwards { entries } => {
            w.u32(entries.len() as u32);
            for (m, hops) in entries {
                w.message(m);
                w.u32(*hops);
            }
        }
        Record::SnapshotDeposited { ids } => {
            w.u32(ids.len() as u32);
            for id in ids {
                w.u64(id.0);
            }
        }
    }
}

fn decode_body(tag: u8, r: &mut Reader<'_>) -> Decode<Record> {
    let rec = match tag {
        1 => Record::Deposit {
            message: r.message()?,
            at: r.time()?,
        },
        2 => Record::Remove {
            owner: r.name()?,
            id: MessageId(r.u64()?),
        },
        3 => Record::Expire {
            owner: r.name()?,
            cutoff: r.time()?,
        },
        4 => Record::DrainReserve { owner: r.name()? },
        5 => Record::DrainDestructive { owner: r.name()? },
        6 => {
            let owner = r.name()?;
            let n = r.u32()? as usize;
            let mut ids = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                ids.push(MessageId(r.u64()?));
            }
            Record::Release { owner, ids }
        }
        7 => Record::AcceptForward {
            message: r.message()?,
            hops_left: r.u32()?,
        },
        8 => Record::SettleForward {
            id: MessageId(r.u64()?),
        },
        9 => {
            let owner = r.name()?;
            let n = r.u32()? as usize;
            let mut messages = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let m = r.message()?;
                let at = r.time()?;
                messages.push((m, at));
            }
            Record::SnapshotMailbox { owner, messages }
        }
        10 => Record::SnapshotMeta {
            owner: r.name()?,
            deposited: r.u64()?,
            retrieved: r.u64()?,
            expired: r.u64()?,
        },
        11 => {
            let owner = r.name()?;
            let n = r.u32()? as usize;
            let mut messages = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                messages.push(r.message()?);
            }
            Record::SnapshotPending { owner, messages }
        }
        12 => {
            let n = r.u32()? as usize;
            let mut entries = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let m = r.message()?;
                let hops = r.u32()?;
                entries.push((m, hops));
            }
            Record::SnapshotForwards { entries }
        }
        13 => {
            let n = r.u32()? as usize;
            let mut ids = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                ids.push(MessageId(r.u64()?));
            }
            Record::SnapshotDeposited { ids }
        }
        other => return Err(format!("unknown record tag {other}")),
    };
    r.done()?;
    Ok(rec)
}

/// Encodes `record` as one complete frame.
pub fn encode_frame(record: &Record) -> Vec<u8> {
    let mut w = Writer::new();
    w.u16(WAL_SCHEMA_VERSION);
    w.u8(record.tag());
    encode_body(record, &mut w);
    let payload = w.buf;
    let mut frame = Vec::with_capacity(HEADER_BYTES + payload.len());
    frame.push(MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Outcome of decoding the next frame from `bytes`.
#[derive(Debug)]
pub enum FrameOutcome {
    /// A complete, checksum-verified record; `consumed` bytes were used.
    Record {
        /// The decoded record (boxed: record bodies dwarf the other
        /// variants).
        record: Box<Record>,
        /// Frame size in bytes.
        consumed: usize,
    },
    /// `bytes` is empty: clean end of segment.
    End,
    /// The remaining bytes are not a complete valid frame. At the end of
    /// the *last* segment this is a torn write and the tail is discarded;
    /// anywhere else it is corruption and recovery must refuse the log.
    Tail {
        /// Why the tail failed to parse.
        detail: String,
    },
    /// Checksum passed but the payload is from a newer schema.
    Version {
        /// Version found on the log.
        found: u16,
    },
    /// Checksum passed but the body failed to decode — mid-log corruption
    /// or a codec bug, never tolerated.
    Corrupt {
        /// What failed.
        detail: String,
    },
}

/// Decodes the next frame from `bytes` (the unconsumed suffix of one
/// segment).
pub fn decode_frame(bytes: &[u8]) -> FrameOutcome {
    if bytes.is_empty() {
        return FrameOutcome::End;
    }
    if bytes.len() < HEADER_BYTES {
        return FrameOutcome::Tail {
            detail: format!("{}-byte tail shorter than frame header", bytes.len()),
        };
    }
    if bytes[0] != MAGIC {
        return FrameOutcome::Tail {
            detail: format!("bad frame magic 0x{:02X}", bytes[0]),
        };
    }
    let len = u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]);
    if len > MAX_PAYLOAD_BYTES {
        return FrameOutcome::Tail {
            detail: format!("implausible payload length {len}"),
        };
    }
    let want = HEADER_BYTES + len as usize;
    if bytes.len() < want {
        return FrameOutcome::Tail {
            detail: format!("frame declares {want} bytes, only {} present", bytes.len()),
        };
    }
    let crc = u32::from_le_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]);
    let payload = &bytes[HEADER_BYTES..want];
    if crc32(payload) != crc {
        return FrameOutcome::Tail {
            detail: "payload checksum mismatch".to_string(),
        };
    }
    let mut r = Reader::new(payload);
    let version = match r.u16() {
        Ok(v) => v,
        Err(detail) => return FrameOutcome::Corrupt { detail },
    };
    if version > WAL_SCHEMA_VERSION {
        return FrameOutcome::Version { found: version };
    }
    let tag = match r.u8() {
        Ok(t) => t,
        Err(detail) => return FrameOutcome::Corrupt { detail },
    };
    match decode_body(tag, &mut r) {
        Ok(record) => FrameOutcome::Record {
            record: Box::new(record),
            consumed: want,
        },
        Err(detail) => FrameOutcome::Corrupt { detail },
    }
}

/// Replays one segment's bytes, applying records via `apply`.
///
/// Returns the number of records applied and, when the segment ends in an
/// unparsable tail, the byte offset where the valid prefix ends. Callers
/// decide whether that tail is a tolerable torn write (last segment) or
/// fatal corruption.
pub fn replay_segment(
    bytes: &[u8],
    seq: u64,
    mut apply: impl FnMut(Record),
) -> Result<SegmentReplay, StoreError> {
    let mut off = 0usize;
    let mut records = 0u64;
    loop {
        match decode_frame(&bytes[off..]) {
            FrameOutcome::End => {
                return Ok(SegmentReplay {
                    records,
                    valid_len: off,
                    tail: None,
                })
            }
            FrameOutcome::Record { record, consumed } => {
                apply(*record);
                records += 1;
                off += consumed;
            }
            FrameOutcome::Tail { detail } => {
                return Ok(SegmentReplay {
                    records,
                    valid_len: off,
                    tail: Some(detail),
                })
            }
            FrameOutcome::Version { found } => {
                return Err(StoreError::SchemaVersion {
                    found,
                    supported: WAL_SCHEMA_VERSION,
                })
            }
            FrameOutcome::Corrupt { detail } => {
                return Err(StoreError::Corrupt {
                    segment: seq,
                    offset: off,
                    detail,
                })
            }
        }
    }
}

/// Result of replaying one segment.
#[derive(Debug)]
pub struct SegmentReplay {
    /// Records applied.
    pub records: u64,
    /// Bytes of valid frames from the start of the segment.
    pub valid_len: usize,
    /// Unparsable-tail diagnostic, when the segment did not end cleanly.
    pub tail: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(id: u64) -> Message {
        Message::new(
            MessageId(id),
            "east.h.a".parse().unwrap(),
            "west.h.b".parse().unwrap(),
            "subject",
            "body text",
            SimTime::from_units(1.5),
        )
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn every_record_kind_round_trips() {
        let owner: MailName = "west.h.b".parse().unwrap();
        let records = vec![
            Record::Deposit {
                message: msg(1),
                at: SimTime::from_units(2.0),
            },
            Record::Remove {
                owner: owner.clone(),
                id: MessageId(1),
            },
            Record::Expire {
                owner: owner.clone(),
                cutoff: SimTime::from_units(9.0),
            },
            Record::DrainReserve {
                owner: owner.clone(),
            },
            Record::DrainDestructive {
                owner: owner.clone(),
            },
            Record::Release {
                owner: owner.clone(),
                ids: vec![MessageId(1), MessageId(7)],
            },
            Record::AcceptForward {
                message: msg(2),
                hops_left: 14,
            },
            Record::SettleForward { id: MessageId(2) },
            Record::SnapshotMailbox {
                owner: owner.clone(),
                messages: vec![(msg(3), SimTime::from_units(4.0))],
            },
            Record::SnapshotMeta {
                owner: owner.clone(),
                deposited: 10,
                retrieved: 6,
                expired: 1,
            },
            Record::SnapshotPending {
                owner,
                messages: vec![msg(4), msg(5)],
            },
            Record::SnapshotForwards {
                entries: vec![(msg(6), 3)],
            },
            Record::SnapshotDeposited {
                ids: vec![MessageId(3), MessageId(4)],
            },
        ];
        for rec in records {
            let frame = encode_frame(&rec);
            match decode_frame(&frame) {
                FrameOutcome::Record { record, consumed } => {
                    assert_eq!(*record, rec);
                    assert_eq!(consumed, frame.len());
                }
                other => panic!("expected record, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_frame_is_a_tail_at_every_prefix() {
        let frame = encode_frame(&Record::Deposit {
            message: msg(9),
            at: SimTime::ZERO,
        });
        for cut in 1..frame.len() {
            match decode_frame(&frame[..cut]) {
                FrameOutcome::Tail { .. } => {}
                other => panic!("prefix of {cut} bytes should be a tail, got {other:?}"),
            }
        }
    }

    #[test]
    fn bit_flip_in_payload_fails_checksum() {
        let mut frame = encode_frame(&Record::SettleForward { id: MessageId(5) });
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        match decode_frame(&frame) {
            FrameOutcome::Tail { detail } => assert!(detail.contains("checksum")),
            other => panic!("expected checksum tail, got {other:?}"),
        }
    }

    #[test]
    fn future_schema_version_is_rejected() {
        let rec = Record::SettleForward { id: MessageId(5) };
        let mut frame = encode_frame(&rec);
        // Rewrite the payload version and re-checksum so only the version
        // check can object.
        let v = (WAL_SCHEMA_VERSION + 1).to_le_bytes();
        frame[HEADER_BYTES] = v[0];
        frame[HEADER_BYTES + 1] = v[1];
        let crc = crc32(&frame[HEADER_BYTES..]).to_le_bytes();
        frame[5..9].copy_from_slice(&crc);
        match decode_frame(&frame) {
            FrameOutcome::Version { found } => assert_eq!(found, WAL_SCHEMA_VERSION + 1),
            other => panic!("expected version rejection, got {other:?}"),
        }
    }
}
