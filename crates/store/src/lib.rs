//! # lems-store — log-structured mailbox persistence
//!
//! The write-ahead-log backend behind `lems-core`'s
//! [`MailStore`](lems_core::store::MailStore) trait, plus the
//! [`DurabilityConfig`] deployments use to pick a backend:
//!
//! * [`codec`] — checksummed, length-prefixed, schema-versioned record
//!   frames with torn-tail detection;
//! * [`segment`] — the segment device abstraction: a simulated disk with
//!   an explicit durable/volatile boundary ([`MemSegments`]) and a
//!   file-per-segment directory device ([`FileSegments`]);
//! * [`wal`] — [`WalStore`] itself: append-only logging, segment rotation,
//!   chunked compaction, crash/recovery with exact replay.
//!
//! The durability claim this crate exists to make falsifiable: with
//! [`SyncPolicy::PerRecord`], every acknowledged deposit survives a server
//! crash — including one that leaves a torn write on the device — because
//! the acknowledgement never leaves before the record is on durable media.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod segment;
pub mod wal;

use lems_core::store::{MailStore, MemStore};

pub use codec::{Record, WAL_SCHEMA_VERSION};
pub use segment::{FileSegments, MemSegments, SegmentIo};
pub use wal::{SyncPolicy, WalConfig, WalStore};

/// Why a store operation or recovery failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The segment device failed.
    Io(String),
    /// A checksum-valid region of the log failed to decode, or garbage
    /// appeared before the end of the final segment.
    Corrupt {
        /// Segment containing the bad bytes.
        segment: u64,
        /// Byte offset of the first bad frame.
        offset: usize,
        /// What failed.
        detail: String,
    },
    /// The log was written by a newer schema than this build supports.
    SchemaVersion {
        /// Version found on the log.
        found: u16,
        /// Newest version this build can replay.
        supported: u16,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "segment io error: {e}"),
            StoreError::Corrupt {
                segment,
                offset,
                detail,
            } => write!(
                f,
                "wal corruption in segment {segment} at byte {offset}: {detail}"
            ),
            StoreError::SchemaVersion { found, supported } => write!(
                f,
                "wal schema version {found} is newer than supported {supported}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// Which persistence backend a deployment's servers use.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum DurabilityConfig {
    /// Fiat-stable in-memory storage — the historical simulation model:
    /// a crash pauses the server and loses nothing.
    #[default]
    Ideal,
    /// RAM-only storage: a crash wipes mailboxes, reservations, and the
    /// forward journal. The counterexample backend.
    Volatile,
    /// Write-ahead-logged storage over a simulated segment device.
    Wal(WalConfig),
}

/// Builds a fresh backend for one server per `cfg`.
pub fn make_store(cfg: &DurabilityConfig) -> Box<dyn MailStore> {
    match cfg {
        DurabilityConfig::Ideal => Box::new(MemStore::stable()),
        DurabilityConfig::Volatile => Box::new(MemStore::volatile()),
        DurabilityConfig::Wal(wal_cfg) => {
            // A fresh in-memory device can always be opened.
            match WalStore::open(Box::new(MemSegments::new()), wal_cfg.clone()) {
                Ok(store) => Box::new(store),
                Err(_) => Box::new(MemStore::stable()),
            }
        }
    }
}
