//! Segment devices: where WAL bytes actually live.
//!
//! The WAL is a sequence of numbered segments. [`SegmentIo`] abstracts the
//! device so the same store logic runs against [`MemSegments`] (the
//! simulated disk with an explicit durable/volatile boundary and torn-tail
//! fault injection) and [`FileSegments`] (one file per segment in a
//! directory, for use outside the simulator).

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;

use crate::StoreError;

/// A numbered-segment append-only device.
pub trait SegmentIo: std::fmt::Debug {
    /// Creates (or truncates) segment `seq`.
    fn create(&mut self, seq: u64) -> Result<(), StoreError>;
    /// Appends bytes to segment `seq`.
    fn append(&mut self, seq: u64, bytes: &[u8]) -> Result<(), StoreError>;
    /// Forces segment `seq`'s appended bytes onto durable media (fsync).
    fn sync(&mut self, seq: u64) -> Result<(), StoreError>;
    /// Shrinks segment `seq` to `len` bytes (discarding a torn tail).
    fn truncate(&mut self, seq: u64, len: u64) -> Result<(), StoreError>;
    /// Deletes segment `seq`.
    fn delete(&mut self, seq: u64) -> Result<(), StoreError>;
    /// Existing segment numbers, ascending.
    fn list(&self) -> Vec<u64>;
    /// Reads segment `seq`'s current contents.
    fn read(&self, seq: u64) -> Result<Vec<u8>, StoreError>;
    /// Simulated power loss: un-synced bytes vanish; when
    /// `torn_tail_bytes > 0` the tail of the newest segment additionally
    /// keeps that many bytes of unparsable garbage past the durable
    /// boundary (the torn write that was in flight). Real devices ignore
    /// this — their crash is process death.
    fn crash(&mut self, torn_tail_bytes: usize);
}

#[derive(Clone, Debug, Default)]
struct MemSeg {
    bytes: Vec<u8>,
    durable: usize,
}

/// The simulated disk: per-segment byte buffers with a durable-length
/// watermark advanced only by [`SegmentIo::sync`].
#[derive(Clone, Debug, Default)]
pub struct MemSegments {
    segs: BTreeMap<u64, MemSeg>,
}

impl MemSegments {
    /// An empty device.
    pub fn new() -> Self {
        MemSegments::default()
    }

    /// Total bytes currently held (durable or not).
    pub fn total_bytes(&self) -> u64 {
        self.segs.values().map(|s| s.bytes.len() as u64).sum()
    }

    fn seg(&mut self, seq: u64) -> Result<&mut MemSeg, StoreError> {
        self.segs
            .get_mut(&seq)
            .ok_or_else(|| StoreError::Io(format!("segment {seq} does not exist")))
    }
}

impl SegmentIo for MemSegments {
    fn create(&mut self, seq: u64) -> Result<(), StoreError> {
        self.segs.insert(seq, MemSeg::default());
        Ok(())
    }

    fn append(&mut self, seq: u64, bytes: &[u8]) -> Result<(), StoreError> {
        self.seg(seq)?.bytes.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self, seq: u64) -> Result<(), StoreError> {
        let s = self.seg(seq)?;
        s.durable = s.bytes.len();
        Ok(())
    }

    fn truncate(&mut self, seq: u64, len: u64) -> Result<(), StoreError> {
        let s = self.seg(seq)?;
        s.bytes.truncate(len as usize);
        s.durable = s.durable.min(s.bytes.len());
        Ok(())
    }

    fn delete(&mut self, seq: u64) -> Result<(), StoreError> {
        self.segs.remove(&seq);
        Ok(())
    }

    fn list(&self) -> Vec<u64> {
        self.segs.keys().copied().collect()
    }

    fn read(&self, seq: u64) -> Result<Vec<u8>, StoreError> {
        self.segs
            .get(&seq)
            .map(|s| s.bytes.clone())
            .ok_or_else(|| StoreError::Io(format!("segment {seq} does not exist")))
    }

    fn crash(&mut self, torn_tail_bytes: usize) {
        let newest = self.segs.keys().next_back().copied();
        for (&seq, s) in &mut self.segs {
            let unsynced: Vec<u8> = s.bytes[s.durable.min(s.bytes.len())..].to_vec();
            s.bytes.truncate(s.durable);
            if torn_tail_bytes > 0 && Some(seq) == newest {
                // The write that was in flight when power failed: keep a
                // garbled fragment past the durable boundary. If real
                // un-synced bytes existed, tear them (a strict prefix);
                // otherwise fabricate a plausible-but-invalid frame head.
                if unsynced.is_empty() {
                    s.bytes.push(crate::codec::MAGIC);
                    s.bytes
                        .extend(std::iter::repeat_n(0x5A, torn_tail_bytes.saturating_sub(1)));
                } else {
                    let keep = torn_tail_bytes.min(unsynced.len().saturating_sub(1)).max(1);
                    s.bytes
                        .extend_from_slice(&unsynced[..keep.min(unsynced.len())]);
                }
            }
        }
    }
}

/// One file per segment under a directory — the non-simulated device.
///
/// Named `wal-<seq>.seg`. Handles are opened per call; this prioritises
/// simplicity over throughput (the simulator never uses this device).
#[derive(Debug)]
pub struct FileSegments {
    dir: PathBuf,
}

impl FileSegments {
    /// Opens (creating if needed) a segment directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| StoreError::Io(e.to_string()))?;
        Ok(FileSegments { dir })
    }

    fn path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("wal-{seq:08}.seg"))
    }
}

impl SegmentIo for FileSegments {
    fn create(&mut self, seq: u64) -> Result<(), StoreError> {
        std::fs::File::create(self.path(seq))
            .map(|_| ())
            .map_err(|e| StoreError::Io(e.to_string()))
    }

    fn append(&mut self, seq: u64, bytes: &[u8]) -> Result<(), StoreError> {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(self.path(seq))
            .map_err(|e| StoreError::Io(e.to_string()))?;
        f.write_all(bytes)
            .map_err(|e| StoreError::Io(e.to_string()))
    }

    fn sync(&mut self, seq: u64) -> Result<(), StoreError> {
        std::fs::File::open(self.path(seq))
            .and_then(|f| f.sync_all())
            .map_err(|e| StoreError::Io(e.to_string()))
    }

    fn truncate(&mut self, seq: u64, len: u64) -> Result<(), StoreError> {
        std::fs::OpenOptions::new()
            .write(true)
            .open(self.path(seq))
            .and_then(|f| f.set_len(len))
            .map_err(|e| StoreError::Io(e.to_string()))
    }

    fn delete(&mut self, seq: u64) -> Result<(), StoreError> {
        std::fs::remove_file(self.path(seq)).map_err(|e| StoreError::Io(e.to_string()))
    }

    fn list(&self) -> Vec<u64> {
        let mut seqs = Vec::new();
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return seqs;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(num) = name
                .strip_prefix("wal-")
                .and_then(|rest| rest.strip_suffix(".seg"))
            {
                if let Ok(seq) = num.parse::<u64>() {
                    seqs.push(seq);
                }
            }
        }
        seqs.sort_unstable();
        seqs
    }

    fn read(&self, seq: u64) -> Result<Vec<u8>, StoreError> {
        std::fs::read(self.path(seq)).map_err(|e| StoreError::Io(e.to_string()))
    }

    fn crash(&mut self, _torn_tail_bytes: usize) {
        // A real device's crash is process death; nothing to simulate.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_crash_discards_unsynced_suffix() {
        let mut io = MemSegments::new();
        io.create(0).unwrap();
        io.append(0, b"durable!").unwrap();
        io.sync(0).unwrap();
        io.append(0, b"volatile").unwrap();
        io.crash(0);
        assert_eq!(io.read(0).unwrap(), b"durable!");
    }

    #[test]
    fn mem_crash_with_torn_tail_leaves_garbage_past_durable_prefix() {
        let mut io = MemSegments::new();
        io.create(0).unwrap();
        io.append(0, b"durable!").unwrap();
        io.sync(0).unwrap();
        io.crash(5);
        let bytes = io.read(0).unwrap();
        assert_eq!(&bytes[..8], b"durable!");
        assert_eq!(bytes.len(), 8 + 5);
        // The tail must never parse as a frame.
        assert!(matches!(
            crate::codec::decode_frame(&bytes[8..]),
            crate::codec::FrameOutcome::Tail { .. }
        ));
    }

    #[test]
    fn mem_torn_tail_tears_real_unsynced_bytes_when_present() {
        let frame = crate::codec::encode_frame(&crate::codec::Record::SettleForward {
            id: lems_core::message::MessageId(1),
        });
        let mut io = MemSegments::new();
        io.create(0).unwrap();
        io.append(0, &frame).unwrap();
        io.sync(0).unwrap();
        io.append(0, &frame).unwrap(); // un-synced copy
        io.crash(4);
        let bytes = io.read(0).unwrap();
        assert!(bytes.len() > frame.len());
        assert!(bytes.len() < 2 * frame.len());
        // Valid prefix still decodes; the torn copy does not.
        assert!(matches!(
            crate::codec::decode_frame(&bytes),
            crate::codec::FrameOutcome::Record { .. }
        ));
    }
}
