//! [`WalStore`]: the log-structured [`MailStore`] backend.
//!
//! Every durable-state mutation is encoded as one [`Record`], framed and
//! checksummed, appended to the active segment, and *then* applied to the
//! in-memory [`StoreState`] through [`apply`] — the same function recovery
//! uses, so a replayed log reconstructs the exact state the live store
//! held (recovery is exact, not approximate).
//!
//! Segments rotate at a configurable size; when more than
//! [`WalConfig::max_segments`] accumulate, compaction writes the live
//! state into the fresh segment as *chunked* snapshot records (at most
//! [`WalConfig::chunk_messages`] messages per record, so a million-message
//! mailbox becomes many bounded records, never one giant rewrite) and
//! deletes the older segments.

use std::collections::BTreeMap;

use lems_core::mailbox::Mailbox;
use lems_core::message::{Message, MessageId};
use lems_core::name::MailName;
use lems_core::store::{MailStore, RecoveryReport, StoreMetrics, StoreState};
use lems_sim::time::SimTime;

use crate::codec::{self, Record};
use crate::segment::SegmentIo;
use crate::StoreError;

/// When appended records reach durable media.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Every record is synced before the operation returns — an
    /// acknowledgement can never outrun its log entry, so acked deposits
    /// always survive a crash.
    PerRecord,
    /// Records sync only at segment seal/compaction (or an explicit
    /// persist). Fast, and wrong: a crash loses the un-synced suffix.
    /// Exists to demonstrate that the fsync in `PerRecord` is what buys
    /// durability.
    Manual,
}

/// Tuning and fault-injection knobs for [`WalStore`].
#[derive(Clone, Debug, PartialEq)]
pub struct WalConfig {
    /// Rotate the active segment once it holds this many bytes of
    /// operation records.
    pub segment_bytes: u64,
    /// Maximum messages (or ids/entries) per compaction-snapshot record.
    pub chunk_messages: usize,
    /// Compact once more than this many segments exist.
    pub max_segments: u64,
    /// Sync policy; see [`SyncPolicy`].
    pub sync: SyncPolicy,
    /// On crash, leave this many bytes of torn-write garbage past the
    /// durable boundary of the newest segment (0 = clean truncation).
    pub torn_tail_bytes: usize,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_bytes: 64 * 1024,
            chunk_messages: 1024,
            max_segments: 4,
            sync: SyncPolicy::PerRecord,
            torn_tail_bytes: 0,
        }
    }
}

/// Outcome of applying one record to a [`StoreState`].
pub enum Applied {
    /// Nothing to report.
    None,
    /// Deposit outcome: `true` when newly stored.
    Deposited(bool),
    /// Messages returned by a drain.
    Drained(Vec<Message>),
    /// Reserved messages released.
    Released(u64),
    /// Message removed by id, if found.
    Removed(Option<Message>),
    /// Messages reclaimed by expiry.
    Expired(usize),
}

/// Applies one record to `state`. Live operations and recovery replay both
/// funnel through here — the single definition of record semantics.
pub fn apply(state: &mut StoreState, record: Record) -> Applied {
    match record {
        Record::Deposit { message, at } => Applied::Deposited(state.deposit(message, at)),
        Record::Remove { owner, id } => Applied::Removed(state.remove(&owner, id)),
        Record::Expire { owner, cutoff } => {
            Applied::Expired(state.expire_older_than(&owner, cutoff))
        }
        Record::DrainReserve { owner } => Applied::Drained(state.drain_reserve(&owner)),
        Record::DrainDestructive { owner } => Applied::Drained(state.drain_destructive(&owner)),
        Record::Release { owner, ids } => Applied::Released(state.release_drained(&owner, &ids)),
        Record::AcceptForward { message, hops_left } => {
            state.accept_forward(&message, hops_left);
            Applied::None
        }
        Record::SettleForward { id } => {
            state.settle_forward(id);
            Applied::None
        }
        Record::SnapshotMailbox { owner, messages } => {
            state.restore_snapshot_chunk(owner, messages);
            Applied::None
        }
        Record::SnapshotMeta {
            owner,
            deposited,
            retrieved,
            expired,
        } => {
            state.restore_snapshot_ledger(owner, deposited, retrieved, expired);
            Applied::None
        }
        Record::SnapshotPending { owner, messages } => {
            state.pending.entry(owner).or_default().extend(messages);
            Applied::None
        }
        Record::SnapshotForwards { entries } => {
            for (m, hops) in entries {
                state.forwards.insert(m.id, (m, hops));
            }
            Applied::None
        }
        Record::SnapshotDeposited { ids } => {
            state.deposited.extend(ids);
            Applied::None
        }
    }
}

/// What one full-log replay found.
#[derive(Debug, Default)]
struct Replay {
    state: StoreState,
    records: u64,
    /// Segment bytes read and scanned by this replay.
    bytes: u64,
    torn_bytes: u64,
    segments: u64,
    /// (segment, valid prefix length) to truncate away a torn tail.
    trim: Option<(u64, u64)>,
}

/// The log-structured backend.
#[derive(Debug)]
pub struct WalStore {
    cfg: WalConfig,
    io: Box<dyn SegmentIo>,
    state: StoreState,
    active_seq: u64,
    /// Operation-record bytes in the active segment (snapshot records from
    /// compaction are excluded so a big snapshot does not instantly
    /// re-trigger rotation).
    active_op_bytes: u64,
    io_errors: u64,
    records_appended: u64,
    compactions: u64,
    /// Payload bytes appended by live operations (frames, not snapshots).
    appended_bytes: u64,
    /// Durability barriers issued (`SegmentIo::sync` calls).
    fsyncs: u64,
    /// Segment rotations performed.
    rotations: u64,
    /// Snapshot records written across all compactions.
    compaction_chunks: u64,
    /// Records replayed by recovery and persist/restore scans (lifetime).
    replayed_records: u64,
    /// Bytes scanned by recovery and persist/restore scans (lifetime).
    replayed_bytes: u64,
    pre_crash_storage: Option<u64>,
    last_recovery: Option<RecoveryReport>,
}

impl WalStore {
    /// Opens a store over `io`, replaying whatever log it already holds.
    ///
    /// A fresh device starts empty at segment 0; a device with history
    /// recovers exactly like a post-crash restart (including torn-tail
    /// trimming), and the result is recorded in
    /// [`WalStore::last_recovery`].
    pub fn open(io: Box<dyn SegmentIo>, cfg: WalConfig) -> Result<Self, StoreError> {
        let mut store = WalStore {
            cfg,
            io,
            state: StoreState::default(),
            active_seq: 0,
            active_op_bytes: 0,
            io_errors: 0,
            records_appended: 0,
            compactions: 0,
            appended_bytes: 0,
            fsyncs: 0,
            rotations: 0,
            compaction_chunks: 0,
            replayed_records: 0,
            replayed_bytes: 0,
            pre_crash_storage: None,
            last_recovery: None,
        };
        if store.io.list().is_empty() {
            store.io.create(0)?;
        } else {
            let report = store.reopen()?;
            store.last_recovery = Some(report);
        }
        Ok(store)
    }

    /// The report from the replay [`WalStore::open`] performed, if any.
    pub fn last_recovery(&self) -> Option<&RecoveryReport> {
        self.last_recovery.as_ref()
    }

    /// Records appended over this store's lifetime (excluding snapshots).
    pub fn records_appended(&self) -> u64 {
        self.records_appended
    }

    /// Compactions performed so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Live segment count.
    pub fn segments(&self) -> u64 {
        self.io.list().len() as u64
    }

    /// Read-only view of the full durable state.
    pub fn state(&self) -> &StoreState {
        &self.state
    }

    /// Raw bytes of one segment (tests and forensic tooling).
    ///
    /// # Errors
    /// When the segment does not exist or the device fails.
    pub fn read_segment(&self, seq: u64) -> Result<Vec<u8>, StoreError> {
        self.io.read(seq)
    }

    fn replay(&self) -> Result<Replay, StoreError> {
        let seqs = self.io.list();
        let mut out = Replay {
            segments: seqs.len() as u64,
            ..Replay::default()
        };
        let last = seqs.last().copied();
        for seq in seqs {
            let bytes = self.io.read(seq)?;
            let seg = codec::replay_segment(&bytes, seq, |rec| {
                apply(&mut out.state, rec);
            })?;
            out.records += seg.records;
            out.bytes += bytes.len() as u64;
            if let Some(detail) = seg.tail {
                if Some(seq) != last {
                    return Err(StoreError::Corrupt {
                        segment: seq,
                        offset: seg.valid_len,
                        detail,
                    });
                }
                out.torn_bytes = (bytes.len() - seg.valid_len) as u64;
                out.trim = Some((seq, seg.valid_len as u64));
            }
        }
        Ok(out)
    }

    /// Replays the device into a fresh state and adopts it, trimming any
    /// torn tail so new appends continue from the valid prefix.
    fn reopen(&mut self) -> Result<RecoveryReport, StoreError> {
        let replay = self.replay()?;
        self.replayed_records += replay.records;
        self.replayed_bytes += replay.bytes;
        if let Some((seq, len)) = replay.trim {
            self.io.truncate(seq, len)?;
            self.io.sync(seq)?;
            self.fsyncs += 1;
        }
        self.active_seq = self.io.list().last().copied().unwrap_or(0);
        self.active_op_bytes = 0;
        let lost = self
            .pre_crash_storage
            .take()
            .map_or(0, |pre| pre.saturating_sub(replay.state.storage_messages()));
        let report = RecoveryReport {
            backend: "wal",
            replayed_records: replay.records,
            recovered_messages: replay
                .state
                .mailboxes
                .values()
                .map(|m| m.len() as u64)
                .sum(),
            recovered_pending: replay.state.pending.values().map(|p| p.len() as u64).sum(),
            recovered_forwards: replay.state.forwards.len() as u64,
            lost_messages: lost,
            torn_bytes: replay.torn_bytes,
            segments: replay.segments,
            unsettled: replay
                .state
                .forwards
                .values()
                .map(|(m, h)| (m.clone(), *h))
                .collect(),
        };
        self.state = replay.state;
        Ok(report)
    }

    fn note_io(&mut self, r: &Result<(), StoreError>) {
        if r.is_err() {
            self.io_errors += 1;
        }
    }

    fn append_frame(&mut self, frame: &[u8]) {
        let len = frame.len() as u64;
        let r = self.io.append(self.active_seq, frame);
        self.note_io(&r);
        if self.cfg.sync == SyncPolicy::PerRecord {
            let r = self.io.sync(self.active_seq);
            self.note_io(&r);
            self.fsyncs += 1;
        }
        self.records_appended += 1;
        self.appended_bytes += len;
        self.active_op_bytes += len;
        if self.active_op_bytes >= self.cfg.segment_bytes {
            self.rotate();
        }
    }

    fn rotate(&mut self) {
        let r = self.io.sync(self.active_seq);
        self.note_io(&r);
        self.fsyncs += 1;
        self.rotations += 1;
        self.active_seq += 1;
        let r = self.io.create(self.active_seq);
        self.note_io(&r);
        self.active_op_bytes = 0;
        if self.segments() > self.cfg.max_segments {
            self.compact();
        }
    }

    /// Writes the live state into the (fresh) active segment as chunked
    /// snapshot records, then drops every older segment.
    fn compact(&mut self) {
        let chunk = self.cfg.chunk_messages.max(1);
        let mut records: Vec<Record> = Vec::new();
        for (owner, mb) in &self.state.mailboxes {
            for slice in mb.peek().chunks(chunk).filter(|slice| !slice.is_empty()) {
                records.push(Record::SnapshotMailbox {
                    owner: owner.clone(),
                    messages: slice
                        .iter()
                        .map(|s| (s.message.clone(), s.deposited_at))
                        .collect(),
                });
            }
            records.push(Record::SnapshotMeta {
                owner: owner.clone(),
                deposited: mb.deposited_total(),
                retrieved: mb.retrieved_total(),
                expired: mb.expired_total(),
            });
        }
        for (owner, pending) in &self.state.pending {
            if pending.is_empty() {
                // A drained-but-fully-acked buffer is still part of the
                // state shape; replay must recreate the (empty) entry.
                records.push(Record::SnapshotPending {
                    owner: owner.clone(),
                    messages: Vec::new(),
                });
            }
            for slice in pending.chunks(chunk) {
                records.push(Record::SnapshotPending {
                    owner: owner.clone(),
                    messages: slice.to_vec(),
                });
            }
        }
        let forwards: Vec<(Message, u32)> = self
            .state
            .forwards
            .values()
            .map(|(m, h)| (m.clone(), *h))
            .collect();
        for slice in forwards.chunks(chunk) {
            records.push(Record::SnapshotForwards {
                entries: slice.to_vec(),
            });
        }
        let ids: Vec<MessageId> = self.state.deposited.iter().copied().collect();
        for slice in ids.chunks(chunk) {
            records.push(Record::SnapshotDeposited {
                ids: slice.to_vec(),
            });
        }
        self.compaction_chunks += records.len() as u64;
        for rec in &records {
            let frame = codec::encode_frame(rec);
            let r = self.io.append(self.active_seq, &frame);
            self.note_io(&r);
        }
        let r = self.io.sync(self.active_seq);
        self.note_io(&r);
        self.fsyncs += 1;
        let old: Vec<u64> = self
            .io
            .list()
            .into_iter()
            .filter(|&s| s < self.active_seq)
            .collect();
        for seq in old {
            let r = self.io.delete(seq);
            self.note_io(&r);
        }
        self.compactions += 1;
    }

    /// Encodes, applies, then appends one record.
    ///
    /// Apply happens before the append so that a rotation/compaction
    /// triggered by this very append snapshots a state that already
    /// includes the record — otherwise compaction would delete the
    /// segment holding the record's frame while the snapshot predates
    /// its effect, silently losing the operation.
    fn log_and_apply(&mut self, record: Record) -> Applied {
        let frame = codec::encode_frame(&record);
        let applied = apply(&mut self.state, record);
        self.append_frame(&frame);
        applied
    }
}

impl MailStore for WalStore {
    fn backend(&self) -> &'static str {
        "wal"
    }

    fn deposit(&mut self, message: Message, now: SimTime) -> bool {
        if self.state.is_deposited(message.id) {
            return false;
        }
        matches!(
            self.log_and_apply(Record::Deposit { message, at: now }),
            Applied::Deposited(true)
        )
    }

    fn is_deposited(&self, id: MessageId) -> bool {
        self.state.is_deposited(id)
    }

    fn drain_reserve(&mut self, owner: &MailName) -> Vec<Message> {
        match self.log_and_apply(Record::DrainReserve {
            owner: owner.clone(),
        }) {
            Applied::Drained(v) => v,
            _ => Vec::new(),
        }
    }

    fn drain_destructive(&mut self, owner: &MailName) -> Vec<Message> {
        match self.log_and_apply(Record::DrainDestructive {
            owner: owner.clone(),
        }) {
            Applied::Drained(v) => v,
            _ => Vec::new(),
        }
    }

    fn release_drained(&mut self, owner: &MailName, ids: &[MessageId]) -> u64 {
        match self.log_and_apply(Record::Release {
            owner: owner.clone(),
            ids: ids.to_vec(),
        }) {
            Applied::Released(n) => n,
            _ => 0,
        }
    }

    fn remove(&mut self, owner: &MailName, id: MessageId) -> Option<Message> {
        match self.log_and_apply(Record::Remove {
            owner: owner.clone(),
            id,
        }) {
            Applied::Removed(m) => m,
            _ => None,
        }
    }

    fn expire_older_than(&mut self, owner: &MailName, cutoff: SimTime) -> usize {
        match self.log_and_apply(Record::Expire {
            owner: owner.clone(),
            cutoff,
        }) {
            Applied::Expired(n) => n,
            _ => 0,
        }
    }

    fn accept_forward(&mut self, message: &Message, hops_left: u32) {
        if self.state.forwards.contains_key(&message.id) {
            return;
        }
        self.log_and_apply(Record::AcceptForward {
            message: message.clone(),
            hops_left,
        });
    }

    fn settle_forward(&mut self, id: MessageId) {
        if !self.state.forwards.contains_key(&id) {
            return;
        }
        self.log_and_apply(Record::SettleForward { id });
    }

    fn mailboxes(&self) -> &BTreeMap<MailName, Mailbox> {
        &self.state.mailboxes
    }

    fn pending_drain(&self) -> &BTreeMap<MailName, Vec<Message>> {
        &self.state.pending
    }

    fn crash(&mut self, _now: SimTime) {
        // Process memory dies; the device keeps only its durable prefix
        // (plus any injected torn tail).
        self.pre_crash_storage = Some(self.state.storage_messages());
        self.io.crash(self.cfg.torn_tail_bytes);
        self.state = StoreState::default();
    }

    fn recover(&mut self, _now: SimTime) -> RecoveryReport {
        match self.reopen() {
            Ok(report) => report,
            Err(_) => {
                // An unreplayable log is a hard fault; surface it as an
                // empty recovery with the error counted rather than
                // panicking inside an event handler.
                self.io_errors += 1;
                RecoveryReport {
                    backend: "wal",
                    lost_messages: self.pre_crash_storage.take().unwrap_or(0),
                    ..RecoveryReport::default()
                }
            }
        }
    }

    fn persist_restore(&mut self) -> Option<RecoveryReport> {
        let r = self.io.sync(self.active_seq);
        self.note_io(&r);
        self.fsyncs += 1;
        match self.reopen() {
            Ok(report) => Some(report),
            Err(_) => {
                self.io_errors += 1;
                None
            }
        }
    }

    fn wal_bytes(&self) -> u64 {
        self.io
            .list()
            .into_iter()
            .filter_map(|seq| self.io.read(seq).ok())
            .map(|b| b.len() as u64)
            .sum()
    }

    fn io_errors(&self) -> u64 {
        self.io_errors
    }

    fn store_metrics(&self) -> StoreMetrics {
        StoreMetrics {
            appended_records: self.records_appended,
            appended_bytes: self.appended_bytes,
            fsyncs: self.fsyncs,
            rotations: self.rotations,
            compactions: self.compactions,
            compaction_chunks: self.compaction_chunks,
            replayed_records: self.replayed_records,
            replayed_bytes: self.replayed_bytes,
            io_errors: self.io_errors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::MemSegments;
    use lems_core::message::MessageIdGen;

    fn mk(cfg: WalConfig) -> WalStore {
        WalStore::open(Box::new(MemSegments::new()), cfg).unwrap()
    }

    fn msg(g: &mut MessageIdGen, to: &str) -> Message {
        Message::new(
            g.next_id(),
            "east.h.sender".parse().unwrap(),
            to.parse().unwrap(),
            "subj",
            "body",
            SimTime::ZERO,
        )
    }

    #[test]
    fn crash_recover_preserves_synced_deposits() {
        let mut g = MessageIdGen::new();
        let mut s = mk(WalConfig::default());
        for _ in 0..10 {
            s.deposit(msg(&mut g, "east.h.u"), SimTime::from_units(1.0));
        }
        s.crash(SimTime::from_units(2.0));
        assert_eq!(s.state().storage_messages(), 0);
        let report = s.recover(SimTime::from_units(3.0));
        assert_eq!(report.recovered_messages, 10);
        assert_eq!(report.lost_messages, 0);
        assert_eq!(report.replayed_records, 10);
        // Dedup ledger survived too: re-deposit is refused.
        assert!(s.is_deposited(MessageId(0)));
    }

    #[test]
    fn manual_sync_loses_unsynced_suffix() {
        let mut g = MessageIdGen::new();
        let mut s = mk(WalConfig {
            sync: SyncPolicy::Manual,
            ..WalConfig::default()
        });
        for _ in 0..10 {
            s.deposit(msg(&mut g, "east.h.u"), SimTime::from_units(1.0));
        }
        s.crash(SimTime::from_units(2.0));
        let report = s.recover(SimTime::from_units(3.0));
        assert_eq!(report.recovered_messages, 0);
        assert_eq!(report.lost_messages, 10);
    }

    #[test]
    fn torn_tail_is_detected_and_discarded() {
        let mut g = MessageIdGen::new();
        let mut s = mk(WalConfig {
            torn_tail_bytes: 17,
            ..WalConfig::default()
        });
        for _ in 0..5 {
            s.deposit(msg(&mut g, "east.h.u"), SimTime::from_units(1.0));
        }
        s.crash(SimTime::from_units(2.0));
        let report = s.recover(SimTime::from_units(3.0));
        assert_eq!(report.recovered_messages, 5);
        assert_eq!(report.torn_bytes, 17);
        assert_eq!(report.lost_messages, 0);
        // The trimmed log keeps working: deposit, crash, recover again.
        s.deposit(msg(&mut g, "east.h.u"), SimTime::from_units(4.0));
        s.crash(SimTime::from_units(5.0));
        let report = s.recover(SimTime::from_units(6.0));
        assert_eq!(report.recovered_messages, 6);
    }

    #[test]
    fn rotation_and_compaction_preserve_state_and_bound_segments() {
        let mut g = MessageIdGen::new();
        let cfg = WalConfig {
            segment_bytes: 512,
            chunk_messages: 3,
            max_segments: 3,
            ..WalConfig::default()
        };
        let mut s = mk(cfg);
        for i in 0..200 {
            s.deposit(msg(&mut g, "east.h.u"), SimTime::from_units(i as f64));
        }
        // Retrieval traffic so the snapshot covers pending + ledger too.
        let owner: MailName = "east.h.u".parse().unwrap();
        let reserved = s.drain_reserve(&owner);
        let keep: Vec<MessageId> = reserved.iter().take(50).map(|m| m.id).collect();
        s.release_drained(&owner, &keep);
        assert!(
            s.compactions() > 0,
            "small segments must trigger compaction"
        );
        assert!(s.segments() <= 4);
        let before = s.state().clone();
        s.crash(SimTime::from_units(999.0));
        let report = s.recover(SimTime::from_units(1000.0));
        assert_eq!(report.lost_messages, 0);
        assert_eq!(s.state(), &before, "replay must reconstruct exact state");
    }

    #[test]
    fn unsettled_forwards_survive_and_settle_once() {
        let mut g = MessageIdGen::new();
        let mut s = mk(WalConfig::default());
        let m = msg(&mut g, "west.h.v");
        s.accept_forward(&m, 7);
        s.accept_forward(&m, 3); // idempotent: keeps the original budget
        s.crash(SimTime::from_units(1.0));
        let report = s.recover(SimTime::from_units(2.0));
        assert_eq!(report.recovered_forwards, 1);
        assert_eq!(report.unsettled, vec![(m.clone(), 7)]);
        s.settle_forward(m.id);
        s.crash(SimTime::from_units(3.0));
        let report = s.recover(SimTime::from_units(4.0));
        assert_eq!(report.recovered_forwards, 0);
    }

    #[test]
    fn store_metrics_track_appends_rotations_and_recovery_work() {
        let mut g = MessageIdGen::new();
        let mut s = mk(WalConfig {
            segment_bytes: 512,
            chunk_messages: 3,
            max_segments: 3,
            ..WalConfig::default()
        });
        assert_eq!(s.store_metrics(), StoreMetrics::default());
        for i in 0..200 {
            s.deposit(msg(&mut g, "east.h.u"), SimTime::from_units(i as f64));
        }
        let m = s.store_metrics();
        assert_eq!(m.appended_records, 200);
        assert!(m.appended_bytes > 0, "framed payload bytes must be counted");
        // PerRecord sync: at least one barrier per append, plus the ones
        // rotation and compaction issue on top.
        assert!(m.fsyncs >= m.appended_records + m.rotations + m.compactions);
        assert!(m.rotations > 0, "512-byte segments must rotate");
        assert!(m.compactions > 0 && m.compaction_chunks >= m.compactions);
        assert_eq!(m.replayed_records, 0, "no recovery has happened yet");
        assert_eq!(m.io_errors, 0);

        s.crash(SimTime::from_units(999.0));
        s.recover(SimTime::from_units(1000.0));
        let after = s.store_metrics();
        assert!(
            after.replayed_records > 0,
            "recovery must count replay work"
        );
        assert!(
            after.replayed_bytes > 0,
            "recovery must count bytes scanned"
        );
        // Live-operation counters survive the crash (they describe the
        // store object's lifetime, not the recovered state).
        assert_eq!(after.appended_records, m.appended_records);
    }

    #[test]
    fn persist_restore_round_trip_is_exact() {
        let mut g = MessageIdGen::new();
        let mut s = mk(WalConfig {
            segment_bytes: 256,
            chunk_messages: 4,
            max_segments: 2,
            sync: SyncPolicy::Manual,
            ..WalConfig::default()
        });
        for i in 0..60 {
            s.deposit(msg(&mut g, "east.h.u"), SimTime::from_units(i as f64));
        }
        let owner: MailName = "east.h.u".parse().unwrap();
        s.drain_reserve(&owner);
        let before = s.state().clone();
        let report = s.persist_restore().expect("wal supports persist/restore");
        assert_eq!(s.state(), &before);
        assert_eq!(report.lost_messages, 0);
    }
}
