//! Property tests for the WAL codec and recovery (ISSUE 7 satellite):
//! arbitrary deposit/drain/remove/expire/forward sequences round-trip
//! through append → crash-at-every-byte-prefix → recover, and the
//! recovered state always equals an in-memory oracle.

use lems_core::message::{Message, MessageId, MessageIdGen};
use lems_core::name::MailName;
use lems_core::store::{MailStore, StoreState};
use lems_sim::time::SimTime;
use lems_store::codec;
use lems_store::segment::MemSegments;
use lems_store::wal::{apply, SyncPolicy, WalConfig, WalStore};
use proptest::prelude::*;

const USERS: &[&str] = &[
    "east.vax1.alice",
    "east.vax1.bob",
    "west.sun1.carol",
    "west.sun1.dave",
    "north.pc1.erin",
    "south.pc2.frank",
];

fn user(idx: u64) -> MailName {
    USERS[(idx as usize) % USERS.len()].parse().unwrap()
}

fn message(gen: &mut MessageIdGen, to: u64, at: u64) -> Message {
    Message::new(
        gen.next_id(),
        "east.vax1.postmaster".parse().unwrap(),
        user(to),
        format!("subject-{to}"),
        "property test body",
        SimTime::from_units(at as f64),
    )
}

/// One scripted operation, decoded from a `(op, user, val)` triple.
fn run_op(
    store: &mut dyn MailStore,
    oracle: &mut StoreState,
    gen: &mut MessageIdGen,
    op: u8,
    who: u64,
    val: u64,
) {
    let now = SimTime::from_units(val as f64);
    match op {
        // Deposits dominate the mix, like real traffic.
        0..=2 => {
            let m = message(gen, who, val);
            store.deposit(m.clone(), now);
            oracle.deposit(m, now);
        }
        3 => {
            let owner = user(who);
            let a = store.drain_reserve(&owner);
            let b = oracle.drain_reserve(&owner);
            assert_eq!(a, b, "live drain must match oracle");
        }
        4 => {
            // Release a handful of plausible ids (some reserved, some not).
            let owner = user(who);
            let ids: Vec<MessageId> = (val..val + 3).map(MessageId).collect();
            assert_eq!(
                store.release_drained(&owner, &ids),
                oracle.release_drained(&owner, &ids)
            );
        }
        5 => {
            let owner = user(who);
            assert_eq!(
                store.remove(&owner, MessageId(val)),
                oracle.remove(&owner, MessageId(val))
            );
        }
        6 => {
            let owner = user(who);
            assert_eq!(
                store.expire_older_than(&owner, now),
                oracle.expire_older_than(&owner, now)
            );
        }
        7 => {
            let m = message(gen, who, val);
            store.accept_forward(&m, (val % 16) as u32);
            oracle.accept_forward(&m, (val % 16) as u32);
        }
        _ => {
            store.settle_forward(MessageId(val));
            oracle.settle_forward(MessageId(val));
        }
    }
}

proptest! {
    /// Single-segment WAL: after any operation mix, recovery from a crash
    /// at *every byte prefix* of the log yields exactly the state after
    /// the complete records in that prefix — and the full log yields the
    /// oracle.
    #[test]
    fn crash_at_every_prefix_recovers_record_boundary_state(
        ops in proptest::collection::vec((0u8..9, 0u64..6, 0u64..40), 1..24)
    ) {
        let cfg = WalConfig {
            segment_bytes: u64::MAX, // keep one segment so prefixes are meaningful
            sync: SyncPolicy::PerRecord,
            ..WalConfig::default()
        };
        let mut store = WalStore::open(Box::new(MemSegments::new()), cfg).unwrap();
        let mut oracle = StoreState::default();
        let mut gen = MessageIdGen::new();
        for (op, who, val) in &ops {
            run_op(&mut store, &mut oracle, &mut gen, *op, *who, *val);
        }
        prop_assert_eq!(store.state(), &oracle);

        // Reconstruct the log bytes and the state after each record.
        let bytes = store.read_segment(0).unwrap();
        let mut snapshots: Vec<StoreState> = vec![StoreState::default()];
        let replayed = codec::replay_segment(&bytes, 0, |rec| {
            let mut next = snapshots.last().cloned().unwrap_or_default();
            apply(&mut next, rec);
            snapshots.push(next);
        })
        .unwrap();
        prop_assert!(replayed.tail.is_none());
        prop_assert_eq!(snapshots.last().unwrap(), &oracle);

        // Crash at every byte prefix: replay tolerating a torn tail must
        // land exactly on a record boundary's state.
        for cut in 0..=bytes.len() {
            let mut state = StoreState::default();
            let seg = codec::replay_segment(&bytes[..cut], 0, |rec| {
                apply(&mut state, rec);
            })
            .unwrap();
            prop_assert_eq!(&state, &snapshots[seg.records as usize]);
        }
    }

    /// Multi-segment WAL with rotation and chunked compaction active:
    /// a clean crash/recover cycle always reproduces the oracle exactly.
    #[test]
    fn rotated_compacted_wal_recovers_oracle_state(
        ops in proptest::collection::vec((0u8..9, 0u64..6, 0u64..40), 1..40)
    ) {
        let cfg = WalConfig {
            segment_bytes: 384,
            chunk_messages: 2,
            max_segments: 2,
            sync: SyncPolicy::PerRecord,
            ..WalConfig::default()
        };
        let mut store = WalStore::open(Box::new(MemSegments::new()), cfg).unwrap();
        let mut oracle = StoreState::default();
        let mut gen = MessageIdGen::new();
        for (op, who, val) in &ops {
            run_op(&mut store, &mut oracle, &mut gen, *op, *who, *val);
        }
        store.crash(SimTime::from_units(1000.0));
        let report = store.recover(SimTime::from_units(1001.0));
        prop_assert_eq!(report.lost_messages, 0);
        prop_assert_eq!(store.state(), &oracle);
    }
}
