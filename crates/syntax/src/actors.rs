//! The simulated System-1 mail system: host (user-interface) and server
//! actors over the `lems-sim` engine.
//!
//! This module wires the pure algorithms — server assignment
//! ([`crate::assign`]), syntax-directed resolution ([`crate::resolve`]),
//! and GetMail ([`crate::getmail`]) — into a running message-passing
//! system with the three delivery phases of §3.1.2:
//!
//! * **connection setup** — the user interface walks the user's authority
//!   list with per-probe timeouts until a live server accepts the message;
//! * **name resolution and forwarding** — servers resolve syntactically,
//!   forward into the recipient's region, and cascade across the
//!   recipient's authority list when servers are down;
//! * **delivery** — the authority server deposits into the mailbox,
//!   notifies the recipient's host, and answers retrieval probes with its
//!   `LastStartTime` so the UI-side GetMail walk can stop early.
//!
//! Failures come from a [`FailurePlan`]; down servers silently drop
//! traffic, and every recovery bumps the server's `LastStartTime`, exactly
//! the signal GetMail keys on.
//!
//! [`FailurePlan`]: lems_sim::failure::FailurePlan

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use lems_core::directory::Directory;
use lems_core::mailbox::Mailbox;
use lems_core::message::{BounceReason, Message, MessageId, MessageIdGen};
use lems_core::name::MailName;
use lems_core::store::{MailStore, StoreMetrics, StoreRecovery};
use lems_core::user::AuthorityList;
use lems_net::error::NetError;
use lems_net::graph::NodeId;
use lems_net::topology::{RegionId, Topology};
use lems_net::transport::Transport;
use lems_sim::actor::{Actor, ActorId, ActorSim, Ctx, TimerId};
use lems_sim::failure::{FailureError, Outage};
use lems_sim::linkfault::{LinkFaultPlan, LinkProfile};
use lems_sim::metrics::MetricsRegistry;
use lems_sim::session::RetryPolicy;
use lems_sim::span::{BounceCode, ResolveCode, SpanId, SpanLog, SpanStage, NO_NODE};
use lems_sim::stats::Summary;
use lems_sim::time::{SimDuration, SimTime};
use lems_store::DurabilityConfig;

use crate::assign::{solve, Assignment, AssignmentProblem, BalanceOptions};
use crate::cost::{CostModel, ServerSpec};
use crate::resolve::{Resolution, SyntaxResolver};

/// Maximum server-to-server forwarding hops before a message bounces
/// (loop protection).
pub const MAX_HOPS: u32 = 16;

/// Extra slack added to every round-trip timeout, in time units.
pub const TIMEOUT_SLACK: f64 = 2.0;

/// The protocol spoken between hosts and servers.
#[derive(Clone, Debug)]
pub enum MailMsg {
    /// Workload injection: a user on this host wants to send mail.
    DoSend {
        /// Sender (must live on the receiving host).
        from: MailName,
        /// Recipient.
        to: MailName,
    },
    /// Workload injection: a user on this host checks their mail.
    DoCheck {
        /// The checking user.
        user: MailName,
    },
    /// UI -> server: accept this message for delivery.
    Submit {
        /// The message.
        msg: Message,
        /// Host node to acknowledge.
        reply_to: NodeId,
    },
    /// Server -> UI: message accepted (store-and-forward responsibility
    /// transferred).
    SubmitAck {
        /// Accepted message.
        id: MessageId,
    },
    /// Server -> server: continue resolution/delivery.
    Forward {
        /// The message.
        msg: Message,
        /// Server node to acknowledge.
        reply_to: NodeId,
        /// Remaining hop budget.
        hops_left: u32,
    },
    /// Server -> server: forwarded message accepted.
    ForwardAck {
        /// Accepted message.
        id: MessageId,
    },
    /// Server -> host: mail for `user` was deposited (the "alert signal").
    Notify {
        /// Recipient.
        user: MailName,
        /// Deposited message.
        id: MessageId,
    },
    /// UI -> server: return stored mail for `user`.
    Retrieve {
        /// The retrieving user.
        user: MailName,
        /// Host node to reply to.
        reply_to: NodeId,
    },
    /// Server -> UI: stored mail plus the server's `LastStartTime`.
    RetrieveReply {
        /// The user polled for.
        user: MailName,
        /// Drained messages.
        messages: Vec<Message>,
        /// The server's `LastStartTime`.
        last_start_time: SimTime,
    },
    /// UI -> server: the listed drained messages arrived safely; the
    /// server may release its drain buffer for them. Without this ack a
    /// lost `RetrieveReply` would destroy mail — the server keeps drained
    /// messages in stable storage until the host confirms receipt.
    RetrieveAck {
        /// The user whose drain is being confirmed.
        user: MailName,
        /// Ids received by the host.
        ids: Vec<MessageId>,
    },
}

/// Shared run statistics (single-threaded simulation: `Rc<RefCell<_>>`).
#[derive(Debug, Default)]
pub struct DeliveryStats {
    /// Messages submitted by user interfaces.
    pub submitted: u64,
    /// Messages deposited into mailboxes.
    pub deposited: u64,
    /// Messages retrieved by their recipients.
    pub retrieved: u64,
    /// Messages bounced (resolution failure or every server down).
    pub bounced: u64,
    /// Individual submit probes (connection-setup attempts), including
    /// retransmissions.
    pub submit_attempts: u64,
    /// Individual forward probes between servers, including
    /// retransmissions.
    pub forward_attempts: u64,
    /// Session-layer retransmissions (same peer, repeated request after a
    /// timeout) across submit, forward, and retrieve exchanges.
    pub retransmits: u64,
    /// Notifications sent to recipient hosts.
    pub notifications: u64,
    /// Messages currently sitting in server storage (live gauge).
    pub in_storage_now: u64,
    /// Largest value `in_storage_now` ever reached (§4.4 "storage space
    /// used").
    pub peak_storage: u64,
    /// Submission-to-deposit latency, in time units.
    pub delivery_latency: Summary,
    /// Submission-to-retrieval latency, in time units.
    pub end_to_end: Summary,
    /// Probes per completed GetMail retrieval.
    pub retrieval_polls: Summary,
    /// Ledger: ids submitted.
    pub ledger_submitted: BTreeSet<MessageId>,
    /// Ledger: ids retrieved.
    pub ledger_retrieved: BTreeSet<MessageId>,
    /// Ledger: ids bounced (with reasons).
    pub ledger_bounced: BTreeMap<MessageId, BounceReason>,
}

impl DeliveryStats {
    /// Messages neither retrieved nor bounced — still stored or in flight.
    pub fn outstanding(&self) -> usize {
        self.ledger_submitted.len() - self.ledger_retrieved.len() - self.ledger_bounced.len()
    }
}

type SharedStats = Rc<RefCell<DeliveryStats>>;

/// The shared lifecycle-span log (disabled by default; see
/// [`Deployment::enable_spans`]). Like the stats ledger it is pure
/// bookkeeping: recording never touches the scheduler or any RNG stream,
/// so enabling spans cannot perturb event order.
type SharedSpans = Rc<RefCell<SpanLog>>;

/// The shared log of store-recovery reports, one entry per server
/// recovery, in recovery order. Pure bookkeeping like the span log:
/// recording never touches the scheduler or any RNG stream.
pub type SharedRecoveries = Rc<RefCell<Vec<StoreRecovery>>>;

/// Span `site`/`peer` encoding: raw topology node index.
fn site(n: NodeId) -> u64 {
    n.0 as u64
}

/// The wire code for a bounce reason (see [`BounceCode`]).
fn bounce_code(reason: BounceReason) -> u64 {
    match reason {
        BounceReason::UnknownRecipient => BounceCode::UnknownRecipient.as_detail(),
        BounceReason::AllServersDown => BounceCode::AllServersDown.as_detail(),
        BounceReason::RegionUnreachable => BounceCode::RegionUnreachable.as_detail(),
    }
}

/// Per-user state kept by the host actor.
#[derive(Clone, Debug)]
struct UiUser {
    authorities: AuthorityList,
    last_checking_time: SimTime,
    previously_unavailable: BTreeSet<NodeId>,
    retrieval: Option<RetrievalSession>,
    pending_check: bool,
}

/// Session-layer configuration for a deployment: how request/response
/// exchanges (submit, forward, retrieve) time out and retransmit, and
/// whether retrieval uses the acked drain buffer.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Timeout/retransmit discipline per peer exchange.
    pub retry: RetryPolicy,
    /// When true (the default), servers keep drained messages in a stable
    /// drain buffer until the host acks the `RetrieveReply`; a lost reply
    /// is then recovered by a retransmitted `Retrieve`. When false the
    /// drain is destructive (the pre-session behaviour): a lost reply
    /// loses mail — kept so experiments can prove the session layer is
    /// load-bearing.
    pub reliable_retrieval: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            retry: RetryPolicy::default_session(),
            reliable_retrieval: true,
        }
    }
}

impl SessionConfig {
    /// The pre-session behaviour: one attempt per server, destructive
    /// drain. Demonstrably loses mail on lossy links.
    pub fn legacy() -> Self {
        SessionConfig {
            retry: RetryPolicy::no_retry(),
            reliable_retrieval: false,
        }
    }
}

/// An in-flight asynchronous GetMail walk.
#[derive(Clone, Debug)]
struct RetrievalSession {
    /// Servers of the authority list still to probe in the walk phase.
    walk_remaining: Vec<NodeId>,
    /// Servers to sweep afterwards (previously unavailable, not probed in
    /// this walk).
    sweep_remaining: Vec<NodeId>,
    /// Servers probed during this check.
    probed: BTreeSet<NodeId>,
    polls: u32,
    current: Option<(NodeId, TimerId)>,
    /// Probes already sent to the current server (session-layer attempts).
    attempts: u32,
    check_started: SimTime,
    finished_walk_early: bool,
    /// The lifecycle span covering this check.
    span: SpanId,
}

/// An in-flight submission (connection-setup walk over the sender's
/// authority list).
#[derive(Clone, Debug)]
struct SubmitTask {
    msg: Message,
    /// The server currently being probed.
    current: NodeId,
    /// Probes already sent to `current`.
    attempts: u32,
    remaining: Vec<NodeId>,
    timer: TimerId,
}

/// The user-interface actor for one host (serves every user homed there).
pub struct HostActor {
    node: NodeId,
    transport: Rc<Transport>,
    users: BTreeMap<MailName, UiUser>,
    // Actor bookkeeping uses ordered maps throughout: iteration order feeds
    // protocol decisions, and hash-order iteration would make replays
    // diverge between runs (enforced by `lems-check -- lint`).
    submits: BTreeMap<MessageId, SubmitTask>,
    id_gen: Rc<RefCell<MessageIdGen>>,
    stats: SharedStats,
    timer_purpose: BTreeMap<TimerId, TimerPurpose>,
    /// Notifications received (user -> count) — the alert signal of
    /// §3.1.2c.
    pub alerts: BTreeMap<MailName, u64>,
    server_proc: f64,
    retry: RetryPolicy,
    spans: SharedSpans,
    /// This actor's telemetry; collected by
    /// [`Deployment::metrics_snapshot`].
    pub metrics: MetricsRegistry,
}

#[derive(Clone, Debug)]
enum TimerPurpose {
    SubmitTimeout(MessageId),
    RetrieveTimeout(MailName),
}

impl HostActor {
    fn timeout_for(&self, server: NodeId) -> SimDuration {
        let rtt = self.transport.delay(self.node, server) * 2;
        rtt + SimDuration::from_units(self.server_proc + TIMEOUT_SLACK)
    }

    /// Records a host-side bounce in the stats ledger, the span log, and
    /// this actor's metrics. The span terminal dedups on the ledger: only
    /// the first outcome for a message id terminates its span.
    fn bounce_here(&mut self, id: MessageId, reason: BounceReason, now: SimTime) {
        let mut st = self.stats.borrow_mut();
        st.bounced += 1;
        self.metrics.inc("bounced");
        let first_outcome =
            !st.ledger_retrieved.contains(&id) && st.ledger_bounced.insert(id, reason).is_none();
        if first_outcome {
            self.spans.borrow_mut().record_keyed(
                now,
                id.0,
                SpanStage::Bounced,
                site(self.node),
                NO_NODE,
                bounce_code(reason),
            );
        }
    }

    fn start_submit(&mut self, msg: Message, ctx: &mut Ctx<'_, MailMsg>) {
        self.spans.borrow_mut().open_keyed(
            msg.id.0,
            ctx.now(),
            SpanStage::Submitted,
            site(self.node),
        );
        if !self.users.contains_key(&msg.from) {
            // Sender not homed here; count as bounce at source.
            self.bounce_here(msg.id, BounceReason::UnknownRecipient, ctx.now());
            return;
        }
        let remaining: Vec<NodeId> = self
            .users
            .get(&msg.from)
            .map(|u| u.authorities.servers().to_vec())
            .unwrap_or_default();
        {
            let mut st = self.stats.borrow_mut();
            st.submitted += 1;
            st.ledger_submitted.insert(msg.id);
        }
        self.metrics.inc("submitted");
        self.submit_next(msg, remaining, ctx);
    }

    fn submit_next(
        &mut self,
        msg: Message,
        mut remaining: Vec<NodeId>,
        ctx: &mut Ctx<'_, MailMsg>,
    ) {
        if remaining.is_empty() {
            self.bounce_here(msg.id, BounceReason::AllServersDown, ctx.now());
            return;
        }
        let server = remaining.remove(0);
        self.submit_probe(msg, server, 0, remaining, ctx);
    }

    /// Sends one Submit probe (0-based `attempt`) to `server` and arms the
    /// session timeout with backoff.
    fn submit_probe(
        &mut self,
        msg: Message,
        server: NodeId,
        attempt: u32,
        remaining: Vec<NodeId>,
        ctx: &mut Ctx<'_, MailMsg>,
    ) {
        {
            let mut st = self.stats.borrow_mut();
            st.submit_attempts += 1;
            if attempt > 0 {
                st.retransmits += 1;
            }
        }
        self.metrics.inc("submit_probes");
        if attempt > 0 {
            self.metrics.inc("retransmits");
        }
        self.spans.borrow_mut().record_keyed(
            ctx.now(),
            msg.id.0,
            SpanStage::Probe,
            site(self.node),
            site(server),
            u64::from(attempt),
        );
        let base = self.timeout_for(server);
        let timeout = self.retry.timeout(base, attempt, ctx.rng());
        self.transport.send(
            ctx,
            self.node,
            server,
            MailMsg::Submit {
                msg: msg.clone(),
                reply_to: self.node,
            },
            SimDuration::ZERO,
        );
        let timer = ctx.set_timer(timeout, msg.id.0);
        self.timer_purpose
            .insert(timer, TimerPurpose::SubmitTimeout(msg.id));
        self.submits.insert(
            msg.id,
            SubmitTask {
                msg,
                current: server,
                attempts: attempt + 1,
                remaining,
                timer,
            },
        );
    }

    fn start_check(&mut self, user_name: &MailName, ctx: &mut Ctx<'_, MailMsg>) {
        let Some(user) = self.users.get_mut(&user_name.clone()) else {
            return;
        };
        if user.retrieval.is_some() {
            // A check is already running; coalesce (re-run when done).
            user.pending_check = true;
            return;
        }
        let span =
            self.spans
                .borrow_mut()
                .open(ctx.now(), SpanStage::CheckStarted, site(self.node));
        self.metrics.inc("checks_started");
        let session = RetrievalSession {
            walk_remaining: user.authorities.servers().to_vec(),
            sweep_remaining: Vec::new(),
            probed: BTreeSet::new(),
            polls: 0,
            current: None,
            attempts: 0,
            check_started: ctx.now(),
            finished_walk_early: false,
            span,
        };
        user.retrieval = Some(session);
        self.advance_retrieval(user_name.clone(), ctx);
    }

    /// Drives the session state machine: probe next server or finish.
    fn advance_retrieval(&mut self, user_name: MailName, ctx: &mut Ctx<'_, MailMsg>) {
        let node = self.node;
        let Some(user) = self.users.get_mut(&user_name) else {
            return;
        };
        let Some(session) = user.retrieval.as_mut() else {
            return;
        };

        // Move to the sweep phase when the walk is done: sweep previously
        // unavailable servers not already probed this check.
        if (session.walk_remaining.is_empty() || session.finished_walk_early)
            && session.sweep_remaining.is_empty()
        {
            session.sweep_remaining = user
                .previously_unavailable
                .iter()
                .copied()
                .filter(|s| !session.probed.contains(s))
                .collect();
        }

        let next = if !session.finished_walk_early && !session.walk_remaining.is_empty() {
            Some(session.walk_remaining.remove(0))
        } else {
            // Sweep phase.
            loop {
                match session.sweep_remaining.pop() {
                    Some(s) if session.probed.contains(&s) => {}
                    other => break other,
                }
            }
        };

        match next {
            Some(server) => {
                // `polls` counts distinct servers probed (the paper's
                // GetMail cost metric); session-layer retransmissions to
                // the same server are counted in `retransmits` instead.
                session.polls += 1;
                session.probed.insert(server);
                session.attempts = 1;
                self.spans.borrow_mut().record(
                    ctx.now(),
                    session.span,
                    SpanStage::Probe,
                    site(node),
                    site(server),
                    0,
                );
                self.metrics.inc("retrieve_probes");
                let base = {
                    let rtt = self.transport.delay(node, server) * 2;
                    rtt + SimDuration::from_units(self.server_proc + TIMEOUT_SLACK)
                };
                let timeout = self.retry.timeout(base, 0, ctx.rng());
                self.transport.send(
                    ctx,
                    node,
                    server,
                    MailMsg::Retrieve {
                        user: user_name.clone(),
                        reply_to: node,
                    },
                    SimDuration::ZERO,
                );
                let timer = ctx.set_timer(timeout, 0);
                session.current = Some((server, timer));
                self.timer_purpose
                    .insert(timer, TimerPurpose::RetrieveTimeout(user_name));
            }
            None => {
                // Session complete.
                let polls = session.polls;
                let started = session.check_started;
                let span = session.span;
                user.last_checking_time = started;
                user.retrieval = None;
                self.stats
                    .borrow_mut()
                    .retrieval_polls
                    .observe(f64::from(polls));
                self.spans.borrow_mut().record(
                    ctx.now(),
                    span,
                    SpanStage::CheckDone,
                    site(node),
                    NO_NODE,
                    u64::from(polls),
                );
                self.metrics.inc("checks_done");
                self.metrics.observe(
                    "check_latency",
                    ctx.now().duration_since(started).as_units(),
                );
                if std::mem::take(&mut user.pending_check) {
                    self.start_check(&user_name, ctx);
                }
            }
        }
    }
}

impl Actor for HostActor {
    type Msg = MailMsg;

    fn kind(&self) -> &'static str {
        "host"
    }

    fn on_message(&mut self, from: ActorId, msg: MailMsg, ctx: &mut Ctx<'_, MailMsg>) {
        match msg {
            MailMsg::DoSend { from, to } => {
                let id = self.id_gen.borrow_mut().next_id();
                let m = Message::new(id, from, to, "msg", "body", ctx.now());
                self.start_submit(m, ctx);
            }
            MailMsg::DoCheck { user } => {
                self.start_check(&user, ctx);
            }
            MailMsg::SubmitAck { id } => {
                if let Some(task) = self.submits.remove(&id) {
                    ctx.cancel_timer(task.timer);
                    self.timer_purpose.remove(&task.timer);
                    // Store-and-forward responsibility now rests with the
                    // accepting server.
                    self.spans.borrow_mut().record_keyed(
                        ctx.now(),
                        id.0,
                        SpanStage::Accepted,
                        site(self.node),
                        site(task.current),
                        0,
                    );
                }
            }
            MailMsg::Notify { user, id: _ } => {
                *self.alerts.entry(user).or_insert(0) += 1;
                self.metrics.inc("alerts");
            }
            MailMsg::RetrieveReply {
                user: user_name,
                messages,
                last_start_time,
            } => {
                let now = ctx.now();
                // Ack first, unconditionally — even for stale replies after
                // a timeout. The messages are physically at this host, so
                // the server must release its drain buffer; failing to ack
                // a stale reply would make the server re-send (and the UI
                // re-discard) them forever.
                if !messages.is_empty() {
                    if let Some(server_node) = self.transport.node_of(from) {
                        self.transport.send(
                            ctx,
                            self.node,
                            server_node,
                            MailMsg::RetrieveAck {
                                user: user_name.clone(),
                                ids: messages.iter().map(|m| m.id).collect(),
                            },
                            SimDuration::ZERO,
                        );
                    }
                }
                // Ledger first, unconditionally: the server has already
                // drained these messages from its mailbox and they are now
                // physically at this host. Counting them only when the
                // session bookkeeping still matches would strand drained
                // mail on any stale-reply race (the exact loss class the
                // trace auditor checks for).
                {
                    let server_site = self.transport.node_of(from).map_or(NO_NODE, site);
                    let mut st = self.stats.borrow_mut();
                    let mut spans = self.spans.borrow_mut();
                    for m in &messages {
                        // Dedup by message id: a server that crashed while
                        // forwarding re-routes its stored copy on recovery,
                        // which can legally deposit the message on a second
                        // authority server. The UI discards the duplicate
                        // drain so at-least-once delivery still counts once.
                        if st.ledger_retrieved.insert(m.id) {
                            st.retrieved += 1;
                            let latency = now.duration_since(m.submitted_at).as_units();
                            st.end_to_end.observe(latency);
                            self.metrics.inc("retrieved");
                            self.metrics.observe("end_to_end", latency);
                            // First terminal outcome wins the span: a host
                            // that conservatively bounced after losing every
                            // ack keeps that terminal even if the mail later
                            // surfaces (the ledgers record both).
                            if !st.ledger_bounced.contains_key(&m.id) {
                                spans.record_keyed(
                                    now,
                                    m.id.0,
                                    SpanStage::Retrieved,
                                    site(self.node),
                                    server_site,
                                    0,
                                );
                            }
                        }
                    }
                }
                let Some(user) = self.users.get_mut(&user_name) else {
                    return;
                };
                let Some(session) = user.retrieval.as_mut() else {
                    return; // stale reply after timeout: already counted above
                };
                let Some((server, timer)) = session.current.take() else {
                    return;
                };
                ctx.cancel_timer(timer);
                self.timer_purpose.remove(&timer);
                user.previously_unavailable.remove(&server);
                if user.last_checking_time > last_start_time {
                    session.finished_walk_early = true;
                }
                self.advance_retrieval(user_name, ctx);
            }
            // Server-bound traffic; a host receiving these ignores them.
            MailMsg::Submit { .. }
            | MailMsg::Forward { .. }
            | MailMsg::ForwardAck { .. }
            | MailMsg::Retrieve { .. }
            | MailMsg::RetrieveAck { .. } => {}
        }
    }

    fn on_timer(&mut self, id: TimerId, _tag: u64, ctx: &mut Ctx<'_, MailMsg>) {
        match self.timer_purpose.remove(&id) {
            Some(TimerPurpose::SubmitTimeout(mid)) => {
                let Some(task) = self.submits.remove(&mid) else {
                    return;
                };
                if task.timer != id {
                    // Stale timer from a superseded probe.
                    self.submits.insert(mid, task);
                    return;
                }
                if self.retry.exhausted(task.attempts) {
                    // Retry budget for this server spent: fall back to the
                    // next authority server.
                    self.submit_next(task.msg, task.remaining, ctx);
                } else {
                    self.submit_probe(task.msg, task.current, task.attempts, task.remaining, ctx);
                }
            }
            Some(TimerPurpose::RetrieveTimeout(user_name)) => {
                let node = self.node;
                let Some(user) = self.users.get_mut(&user_name) else {
                    return;
                };
                let Some(session) = user.retrieval.as_mut() else {
                    return;
                };
                let Some((server, timer)) = session.current.take() else {
                    return;
                };
                if timer != id {
                    // Stale timer from a superseded probe.
                    session.current = Some((server, timer));
                    return;
                }
                if self.retry.exhausted(session.attempts) {
                    // Retry budget spent: the server is unresponsive.
                    // Record it for future sweeps — the paper's
                    // PreviouslyUnavailableServers, now driven by real
                    // timeouts rather than oracle knowledge — and move on.
                    user.previously_unavailable.insert(server);
                    self.advance_retrieval(user_name, ctx);
                } else {
                    // Retransmit to the same server with backoff.
                    let attempt = session.attempts;
                    session.attempts += 1;
                    let base = {
                        let rtt = self.transport.delay(node, server) * 2;
                        rtt + SimDuration::from_units(self.server_proc + TIMEOUT_SLACK)
                    };
                    let timeout = self.retry.timeout(base, attempt, ctx.rng());
                    self.transport.send(
                        ctx,
                        node,
                        server,
                        MailMsg::Retrieve {
                            user: user_name.clone(),
                            reply_to: node,
                        },
                        SimDuration::ZERO,
                    );
                    let new_timer = ctx.set_timer(timeout, 0);
                    session.current = Some((server, new_timer));
                    self.stats.borrow_mut().retransmits += 1;
                    self.metrics.inc("retransmits");
                    self.spans.borrow_mut().record(
                        ctx.now(),
                        session.span,
                        SpanStage::Probe,
                        site(node),
                        site(server),
                        u64::from(attempt),
                    );
                    self.timer_purpose
                        .insert(new_timer, TimerPurpose::RetrieveTimeout(user_name));
                }
            }
            None => {}
        }
    }
}

/// An in-flight server-side forward (cascading over candidate servers).
#[derive(Clone, Debug)]
struct ForwardTask {
    msg: Message,
    /// The server currently being probed.
    current: NodeId,
    /// Probes already sent to `current`.
    attempts: u32,
    remaining: Vec<NodeId>,
    timer: TimerId,
    hops_left: u32,
}

/// A System-1 mail server.
pub struct ServerActor {
    node: NodeId,
    transport: Rc<Transport>,
    resolver: SyntaxResolver,
    /// The server's durable state — mailboxes, drained-but-unacked
    /// reservation buffers, the store-before-forward journal, and the
    /// deposit dedup ledger — behind the [`MailStore`] trait so the same
    /// actor runs against fiat-stable memory ([`DurabilityConfig::Ideal`]),
    /// RAM that a crash wipes ([`DurabilityConfig::Volatile`]), or a
    /// write-ahead log ([`DurabilityConfig::Wal`]).
    store: Box<dyn MailStore>,
    last_start_time: SimTime,
    proc_time: f64,
    stats: SharedStats,
    /// Retry bookkeeping (probe timers, attempt counts, remaining
    /// candidates) for accepted-but-not-yet-settled messages. This map is
    /// *process* state; the durable custody record lives in the store's
    /// forward journal (a store-and-forward server stores *before* it
    /// forwards). Under [`DurabilityConfig::Ideal`] the map survives a
    /// crash and drives recovery re-routing directly; otherwise it dies
    /// with the process and recovery re-routes from the journal (see
    /// [`Actor::on_recover`]).
    forwards: BTreeMap<MessageId, ForwardTask>,
    /// Home host of each user in this region (for notifications).
    home_hosts: BTreeMap<MailName, NodeId>,
    /// The §3.1.4 redirect table, shared across servers (migrated users'
    /// old names forward to their new names while the entry lives).
    redirects: Rc<RefCell<crate::migrate::RedirectTable>>,
    retry: RetryPolicy,
    /// When true, retrieval drains move messages into the store's
    /// reservation buffer and are only released on a `RetrieveAck`.
    reliable_retrieval: bool,
    spans: SharedSpans,
    /// Shared recovery-report log; one entry appended per
    /// [`Actor::on_recover`].
    recoveries: SharedRecoveries,
    /// This server's telemetry; collected by
    /// [`Deployment::metrics_snapshot`]. The `storage` gauge tracks this
    /// server's live mailbox+drain occupancy (§4.4 storage space).
    pub metrics: MetricsRegistry,
}

impl ServerActor {
    fn proc(&self) -> SimDuration {
        SimDuration::from_units(self.proc_time)
    }

    /// Deposit into the local mailbox + notify the recipient's home host.
    /// Duplicate ids (forward retransmissions) are dropped silently.
    fn deposit(&mut self, msg: Message, ctx: &mut Ctx<'_, MailMsg>) {
        let now = ctx.now();
        let latency = now.duration_since(msg.submitted_at).as_units();
        let user = msg.to.clone();
        let id = msg.id;
        if !self.store.deposit(msg, now) {
            return;
        }
        {
            let mut st = self.stats.borrow_mut();
            st.deposited += 1;
            st.delivery_latency.observe(latency);
            st.in_storage_now += 1;
            st.peak_storage = st.peak_storage.max(st.in_storage_now);
        }
        self.metrics.inc("deposited");
        self.metrics.observe("delivery_latency", latency);
        self.metrics.gauge_add(now, "storage", 1.0);
        self.spans.borrow_mut().record_keyed(
            now,
            id.0,
            SpanStage::Deposited,
            site(self.node),
            NO_NODE,
            0,
        );
        if let Some(&host) = self.home_hosts.get(&user) {
            self.stats.borrow_mut().notifications += 1;
            self.metrics.inc("notifications");
            self.spans.borrow_mut().record_keyed(
                now,
                id.0,
                SpanStage::Notified,
                site(self.node),
                site(host),
                0,
            );
            self.transport.send(
                ctx,
                self.node,
                host,
                MailMsg::Notify { user, id },
                self.proc(),
            );
        }
    }

    fn bounce(&mut self, id: MessageId, reason: BounceReason, now: SimTime) {
        // Custody ends here: settle any forward-journal entry (a no-op for
        // messages never journaled, e.g. fresh submissions bounced by the
        // resolver before any probe went out).
        self.store.settle_forward(id);
        let mut st = self.stats.borrow_mut();
        st.bounced += 1;
        self.metrics.inc("bounced");
        let first_outcome =
            !st.ledger_retrieved.contains(&id) && st.ledger_bounced.insert(id, reason).is_none();
        if first_outcome {
            self.spans.borrow_mut().record_keyed(
                now,
                id.0,
                SpanStage::Bounced,
                site(self.node),
                NO_NODE,
                bounce_code(reason),
            );
        }
    }

    /// Route a message we have accepted responsibility for.
    ///
    /// §3.1.2c: "mail will be deposited in the first active server from
    /// the list" — the recipient's authority list is always walked in
    /// order, even when this server appears in it, so the GetMail
    /// early-exit invariant (mail lives at the first server that was up
    /// at deposit time) holds.
    fn route(&mut self, msg: Message, hops_left: u32, ctx: &mut Ctx<'_, MailMsg>) {
        if hops_left == 0 {
            self.bounce(msg.id, BounceReason::RegionUnreachable, ctx.now());
            return;
        }
        let resolved = |code: ResolveCode| -> u64 { code.as_detail() };
        match self.resolver.resolve(&msg.to) {
            Resolution::LocalAuthority => {
                self.spans.borrow_mut().record_keyed(
                    ctx.now(),
                    msg.id.0,
                    SpanStage::Resolved,
                    site(self.node),
                    NO_NODE,
                    resolved(ResolveCode::LocalAuthority),
                );
                let candidates: Vec<NodeId> = self
                    .resolver
                    .view()
                    .lookup(&msg.to)
                    .map_or_else(|| vec![self.node], |rec| rec.authorities.servers().to_vec());
                self.forward_next(msg, candidates, hops_left - 1, ctx);
            }
            Resolution::RegionalAuthority(list) => {
                self.spans.borrow_mut().record_keyed(
                    ctx.now(),
                    msg.id.0,
                    SpanStage::Resolved,
                    site(self.node),
                    NO_NODE,
                    resolved(ResolveCode::RegionalAuthority),
                );
                let candidates: Vec<NodeId> = list.servers().to_vec();
                self.forward_next(msg, candidates, hops_left - 1, ctx);
            }
            Resolution::ForwardToRegion { servers, .. } => {
                self.spans.borrow_mut().record_keyed(
                    ctx.now(),
                    msg.id.0,
                    SpanStage::Resolved,
                    site(self.node),
                    NO_NODE,
                    resolved(ResolveCode::ForwardToRegion),
                );
                // "the message is transmitted to one of the servers in the
                // recipient region": try them nearest-first.
                let mut candidates = servers;
                candidates.sort_by_key(|&s| self.transport.delay(self.node, s));
                self.forward_next(msg, candidates, hops_left - 1, ctx);
            }
            Resolution::UnknownRegion => {
                self.spans.borrow_mut().record_keyed(
                    ctx.now(),
                    msg.id.0,
                    SpanStage::Resolved,
                    site(self.node),
                    NO_NODE,
                    resolved(ResolveCode::Failed),
                );
                self.bounce(msg.id, BounceReason::RegionUnreachable, ctx.now());
            }
            Resolution::UnknownUser => {
                // §3.1.4: "mail addressed to a migrated user can be
                // redirected to the new user address, and the senders are
                // notified about the name changes."
                let redirect_to = self
                    .redirects
                    .borrow_mut()
                    .lookup(&msg.to, ctx.now())
                    .map(|r| r.new_name.clone());
                match redirect_to {
                    Some(new_name) => {
                        let mut rewritten = msg;
                        rewritten.to = new_name;
                        self.route(rewritten, hops_left - 1, ctx);
                    }
                    None => {
                        self.spans.borrow_mut().record_keyed(
                            ctx.now(),
                            msg.id.0,
                            SpanStage::Resolved,
                            site(self.node),
                            NO_NODE,
                            resolved(ResolveCode::Failed),
                        );
                        self.bounce(msg.id, BounceReason::UnknownRecipient, ctx.now());
                    }
                }
            }
        }
    }

    fn forward_next(
        &mut self,
        msg: Message,
        mut remaining: Vec<NodeId>,
        hops_left: u32,
        ctx: &mut Ctx<'_, MailMsg>,
    ) {
        if remaining.is_empty() {
            self.bounce(msg.id, BounceReason::AllServersDown, ctx.now());
            return;
        }
        let target = remaining.remove(0);
        if target == self.node {
            // This server is the first (still-reachable) authority in the
            // walk: deposit here. The mailbox record supersedes the
            // journal entry.
            self.store.settle_forward(msg.id);
            self.deposit(msg, ctx);
            return;
        }
        self.forward_probe(msg, target, 0, remaining, hops_left, ctx);
    }

    /// Sends one Forward probe (0-based `attempt`) to `target` and arms
    /// the session timeout with backoff.
    fn forward_probe(
        &mut self,
        msg: Message,
        target: NodeId,
        attempt: u32,
        remaining: Vec<NodeId>,
        hops_left: u32,
        ctx: &mut Ctx<'_, MailMsg>,
    ) {
        if attempt == 0 {
            // Store before forwarding: journal custody of this message so
            // recovery can resume the walk even when process state is lost.
            // Insert-if-absent — a retransmitted duplicate or a recovery
            // re-route finds the entry already present.
            self.store.accept_forward(&msg, hops_left);
        }
        {
            let mut st = self.stats.borrow_mut();
            st.forward_attempts += 1;
            if attempt > 0 {
                st.retransmits += 1;
            }
        }
        self.metrics.inc("forward_probes");
        if attempt > 0 {
            self.metrics.inc("retransmits");
        }
        {
            let mut spans = self.spans.borrow_mut();
            if attempt == 0 {
                // One Forwarded per hop-target choice; Probe per attempt.
                spans.record_keyed(
                    ctx.now(),
                    msg.id.0,
                    SpanStage::Forwarded,
                    site(self.node),
                    site(target),
                    0,
                );
            }
            spans.record_keyed(
                ctx.now(),
                msg.id.0,
                SpanStage::Probe,
                site(self.node),
                site(target),
                u64::from(attempt),
            );
        }
        let rtt = self.transport.delay(self.node, target) * 2;
        let base = rtt + SimDuration::from_units(self.proc_time + TIMEOUT_SLACK);
        let timeout = self.retry.timeout(base, attempt, ctx.rng());
        self.transport.send(
            ctx,
            self.node,
            target,
            MailMsg::Forward {
                msg: msg.clone(),
                reply_to: self.node,
                hops_left,
            },
            self.proc(),
        );
        // Cancel a superseded probe's timer (a duplicate Forward of the
        // same message can overwrite the task) so it cannot fire later.
        if let Some(old) = self.forwards.get(&msg.id) {
            ctx.cancel_timer(old.timer);
        }
        let timer = ctx.set_timer(timeout, msg.id.0);
        self.forwards.insert(
            msg.id,
            ForwardTask {
                msg,
                current: target,
                attempts: attempt + 1,
                remaining,
                timer,
                hops_left,
            },
        );
    }
}

impl Actor for ServerActor {
    type Msg = MailMsg;

    fn kind(&self) -> &'static str {
        "server"
    }

    fn on_message(&mut self, _from: ActorId, msg: MailMsg, ctx: &mut Ctx<'_, MailMsg>) {
        match msg {
            MailMsg::Submit { msg, reply_to } => {
                // Accept responsibility immediately (store-and-forward).
                self.metrics.inc("submits_received");
                self.transport.send(
                    ctx,
                    self.node,
                    reply_to,
                    MailMsg::SubmitAck { id: msg.id },
                    self.proc(),
                );
                self.route(msg, MAX_HOPS, ctx);
            }
            MailMsg::Forward {
                msg,
                reply_to,
                hops_left,
            } => {
                self.transport.send(
                    ctx,
                    self.node,
                    reply_to,
                    MailMsg::ForwardAck { id: msg.id },
                    self.proc(),
                );
                self.route(msg, hops_left, ctx);
            }
            MailMsg::ForwardAck { id } => {
                if let Some(task) = self.forwards.remove(&id) {
                    // The target acknowledged custody: our journal entry is
                    // settled together with the retry bookkeeping.
                    self.store.settle_forward(id);
                    ctx.cancel_timer(task.timer);
                    self.spans.borrow_mut().record_keyed(
                        ctx.now(),
                        id.0,
                        SpanStage::Accepted,
                        site(self.node),
                        site(task.current),
                        0,
                    );
                }
            }
            MailMsg::Retrieve { user, reply_to } => {
                self.metrics.inc("retrieve_requests");
                let messages: Vec<Message> = if self.reliable_retrieval {
                    // Reserve the drain: messages move from the mailbox to
                    // the (equally durable) drain buffer and are re-sent on
                    // every Retrieve until the host acks them, so a lost
                    // reply never loses mail. The storage gauge is only
                    // decremented at ack time.
                    self.store.drain_reserve(&user)
                } else {
                    // Legacy destructive drain: if the reply is lost on the
                    // wire, so is the mail.
                    let fresh = self.store.drain_destructive(&user);
                    let mut st = self.stats.borrow_mut();
                    st.in_storage_now = st.in_storage_now.saturating_sub(fresh.len() as u64);
                    self.metrics
                        .gauge_add(ctx.now(), "storage", -(fresh.len() as f64));
                    fresh
                };
                self.transport.send(
                    ctx,
                    self.node,
                    reply_to,
                    MailMsg::RetrieveReply {
                        user,
                        messages,
                        last_start_time: self.last_start_time,
                    },
                    self.proc(),
                );
            }
            MailMsg::RetrieveAck { user, ids } => {
                let released = self.store.release_drained(&user, &ids);
                if released > 0 {
                    let mut st = self.stats.borrow_mut();
                    st.in_storage_now = st.in_storage_now.saturating_sub(released);
                    self.metrics
                        .gauge_add(ctx.now(), "storage", -(released as f64));
                }
            }
            // Host-bound traffic; a server receiving these ignores them.
            MailMsg::DoSend { .. }
            | MailMsg::DoCheck { .. }
            | MailMsg::SubmitAck { .. }
            | MailMsg::Notify { .. }
            | MailMsg::RetrieveReply { .. } => {}
        }
    }

    fn on_timer(&mut self, id: TimerId, tag: u64, ctx: &mut Ctx<'_, MailMsg>) {
        // Forward timeout: retransmit to the same candidate until the
        // session budget is spent, then cascade to the next one.
        let Some(task) = self.forwards.remove(&MessageId(tag)) else {
            return;
        };
        if task.timer != id {
            // Stale timer from a superseded probe.
            self.forwards.insert(task.msg.id, task);
            return;
        }
        if self.retry.exhausted(task.attempts) {
            self.forward_next(task.msg, task.remaining, task.hops_left, ctx);
        } else {
            self.forward_probe(
                task.msg,
                task.current,
                task.attempts,
                task.remaining,
                task.hops_left,
                ctx,
            );
        }
    }

    fn on_crash(&mut self, now: SimTime) {
        // What a crash costs depends on the backend: under the fiat-stable
        // [`DurabilityConfig::Ideal`] model nothing is lost (the historical
        // behaviour — only retry timers die); a volatile backend loses all
        // storage; the WAL backend loses its un-synced log suffix. The
        // store records the damage so `on_recover` can report it.
        self.store.crash(now);
        if !self.store.preserves_volatile() {
            // Real process death: the retry bookkeeping dies with the
            // process. Recovery re-routes from the store's forward journal
            // instead. (Timers cannot be cancelled here — no scheduler
            // access — but a stale timer firing after recovery finds no
            // task under its tag and does nothing, and timers are not
            // traced, so this cannot perturb the event trace.)
            self.forwards.clear();
        }
        // (Earlier revisions always cleared `forwards` here without a
        // durable journal; the trace auditor's conservation check surfaced
        // that as a submitted-but-never-delivered leak whenever a server
        // crashed while cascading a forward across a partially-down
        // authority list.)
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_, MailMsg>) {
        // "LastStartTime[server]: the time the server had last recovered
        // from failure or been initialised."
        self.last_start_time = ctx.now();
        let now = ctx.now();
        let mut report = self.store.recover(now);
        if report.lost_messages > 0 {
            // The backend lost stored mail (volatile RAM, or a WAL with a
            // sync policy weaker than per-record): reconcile the occupancy
            // ledger so the storage gauge tracks what actually survived.
            let mut st = self.stats.borrow_mut();
            st.in_storage_now = st.in_storage_now.saturating_sub(report.lost_messages);
            self.metrics
                .gauge_add(now, "storage", -(report.lost_messages as f64));
        }
        let unsettled = std::mem::take(&mut report.unsettled);
        self.recoveries.borrow_mut().push(StoreRecovery {
            at: now,
            site: site(self.node),
            backend: report.backend,
            replayed_records: report.replayed_records,
            recovered_messages: report.recovered_messages,
            recovered_pending: report.recovered_pending,
            recovered_forwards: report.recovered_forwards,
            lost_messages: report.lost_messages,
            torn_bytes: report.torn_bytes,
            segments: report.segments,
        });
        // Crash recovery for accepted-but-undeposited mail: any forward
        // that was in flight when we went down may have been dropped (and
        // its retry timer was suppressed while we were crashed), so walk
        // each stored message through resolution again from the top.
        // Re-delivery to a server that already holds the message is
        // harmless — deposit dedups on message id.
        if self.store.preserves_volatile() {
            // Fiat-stable model: the retry bookkeeping itself survived;
            // re-route from it exactly as before.
            let pending: Vec<ForwardTask> =
                std::mem::take(&mut self.forwards).into_values().collect();
            for task in pending {
                ctx.cancel_timer(task.timer);
                self.route(task.msg, task.hops_left.max(1), ctx);
            }
        } else {
            // Real recovery: the volatile map is gone; the durable forward
            // journal (replayed by the store) says what we still owe.
            // Journal iteration is in message-id order — the same order
            // the BTreeMap re-route above uses — so the recovery schedule
            // is identical to the fiat-stable model's when nothing was
            // lost.
            for (msg, hops_left) in unsettled {
                self.route(msg, hops_left.max(1), ctx);
            }
        }
    }
}

/// Configuration for [`Deployment::build`].
#[derive(Clone, Debug)]
pub struct DeploymentConfig {
    /// Authority servers per user.
    pub authority_list_len: usize,
    /// Per-server capacity/processing spec.
    pub server_spec: ServerSpec,
    /// Cost constants for assignment.
    pub cost_model: CostModel,
    /// Balancing options.
    pub balance: BalanceOptions,
    /// Engine seed.
    pub seed: u64,
    /// Session-layer (timeout/retry/ack) behaviour.
    pub session: SessionConfig,
    /// Mailbox persistence backend for every server.
    pub durability: DurabilityConfig,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            authority_list_len: 3,
            server_spec: ServerSpec::paper_example(),
            cost_model: CostModel::paper_example(),
            balance: BalanceOptions::default(),
            seed: 0,
            session: SessionConfig::default(),
            durability: DurabilityConfig::default(),
        }
    }
}

/// A fully wired System-1 deployment: engine, actors, transport, directory,
/// and statistics.
pub struct Deployment {
    /// The simulation engine.
    pub sim: ActorSim<MailMsg>,
    /// Topology-derived delays and node/actor mapping.
    pub transport: Rc<Transport>,
    /// Global user registry.
    pub directory: Directory,
    /// Shared run statistics.
    pub stats: SharedStats,
    /// Users by name with their home host.
    users: BTreeMap<MailName, NodeId>,
    /// Host node -> actor id.
    host_actors: BTreeMap<NodeId, ActorId>,
    /// Host node -> region (for live migration naming).
    host_region: BTreeMap<NodeId, RegionId>,
    /// Host node -> display token.
    host_names: BTreeMap<NodeId, String>,
    /// Server node -> actor id.
    server_actors: BTreeMap<NodeId, ActorId>,
    /// The assignment used to build authority lists.
    pub assignment: Assignment,
    /// The assignment problem (for inspecting costs).
    pub problem: AssignmentProblem,
    /// The §3.1.4 redirect table shared with every server actor.
    pub redirects: Rc<RefCell<crate::migrate::RedirectTable>>,
    /// The lifecycle-span log shared with every actor (disabled until
    /// [`Deployment::enable_spans`]).
    pub spans: Rc<RefCell<SpanLog>>,
    /// Store-recovery reports, one per server recovery, in recovery order.
    pub recoveries: SharedRecoveries,
}

impl Deployment {
    /// Builds a deployment over `topology` with `users_per_host[i]` users on
    /// the i-th host (topology node order). User names are
    /// `<region>.<host>.u<k>` from the topology's display names.
    ///
    /// Authority lists come from the §3.1.1 assignment: each user's primary
    /// is their assigned server; secondaries are the next-cheapest servers
    /// *for their host* at the balanced loads.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no hosts/servers or the population
    /// slice is misaligned — the same conditions as
    /// [`AssignmentProblem::from_topology`].
    pub fn build(topology: &Topology, users_per_host: &[u32], cfg: &DeploymentConfig) -> Self {
        let problem = AssignmentProblem::from_topology(
            topology,
            users_per_host,
            cfg.server_spec,
            cfg.cost_model,
        );
        let (assignment, _report) = solve(&problem, cfg.balance);

        let mut transport = Transport::new(topology.graph());
        let mut sim: ActorSim<MailMsg> = ActorSim::new(cfg.seed);
        let stats: SharedStats = Rc::new(RefCell::new(DeliveryStats::default()));
        let spans: SharedSpans = Rc::new(RefCell::new(SpanLog::disabled()));
        let id_gen = Rc::new(RefCell::new(MessageIdGen::new()));
        let redirects = Rc::new(RefCell::new(crate::migrate::RedirectTable::new()));
        let recoveries: SharedRecoveries = Rc::new(RefCell::new(Vec::new()));
        // One shared stand-in transport until the fully-bound one exists.
        let placeholder_transport = Rc::new(Transport::new(topology.graph()));

        // Directory + region naming: region token is "r<id>".
        let mut directory = Directory::new();
        for r in topology.region_ids() {
            directory.map_region(&format!("r{}", r.0), r);
        }

        let server_nodes: Vec<NodeId> = problem.servers.iter().map(|(n, _)| *n).collect();
        let host_nodes: Vec<NodeId> = problem.hosts.iter().map(|h| h.node).collect();

        // Register users and build authority lists.
        let mut users: BTreeMap<MailName, NodeId> = BTreeMap::new();
        for (i, &host) in host_nodes.iter().enumerate() {
            let per_user_server = assignment.server_of_users(i);
            let ranking = crate::assign::server_ranking(&problem, &assignment, i);
            for (k, &primary_idx) in per_user_server.iter().enumerate() {
                let name = MailName::new(
                    &format!("r{}", topology.region(host).0),
                    topology.name(host),
                    &format!("u{k}"),
                )
                .expect("generated names are valid");
                let mut list = vec![server_nodes[primary_idx]];
                for &j in &ranking {
                    if list.len() >= cfg.authority_list_len.max(1) {
                        break;
                    }
                    if j != primary_idx {
                        list.push(server_nodes[j]);
                    }
                }
                directory
                    .register(name.clone(), host, AuthorityList::new(list))
                    .expect("unique generated names");
                users.insert(name, host);
            }
        }

        // Per-server views and region tables.
        let views = directory.partition(&server_nodes);
        let mut region_servers: BTreeMap<RegionId, Vec<NodeId>> = BTreeMap::new();
        for &s in &server_nodes {
            region_servers
                .entry(topology.region(s))
                .or_default()
                .push(s);
        }
        let mut region_index_by_region: BTreeMap<RegionId, BTreeMap<MailName, AuthorityList>> =
            BTreeMap::new();
        let mut home_hosts_by_region: BTreeMap<RegionId, BTreeMap<MailName, NodeId>> =
            BTreeMap::new();
        for rec in directory.iter() {
            let region = topology.region(rec.home_host);
            region_index_by_region
                .entry(region)
                .or_default()
                .insert(rec.name.clone(), rec.authorities.clone());
            home_hosts_by_region
                .entry(region)
                .or_default()
                .insert(rec.name.clone(), rec.home_host);
        }

        // Spawn server actors.
        let mut server_actors = BTreeMap::new();
        for &s in &server_nodes {
            let region = topology.region(s);
            let resolver = SyntaxResolver::new(
                s,
                region,
                views[&s].clone(),
                region_index_by_region
                    .get(&region)
                    .cloned()
                    .unwrap_or_default(),
                region_servers.clone(),
            );
            let actor = ServerActor {
                node: s,
                transport: Rc::clone(&placeholder_transport), // replaced below
                resolver,
                store: lems_store::make_store(&cfg.durability),
                last_start_time: SimTime::ZERO,
                proc_time: cfg.server_spec.proc_time,
                stats: Rc::clone(&stats),
                forwards: BTreeMap::new(),
                home_hosts: home_hosts_by_region
                    .get(&region)
                    .cloned()
                    .unwrap_or_default(),
                redirects: Rc::clone(&redirects),
                retry: cfg.session.retry,
                reliable_retrieval: cfg.session.reliable_retrieval,
                spans: Rc::clone(&spans),
                recoveries: Rc::clone(&recoveries),
                metrics: MetricsRegistry::new(),
            };
            let id = sim.add_actor(actor);
            transport.bind(s, id);
            server_actors.insert(s, id);
        }

        // Spawn host actors.
        let mut host_actors = BTreeMap::new();
        for &h in &host_nodes {
            let mut ui_users = BTreeMap::new();
            for (name, &home) in &users {
                if home == h {
                    // Every user in `users` was registered in the loop above.
                    let Some(rec) = directory.by_name(name) else {
                        continue;
                    };
                    ui_users.insert(
                        name.clone(),
                        UiUser {
                            authorities: rec.authorities.clone(),
                            last_checking_time: SimTime::ZERO,
                            previously_unavailable: BTreeSet::new(),
                            retrieval: None,
                            pending_check: false,
                        },
                    );
                }
            }
            let actor = HostActor {
                node: h,
                transport: Rc::clone(&placeholder_transport), // replaced below
                users: ui_users,
                submits: BTreeMap::new(),
                id_gen: Rc::clone(&id_gen),
                stats: Rc::clone(&stats),
                timer_purpose: BTreeMap::new(),
                alerts: BTreeMap::new(),
                server_proc: cfg.server_spec.proc_time,
                retry: cfg.session.retry,
                spans: Rc::clone(&spans),
                metrics: MetricsRegistry::new(),
            };
            let id = sim.add_actor(actor);
            transport.bind(h, id);
            host_actors.insert(h, id);
        }

        // Now that all bindings exist, share the final transport.
        let transport = Rc::new(transport);
        for (&_node, &aid) in &server_actors {
            if let Some(a) = sim.actor_mut::<ServerActor>(aid) {
                a.transport = Rc::clone(&transport);
            }
        }
        for (&_node, &aid) in &host_actors {
            if let Some(a) = sim.actor_mut::<HostActor>(aid) {
                a.transport = Rc::clone(&transport);
            }
        }

        let host_region = host_nodes
            .iter()
            .map(|&h| (h, topology.region(h)))
            .collect();
        let host_names = host_nodes
            .iter()
            .map(|&h| (h, topology.name(h).to_owned()))
            .collect();
        Deployment {
            sim,
            transport,
            directory,
            stats,
            users,
            host_actors,
            host_region,
            host_names,
            server_actors,
            assignment,
            problem,
            redirects,
            spans,
            recoveries,
        }
    }

    /// Turns on lifecycle-span recording (unbounded). Call before
    /// injecting workload; spans recorded from then on are shared with
    /// every actor through [`Deployment::spans`]. Recording is pure
    /// bookkeeping — no RNG draws, no scheduled events — so enabling it
    /// cannot change the simulation's behaviour.
    pub fn enable_spans(&mut self) {
        *self.spans.borrow_mut() = SpanLog::unbounded();
    }

    /// Per-actor metrics registries, keyed `server:n<node>` / `host:n<node>`
    /// in deterministic (BTreeMap node) order.
    pub fn metrics_snapshot(&self) -> Vec<(String, MetricsRegistry)> {
        let mut out = Vec::new();
        for (&node, &aid) in &self.server_actors {
            if let Some(s) = self.sim.actor::<ServerActor>(aid) {
                out.push((format!("server:n{}", node.0), s.metrics.clone()));
            }
        }
        for (&node, &aid) in &self.host_actors {
            if let Some(h) = self.sim.actor::<HostActor>(aid) {
                out.push((format!("host:n{}", node.0), h.metrics.clone()));
            }
        }
        out
    }

    /// Per-server store durability metrics, keyed `server:n<node>` in
    /// deterministic (BTreeMap node) order. Servers whose backend reports
    /// nothing (the all-zero default of volatile stores) are skipped, so
    /// a fully volatile deployment exports no store-metrics lines.
    pub fn store_metrics_snapshot(&self) -> Vec<(String, StoreMetrics)> {
        let mut out = Vec::new();
        for (&node, &aid) in &self.server_actors {
            if let Some(s) = self.sim.actor::<ServerActor>(aid) {
                let m = s.store.store_metrics();
                if m != StoreMetrics::default() {
                    out.push((format!("server:n{}", node.0), m));
                }
            }
        }
        out
    }

    /// Every per-actor registry folded into one fleet-wide aggregate:
    /// counters add and histograms merge bucket-wise; per-server gauges
    /// stay in [`Deployment::metrics_snapshot`] (a time-average has no
    /// meaning summed across servers).
    pub fn merged_metrics(&self) -> MetricsRegistry {
        let mut merged = MetricsRegistry::new();
        for (_, registry) in self.metrics_snapshot() {
            merged.merge(&registry);
        }
        merged
    }

    /// Performs the §3.1.4 migration *live*: renames the user in the
    /// directory, installs a redirect for `redirect_ttl`, moves the user's
    /// mailbox-access state to the new host's user interface, and updates
    /// every server's resolution tables. Mail subsequently sent to the old
    /// name is redirected and delivered under the new name until the
    /// redirect expires.
    ///
    /// The user keeps their authority servers (the paper allows
    /// reassignment as a separate step).
    ///
    /// # Errors
    ///
    /// Returns the directory error (unknown old name, taken new name)
    /// without touching any actor state.
    /// `new_user_token` overrides the user component at the new location
    /// (needed when the old token is already taken on the destination
    /// host); `None` keeps it.
    pub fn migrate_user_live(
        &mut self,
        old_name: &MailName,
        new_host: NodeId,
        new_user_token: Option<&str>,
        redirect_ttl: SimDuration,
    ) -> Result<MailName, lems_core::directory::DirectoryError> {
        let rec = self
            .directory
            .by_name(old_name)
            .ok_or_else(|| lems_core::directory::DirectoryError::UnknownName(old_name.clone()))?
            .clone();
        let region_token = format!("r{}", {
            // Region of the destination host, via any server's resolver
            // view being unnecessary: the topology region is encoded in
            // host actor placement; reuse the transport's node mapping by
            // asking the directory's region map in reverse is overkill —
            // the caller-visible name keeps the convention
            // r<region>.<host>.<user> via the node's display name.
            self.host_region
                .get(&new_host)
                .copied()
                .ok_or_else(|| lems_core::directory::DirectoryError::UnknownName(old_name.clone()))?
                .0
        });
        let host_token =
            self.host_names.get(&new_host).cloned().ok_or_else(|| {
                lems_core::directory::DirectoryError::UnknownName(old_name.clone())
            })?;

        let now = self.sim.now();
        let outcome = if let Some(tok) = new_user_token {
            // Inline variant of migrate_user with a token change.
            let new_name = MailName::new(&region_token, &host_token, tok)
                .map_err(|_| lems_core::directory::DirectoryError::UnknownName(old_name.clone()))?;
            self.directory
                .register(new_name.clone(), new_host, rec.authorities.clone())?;
            self.directory.unregister(old_name)?;
            self.redirects.borrow_mut().insert(
                old_name.clone(),
                new_name.clone(),
                now + redirect_ttl,
            );
            crate::migrate::MigrationOutcome {
                old_name: old_name.clone(),
                new_name,
                redirect_expires_at: now + redirect_ttl,
            }
        } else {
            crate::migrate::migrate_user(
                &mut self.directory,
                &mut self.redirects.borrow_mut(),
                old_name,
                &region_token,
                &host_token,
                new_host,
                rec.authorities.clone(),
                now,
                redirect_ttl,
            )?
        };
        let new_name = outcome.new_name.clone();

        // Server-side tables: retire the old name, install the new one.
        let server_ids: Vec<ActorId> = self.server_actors.values().copied().collect();
        let new_rec = self
            .directory
            .by_name(&new_name)
            .ok_or_else(|| lems_core::directory::DirectoryError::UnknownName(new_name.clone()))?
            .clone();
        for aid in server_ids {
            if let Some(server) = self.sim.actor_mut::<ServerActor>(aid) {
                server.resolver.remove_regional(old_name);
                server.resolver.view_mut().remove(old_name);
                server
                    .resolver
                    .upsert_regional(new_name.clone(), new_rec.authorities.clone());
                if new_rec.authorities.contains(server.node) {
                    server.resolver.view_mut().upsert(new_rec.clone());
                }
                server.home_hosts.remove(old_name);
                server.home_hosts.insert(new_name.clone(), new_host);
            }
        }

        // UI side: move the user's interface state to the new host actor.
        let moved = self.users.remove(old_name).and_then(|old_host| {
            let old_aid = self.host_actors[&old_host];
            self.sim
                .actor_mut::<HostActor>(old_aid)
                .and_then(|h| h.users.remove(old_name))
        });
        if let Some(mut ui) = moved {
            // The move is also a fresh start for retrieval bookkeeping.
            ui.retrieval = None;
            ui.pending_check = false;
            let new_aid = self.host_actors[&new_host];
            if let Some(h) = self.sim.actor_mut::<HostActor>(new_aid) {
                h.users.insert(new_name.clone(), ui);
            }
        }
        self.users.insert(new_name.clone(), new_host);

        Ok(new_name)
    }

    /// All user names, ordered.
    pub fn user_names(&self) -> Vec<MailName> {
        self.users.keys().cloned().collect()
    }

    /// The actor simulating `server`.
    pub fn server_actor(&self, server: NodeId) -> Option<ActorId> {
        self.server_actors.get(&server).copied()
    }

    /// The actor simulating `host`.
    pub fn host_actor(&self, host: NodeId) -> Option<ActorId> {
        self.host_actors.get(&host).copied()
    }

    /// Injects a send at `at` (absolute simulated time).
    ///
    /// # Panics
    ///
    /// Panics if the sender is unknown.
    pub fn send_at(&mut self, at: SimTime, from: &MailName, to: &MailName) {
        let host = *self.users.get(from).expect("unknown sender");
        let actor = self.host_actors[&host];
        let delay = at.duration_since(self.sim.now());
        self.sim.inject(
            actor,
            MailMsg::DoSend {
                from: from.clone(),
                to: to.clone(),
            },
            delay,
        );
    }

    /// Injects a mail check at `at`.
    ///
    /// # Panics
    ///
    /// Panics if the user is unknown.
    pub fn check_at(&mut self, at: SimTime, user: &MailName) {
        let host = *self.users.get(user).expect("unknown user");
        let actor = self.host_actors[&host];
        let delay = at.duration_since(self.sim.now());
        self.sim
            .inject(actor, MailMsg::DoCheck { user: user.clone() }, delay);
    }

    /// Applies a failure plan expressed over *server nodes* (host actors
    /// never fail in System-1 experiments).
    pub fn apply_server_failures(&mut self, plan: &ServerFailurePlan) {
        for (server, outages) in &plan.outages {
            let actor = self.server_actors[server];
            for &(down, up) in outages {
                self.sim.schedule_crash(actor, down);
                self.sim.schedule_recover(actor, up);
            }
        }
    }

    /// Applies a node-addressed chaos plan: installs a [`LinkFaultPlan`] on
    /// the engine (stochastic loss/duplication/jitter on every wire send)
    /// and schedules the requested partitions, cutting every cross-group
    /// actor pair. Partitions are additionally mirrored onto the transport's
    /// link-outage table for *adjacent* node pairs so that topology-level
    /// queries ([`Transport::reachable`]) agree with the engine's view.
    pub fn apply_link_chaos(&mut self, chaos: &LinkChaos) -> Result<(), ChaosError> {
        let mut plan = LinkFaultPlan::new()
            .with_default_profile(chaos.profile)
            .with_stochastic_horizon(chaos.stochastic_horizon);
        for part in &chaos.partitions {
            let group_a = self.actors_of(&part.side_a)?;
            let group_b = self.actors_of(&part.side_b)?;
            plan.add_partition(&group_a, &group_b, part.down_at, part.up_at)?;
            for &a in &part.side_a {
                for &b in &part.side_b {
                    let outage = Outage::new(part.down_at, part.up_at)?;
                    match self.transport.add_link_outage_bidi(a, b, outage) {
                        Ok(()) | Err(NetError::NotAdjacent(..)) => {}
                        Err(e) => return Err(ChaosError::Net(e)),
                    }
                }
            }
        }
        self.sim.set_link_faults(plan);
        Ok(())
    }

    fn actors_of(&self, nodes: &[NodeId]) -> Result<Vec<ActorId>, ChaosError> {
        nodes
            .iter()
            .map(|&n| self.transport.actor_of(n).map_err(ChaosError::Net))
            .collect()
    }

    /// Debug dump: every message still stored, as
    /// `(server node, owner, message id, owner's authority list)`.
    pub fn stranded_mail(&self) -> Vec<(NodeId, MailName, MessageId, Vec<NodeId>)> {
        let mut out = Vec::new();
        for (&node, &aid) in &self.server_actors {
            if let Some(s) = self.sim.actor::<ServerActor>(aid) {
                for (owner, mb) in s.store.mailboxes() {
                    for stored in mb.peek() {
                        let auth = self
                            .directory
                            .by_name(owner)
                            .map(|r| r.authorities.servers().to_vec())
                            .unwrap_or_default();
                        out.push((node, owner.clone(), stored.message.id, auth));
                    }
                }
                // Drained-but-unacked mail is still the server's to lose.
                for (owner, pending) in s.store.pending_drain() {
                    for message in pending {
                        let auth = self
                            .directory
                            .by_name(owner)
                            .map(|r| r.authorities.servers().to_vec())
                            .unwrap_or_default();
                        out.push((node, owner.clone(), message.id, auth));
                    }
                }
            }
        }
        out
    }

    /// Messages still sitting in server storage (mailboxes plus the
    /// drained-but-unacked reserve buffers).
    pub fn mail_in_storage(&self) -> usize {
        self.server_actors
            .values()
            .filter_map(|&aid| self.sim.actor::<ServerActor>(aid))
            .map(|s| {
                s.store
                    .mailboxes()
                    .values()
                    .map(Mailbox::len)
                    .sum::<usize>()
                    + s.store
                        .pending_drain()
                        .values()
                        .map(Vec::len)
                        .sum::<usize>()
            })
            .sum()
    }

    /// Persists and re-opens every server's store, as a clean
    /// close-and-restart of the storage layer (no crash: everything is
    /// synced first). Returns how many servers actually round-tripped —
    /// in-memory backends have nothing to persist and report `0`.
    ///
    /// This is the determinism probe for the durability layer: a run's
    /// trace digest must be identical with and without a mid-run
    /// persist/restore, because recovery replay reconstructs the exact
    /// pre-restart state.
    pub fn persist_restore_stores(&mut self) -> usize {
        let mut restored = 0;
        let aids: Vec<ActorId> = self.server_actors.values().copied().collect();
        for aid in aids {
            if let Some(s) = self.sim.actor_mut::<ServerActor>(aid) {
                if s.store.persist_restore().is_some() {
                    restored += 1;
                }
            }
        }
        restored
    }

    /// Total WAL bytes currently on every server's segment device
    /// (`0` for in-memory backends).
    pub fn wal_bytes(&self) -> u64 {
        self.server_actors
            .values()
            .filter_map(|&aid| self.sim.actor::<ServerActor>(aid))
            .map(|s| s.store.wal_bytes())
            .sum()
    }
}

/// One scheduled network partition: every link between a node on `side_a`
/// and a node on `side_b` is cut over `[down_at, up_at)`.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Nodes on one side of the cut.
    pub side_a: Vec<NodeId>,
    /// Nodes on the other side.
    pub side_b: Vec<NodeId>,
    /// When the partition begins.
    pub down_at: SimTime,
    /// When the partition heals.
    pub up_at: SimTime,
}

/// A node-addressed chaos plan for [`Deployment::apply_link_chaos`]:
/// stochastic link faults on every wire send plus scheduled partitions.
#[derive(Clone, Debug)]
pub struct LinkChaos {
    /// Loss/duplication/jitter applied to every link.
    pub profile: LinkProfile,
    /// Stochastic faults cease at this time so runs can drain cleanly
    /// (scheduled partitions are unaffected).
    pub stochastic_horizon: SimTime,
    /// Scheduled partitions (repeat with different windows to flap).
    pub partitions: Vec<Partition>,
}

impl LinkChaos {
    /// A chaos plan with the given stochastic profile, active until
    /// `stochastic_horizon`, and no partitions.
    pub fn new(profile: LinkProfile, stochastic_horizon: SimTime) -> Self {
        LinkChaos {
            profile,
            stochastic_horizon,
            partitions: Vec::new(),
        }
    }

    /// Adds a partition window between two node groups.
    pub fn partition(
        mut self,
        side_a: Vec<NodeId>,
        side_b: Vec<NodeId>,
        down_at: SimTime,
        up_at: SimTime,
    ) -> Self {
        self.partitions.push(Partition {
            side_a,
            side_b,
            down_at,
            up_at,
        });
        self
    }
}

/// Why a chaos plan could not be applied.
#[derive(Clone, Debug, PartialEq)]
pub enum ChaosError {
    /// A node in the plan is unknown to (or unbound in) the transport.
    Net(NetError),
    /// An outage window or probability in the plan is invalid.
    Failure(FailureError),
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosError::Net(e) => write!(f, "chaos plan rejected by transport: {e}"),
            ChaosError::Failure(e) => write!(f, "chaos plan invalid: {e}"),
        }
    }
}

impl std::error::Error for ChaosError {}

impl From<NetError> for ChaosError {
    fn from(e: NetError) -> Self {
        ChaosError::Net(e)
    }
}

impl From<FailureError> for ChaosError {
    fn from(e: FailureError) -> Self {
        ChaosError::Failure(e)
    }
}

/// Outages keyed by server node (a thin, node-addressed wrapper around the
/// engine's actor-addressed failure scheduling).
#[derive(Clone, Debug, Default)]
pub struct ServerFailurePlan {
    /// Server node -> list of (down_at, up_at).
    pub outages: BTreeMap<NodeId, Vec<(SimTime, SimTime)>>,
}

impl ServerFailurePlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an outage.
    ///
    /// # Panics
    ///
    /// Panics if `up <= down`.
    pub fn add(&mut self, server: NodeId, down: SimTime, up: SimTime) {
        assert!(up > down, "outage must end after it starts");
        self.outages.entry(server).or_default().push((down, up));
    }

    /// Random outages for the given servers (exponential MTBF/MTTR),
    /// mirroring [`lems_sim::failure::FailurePlan::random`].
    pub fn random(
        rng: &mut lems_sim::rng::SimRng,
        servers: &[NodeId],
        mtbf: SimDuration,
        mttr: SimDuration,
        horizon: SimTime,
    ) -> Self {
        let mut plan = Self::new();
        for &s in servers {
            let mut t = SimTime::ZERO + rng.exp_duration(mtbf);
            while t < horizon {
                let up = t + rng.exp_duration(mttr);
                plan.add(s, t, up);
                t = up + rng.exp_duration(mtbf);
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lems_net::generators::fig1;

    /// Every test scenario quiesces far below this; exhausting it means
    /// a stuck retry loop, which must fail the test rather than hang it.
    const EVENT_BUDGET: u64 = 2_000_000;

    fn t(u: f64) -> SimTime {
        SimTime::from_units(u)
    }

    fn small_deployment(seed: u64) -> Deployment {
        let f = fig1();
        // Small population to keep tests brisk: 2 users/host.
        Deployment::build(
            &f.topology,
            &[2, 2, 2, 2, 2, 2],
            &DeploymentConfig {
                seed,
                ..DeploymentConfig::default()
            },
        )
    }

    #[test]
    fn build_registers_users_with_authority_lists() {
        let d = small_deployment(1);
        let names = d.user_names();
        assert_eq!(names.len(), 12);
        for n in &names {
            let rec = d.directory.by_name(n).unwrap();
            assert_eq!(rec.authorities.len(), 3);
        }
    }

    #[test]
    fn simple_send_deposit_retrieve_cycle() {
        let mut d = small_deployment(2);
        let names = d.user_names();
        let (alice, bob) = (names[0].clone(), names[5].clone());
        d.send_at(t(1.0), &alice, &bob);
        d.check_at(t(50.0), &bob);
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));

        let st = d.stats.borrow();
        assert_eq!(st.submitted, 1);
        assert_eq!(st.deposited, 1);
        assert_eq!(st.retrieved, 1);
        assert_eq!(st.bounced, 0);
        assert_eq!(st.outstanding(), 0);
        assert!(st.end_to_end.mean() > 0.0);
        assert_eq!(d.mail_in_storage(), 0);
    }

    #[test]
    fn notification_reaches_recipient_host() {
        let mut d = small_deployment(3);
        let names = d.user_names();
        let (alice, bob) = (names[0].clone(), names[7].clone());
        d.send_at(t(1.0), &alice, &bob);
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));
        let host = *d.users.get(&bob).unwrap();
        let actor = d.host_actor(host).unwrap();
        let h: &HostActor = d.sim.actor(actor).unwrap();
        assert_eq!(h.alerts.get(&bob).copied(), Some(1));
    }

    #[test]
    fn steady_state_check_costs_one_poll() {
        let mut d = small_deployment(4);
        let names = d.user_names();
        let user = names[0].clone();
        // First check exhausts the list; later checks poll once.
        for i in 1..=5 {
            d.check_at(t(i as f64 * 20.0), &user);
        }
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));
        let st = d.stats.borrow();
        assert_eq!(st.retrieval_polls.count(), 5);
        // First = 3 polls, remaining 4 = 1 poll -> mean = (3+4)/5 = 1.4
        assert!((st.retrieval_polls.mean() - 1.4).abs() < 1e-9);
        assert_eq!(st.retrieval_polls.min(), Some(1.0));
    }

    #[test]
    fn submission_fails_over_to_secondary_when_primary_down() {
        let mut d = small_deployment(5);
        let names = d.user_names();
        let (alice, bob) = (names[0].clone(), names[1].clone());
        let primary = d.directory.by_name(&alice).unwrap().authorities.primary();

        let mut plan = ServerFailurePlan::new();
        plan.add(primary, t(0.5), t(100.0));
        d.apply_server_failures(&plan);

        d.send_at(t(1.0), &alice, &bob);
        d.sim.run_until(t(90.0));
        {
            let st = d.stats.borrow();
            assert_eq!(st.submitted, 1);
            assert!(
                st.submit_attempts >= 2,
                "expected retry after primary timeout, got {}",
                st.submit_attempts
            );
            assert_eq!(st.bounced, 0);
        }
        // Bob checks after the dust settles; mail must be retrievable.
        d.check_at(t(120.0), &bob);
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));
        let st = d.stats.borrow();
        assert_eq!(st.retrieved, 1);
        assert_eq!(st.outstanding(), 0);
    }

    #[test]
    fn unknown_recipient_bounces() {
        let mut d = small_deployment(6);
        let names = d.user_names();
        let alice = names[0].clone();
        let ghost: MailName = "r0.H1.ghost".parse().unwrap();
        d.send_at(t(1.0), &alice, &ghost);
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));
        let st = d.stats.borrow();
        assert_eq!(st.bounced, 1);
        assert_eq!(
            st.ledger_bounced.values().next(),
            Some(&BounceReason::UnknownRecipient)
        );
    }

    #[test]
    fn unknown_region_bounces() {
        let mut d = small_deployment(7);
        let names = d.user_names();
        let alice = names[0].clone();
        let ghost: MailName = "r999.H1.ghost".parse().unwrap();
        d.send_at(t(1.0), &alice, &ghost);
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));
        assert_eq!(d.stats.borrow().bounced, 1);
    }

    #[test]
    fn deterministic_runs() {
        fn run(seed: u64) -> (u64, u64, SimTime) {
            let mut d = small_deployment(seed);
            let names = d.user_names();
            for i in 0..names.len() {
                d.send_at(t(1.0 + i as f64), &names[i], &names[(i + 3) % names.len()]);
                d.check_at(t(100.0 + i as f64), &names[(i + 3) % names.len()]);
            }
            assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));
            let st = d.stats.borrow();
            (st.retrieved, st.deposited, d.sim.now())
        }
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn duplicate_forwards_deposit_once() {
        let mut d = small_deployment(11);
        let names = d.user_names();
        let (alice, bob) = (names[0].clone(), names[1].clone());
        let primary = d.directory.by_name(&bob).unwrap().authorities.primary();
        let server_actor = d.server_actor(primary).unwrap();

        d.send_at(t(1.0), &alice, &bob);
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));
        assert_eq!(d.stats.borrow().deposited, 1);

        // Replay the delivered message as a stray duplicate Forward.
        let stored = d.stranded_mail();
        assert_eq!(stored.len(), 1);
        let dup = {
            let s: &ServerActor = d.sim.actor(server_actor).unwrap();
            s.store.mailboxes()[&bob].peek()[0].message.clone()
        };
        d.sim.inject(
            server_actor,
            MailMsg::Forward {
                msg: dup,
                reply_to: primary,
                hops_left: 4,
            },
            SimDuration::from_units(1.0),
        );
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));
        assert_eq!(d.stats.borrow().deposited, 1, "duplicate suppressed");
        assert_eq!(d.mail_in_storage(), 1);
    }

    #[test]
    fn live_migration_redirects_old_name_mail() {
        let mut d = small_deployment(12);
        let names = d.user_names();
        let (alice, bob_old) = (names[0].clone(), names[4].clone());
        let old_host = *d.users.get(&bob_old).unwrap();

        // Migrate bob to a different host at t=0.
        let f = lems_net::generators::fig1();
        let new_host = *f.topology.hosts().iter().find(|&&h| h != old_host).unwrap();
        let bob_new = d
            .migrate_user_live(
                &bob_old,
                new_host,
                Some("bob-moved"),
                SimDuration::from_units(500.0),
            )
            .unwrap();
        assert_ne!(bob_new, bob_old);
        assert!(!d.directory.is_registered(&bob_old));

        // Alice still writes to the old address; the mail must arrive
        // under the new name.
        d.send_at(t(1.0), &alice, &bob_old);
        d.check_at(t(60.0), &bob_new);
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));

        let st = d.stats.borrow();
        assert_eq!(st.bounced, 0, "old-name mail must redirect, not bounce");
        assert_eq!(st.retrieved, 1);
        assert_eq!(st.outstanding(), 0);
        drop(st);
        // The sender-notification side effect fired.
        assert_eq!(d.redirects.borrow().notification_count(&bob_old), 1);
    }

    #[test]
    fn expired_redirect_bounces_old_name_mail() {
        let mut d = small_deployment(13);
        let names = d.user_names();
        let (alice, bob_old) = (names[0].clone(), names[4].clone());
        let old_host = *d.users.get(&bob_old).unwrap();
        let f = lems_net::generators::fig1();
        let new_host = *f.topology.hosts().iter().find(|&&h| h != old_host).unwrap();
        let _ = d
            .migrate_user_live(
                &bob_old,
                new_host,
                Some("bob-moved"),
                SimDuration::from_units(10.0),
            )
            .unwrap();
        // Mail sent long after the redirect expired.
        d.send_at(t(100.0), &alice, &bob_old);
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));
        let st = d.stats.borrow();
        assert_eq!(st.bounced, 1);
        assert_eq!(
            st.ledger_bounced.values().next(),
            Some(&BounceReason::UnknownRecipient)
        );
    }

    #[test]
    fn mail_survives_primary_crash_after_deposit() {
        let mut d = small_deployment(10);
        let names = d.user_names();
        let (alice, bob) = (names[2].clone(), names[3].clone());
        let primary = d.directory.by_name(&bob).unwrap().authorities.primary();

        d.send_at(t(1.0), &alice, &bob);
        // Crash the primary long after deposit, recover later; the mailbox
        // is stable storage, so the mail is still there.
        let mut plan = ServerFailurePlan::new();
        plan.add(primary, t(20.0), t(40.0));
        d.apply_server_failures(&plan);
        d.check_at(t(50.0), &bob);
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));
        let st = d.stats.borrow();
        assert_eq!(st.retrieved, 1);
        assert_eq!(st.outstanding(), 0);
    }

    #[test]
    fn lossy_links_deliver_everything_via_retries() {
        let mut d = small_deployment(21);
        let names = d.user_names();
        let chaos = LinkChaos::new(
            LinkProfile::new(0.2, 0.05, SimDuration::from_units(1.0)).unwrap(),
            t(150.0),
        );
        d.apply_link_chaos(&chaos).unwrap();

        for i in 0..6 {
            d.send_at(t(1.0 + i as f64), &names[i], &names[(i + 5) % names.len()]);
        }
        // Checks run after the stochastic horizon: the wire is clean again,
        // so this isolates the *delivery* path's fault tolerance.
        for i in 0..6 {
            d.check_at(t(200.0 + i as f64), &names[(i + 5) % names.len()]);
        }
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));

        let st = d.stats.borrow();
        assert_eq!(st.submitted, 6);
        assert_eq!(st.deposited, 6, "session layer must mask 20% loss");
        assert_eq!(st.retrieved, 6);
        assert_eq!(st.bounced, 0);
        assert_eq!(st.outstanding(), 0);
        assert!(
            st.retransmits > 0,
            "a 20% lossy wire must force at least one retransmission"
        );
        drop(st);
        assert_eq!(d.mail_in_storage(), 0);
        assert!(d.sim.counters().dropped_link.get() > 0);
    }

    /// A lost `RetrieveReply` must not lose mail: the server keeps drained
    /// messages in the reserve buffer until the host acknowledges them.
    #[test]
    fn dropped_retrieve_reply_does_not_lose_mail() {
        let mut d = small_deployment(22);
        let names = d.user_names();
        let (alice, bob) = (names[0].clone(), names[1].clone());
        let primary = d.directory.by_name(&bob).unwrap().authorities.primary();
        let server = d.server_actor(primary).unwrap();
        let host = d.host_actor(*d.users.get(&bob).unwrap()).unwrap();

        // Deliver cleanly, then make the server->host direction drop every
        // message until t=100: Retrieves arrive, replies vanish.
        d.send_at(t(1.0), &alice, &bob);
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));
        assert_eq!(d.stats.borrow().deposited, 1);

        let mut plan = LinkFaultPlan::new().with_stochastic_horizon(t(100.0));
        plan.set_link_profile(
            server,
            host,
            LinkProfile::new(1.0, 0.0, SimDuration::ZERO).unwrap(),
        );
        d.sim.set_link_faults(plan);

        // This check's replies are all eaten; the session retries, gives
        // up, and the mail stays in server storage.
        d.check_at(t(20.0), &bob);
        // A later check, after the horizon, must recover it.
        d.check_at(t(200.0), &bob);
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));

        let st = d.stats.borrow();
        assert_eq!(st.retrieved, 1, "mail must survive dropped replies");
        assert_eq!(st.outstanding(), 0);
        assert!(st.retransmits > 0, "dropped replies must trigger retries");
        drop(st);
        assert_eq!(d.mail_in_storage(), 0);
    }

    /// The same dropped-reply scenario under [`SessionConfig::legacy`]
    /// demonstrably loses the mail — proof the session layer (not luck)
    /// provides the guarantee above.
    #[test]
    fn legacy_session_loses_mail_on_dropped_reply() {
        let f = fig1();
        let mut d = Deployment::build(
            &f.topology,
            &[2, 2, 2, 2, 2, 2],
            &DeploymentConfig {
                seed: 22,
                session: SessionConfig::legacy(),
                ..DeploymentConfig::default()
            },
        );
        let names = d.user_names();
        let (alice, bob) = (names[0].clone(), names[1].clone());
        let primary = d.directory.by_name(&bob).unwrap().authorities.primary();
        let server = d.server_actor(primary).unwrap();
        let host = d.host_actor(*d.users.get(&bob).unwrap()).unwrap();

        d.send_at(t(1.0), &alice, &bob);
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));
        assert_eq!(d.stats.borrow().deposited, 1);

        let mut plan = LinkFaultPlan::new().with_stochastic_horizon(t(100.0));
        plan.set_link_profile(
            server,
            host,
            LinkProfile::new(1.0, 0.0, SimDuration::ZERO).unwrap(),
        );
        d.sim.set_link_faults(plan);

        d.check_at(t(20.0), &bob);
        d.check_at(t(200.0), &bob);
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));

        let st = d.stats.borrow();
        assert_eq!(
            st.retrieved, 0,
            "legacy destructive drain loses mail when the reply is dropped"
        );
        assert_eq!(st.outstanding(), 1, "the message is gone for good");
        drop(st);
        assert_eq!(d.mail_in_storage(), 0, "not in storage either: truly lost");
    }

    /// Identical seeds and chaos plans produce byte-identical traces.
    #[test]
    fn chaos_runs_are_deterministic() {
        fn run() -> (u64, u64, u64, SimTime) {
            let mut d = small_deployment(23);
            let chaos = LinkChaos::new(
                LinkProfile::new(0.1, 0.02, SimDuration::from_units(0.5)).unwrap(),
                t(120.0),
            );
            d.apply_link_chaos(&chaos).unwrap();
            let names = d.user_names();
            for i in 0..4 {
                d.send_at(t(1.0 + i as f64), &names[i], &names[i + 6]);
                d.check_at(t(150.0 + i as f64), &names[i + 6]);
            }
            assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));
            let st = d.stats.borrow();
            (
                st.retrieved,
                st.retransmits,
                d.sim.counters().dropped_link.get(),
                d.sim.now(),
            )
        }
        assert_eq!(run(), run());
    }

    /// One clean send + check produces a conserved span pair: the message
    /// span terminates in Retrieved, the check span in CheckDone, and the
    /// per-actor metrics agree with the global stats ledger.
    #[test]
    fn spans_conserve_on_clean_cycle() {
        let mut d = small_deployment(31);
        d.enable_spans();
        let names = d.user_names();
        let (alice, bob) = (names[0].clone(), names[5].clone());
        d.send_at(t(1.0), &alice, &bob);
        d.check_at(t(50.0), &bob);
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));

        let spans = d.spans.borrow();
        let report = lems_sim::span::audit_spans(&spans, true);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.opened, 2, "one message span + one check span");
        assert_eq!(report.retrieved, 1);
        assert_eq!(report.checks_done, 1);
        assert_eq!(report.bounced, 0);
        assert_eq!(report.retransmits, 0);

        let merged = d.merged_metrics();
        let st = d.stats.borrow();
        assert_eq!(merged.counter("submitted"), st.submitted);
        assert_eq!(merged.counter("deposited"), st.deposited);
        assert_eq!(merged.counter("retrieved"), st.retrieved);
        assert_eq!(merged.counter("retransmits"), st.retransmits);
        let lat = merged.histogram("delivery_latency").unwrap();
        assert_eq!(lat.count(), 1);
        assert!((lat.mean() - st.delivery_latency.mean()).abs() < 1e-9);
    }

    /// Session-layer retry accounting under a deterministic link-fault
    /// plan: a dead host->primary link forces exactly
    /// `max_attempts - 1` retransmissions before the submit fails over,
    /// and the span log's retry annotations match the stats ledger
    /// event-for-event.
    #[test]
    fn span_retries_match_link_fault_schedule() {
        let mut d = small_deployment(32);
        d.enable_spans();
        let names = d.user_names();
        let (alice, bob) = (names[0].clone(), names[1].clone());
        let primary = d.directory.by_name(&alice).unwrap().authorities.primary();
        let host_node = *d.users.get(&alice).unwrap();
        let host = d.host_actor(host_node).unwrap();
        let server = d.server_actor(primary).unwrap();

        // Every Submit to alice's primary vanishes until t=100; the
        // session layer must burn its whole per-server retry budget
        // before failing over to the secondary.
        let mut plan = LinkFaultPlan::new().with_stochastic_horizon(t(100.0));
        plan.set_link_profile(
            host,
            server,
            LinkProfile::new(1.0, 0.0, SimDuration::ZERO).unwrap(),
        );
        d.sim.set_link_faults(plan);

        d.send_at(t(1.0), &alice, &bob);
        d.check_at(t(200.0), &bob); // after the horizon: clean retrieval
        assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));

        let budget = RetryPolicy::default_session().max_attempts;
        let st = d.stats.borrow();
        assert_eq!(st.retrieved, 1);
        assert_eq!(
            st.retransmits,
            u64::from(budget - 1),
            "retry budget spent on the dead primary, none elsewhere"
        );

        let spans = d.spans.borrow();
        let report = lems_sim::span::audit_spans(&spans, true);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(
            report.retransmits, st.retransmits,
            "span retry annotations must match the stats ledger"
        );
        // The drop schedule is visible probe-by-probe: attempts 0..budget
        // to the dead primary, then a first-try probe to the secondary.
        let probes: Vec<(u64, u64)> = spans
            .events()
            .iter()
            .filter(|e| e.stage == SpanStage::Probe && e.span == SpanId(0))
            .map(|e| (e.peer, e.detail))
            .collect();
        let expected_primary = site(primary);
        assert!(probes.len() as u32 > budget);
        for (k, &(peer, attempt)) in probes.iter().take(budget as usize).enumerate() {
            assert_eq!(peer, expected_primary);
            assert_eq!(attempt, k as u64);
        }
        // The failover submit picks a different server, and after it every
        // hop (secondary submit, server-to-server forward) goes through on
        // its first try — only the host-to-primary link is faulted.
        assert_ne!(probes[budget as usize].0, expected_primary);
        for &(_, attempt) in &probes[budget as usize..] {
            assert_eq!(attempt, 0);
        }
    }

    /// Enabling spans must not change what the simulation does — same
    /// seed, same outcome, span recording or not.
    #[test]
    fn span_recording_does_not_perturb_the_run() {
        fn run(enable: bool) -> (u64, u64, u64, SimTime) {
            let mut d = small_deployment(33);
            if enable {
                d.enable_spans();
            }
            let chaos = LinkChaos::new(
                LinkProfile::new(0.08, 0.02, SimDuration::from_units(0.5)).unwrap(),
                t(120.0),
            );
            d.apply_link_chaos(&chaos).unwrap();
            let names = d.user_names();
            for i in 0..4 {
                d.send_at(t(1.0 + i as f64), &names[i], &names[i + 6]);
                d.check_at(t(150.0 + i as f64), &names[i + 6]);
            }
            assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));
            let st = d.stats.borrow();
            (
                st.retrieved,
                st.retransmits,
                d.sim.counters().dropped_link.get(),
                d.sim.now(),
            )
        }
        assert_eq!(run(false), run(true));
    }
}
