//! The server-assignment and load-balancing algorithm of §3.1.1.
//!
//! The algorithm assigns users (grouped by host) to mail servers so as to
//! (i) minimise user connection cost and (ii) balance expected load among
//! servers:
//!
//! 1. **Initialisation** — connection cost is computed "as a function of
//!    the communication time alone using the shortest-path zero-load
//!    algorithm"; all users on a host are assigned to the nearest server.
//!    (Reproduces Tables 1 and 3.)
//! 2. **Balancing** — repeatedly, for each host, pick the assigned server
//!    with the highest current connection cost (`S_max`) and the server
//!    with the lowest (`S_min`); tentatively move users from `S_max` to
//!    `S_min`, recompute costs, and undo the move if it did not improve the
//!    objective. Stop when a full pass makes no change. (Reproduces
//!    Table 2.)
//!
//! The objective being improved is the total connection cost
//! `Σ_ij A_ij · TC_ij`, which decomposes as
//! `W1·Σ_ij A_ij·C_ij + W2·Σ_j L_j·(Q(ρ_j) + z_j)` — the second term
//! depends only on per-server loads, which makes move evaluation O(1).
//!
//! The paper notes the algorithm "can be made much faster if in each
//! iteration more than one user is moved"; [`BalanceOptions::batch`]
//! implements that ablation.
//!
//! ## Scaling beyond the worked example
//!
//! [`balance`] re-evaluates the full objective on every tentative move —
//! `O(hosts × servers)` per transfer — which is perfect for auditing the
//! paper's 6-host example and hopeless at a million users. The scaled
//! solver ([`balance_sync`] / [`balance_par`], shared options in
//! [`ScaleOptions`]) runs *synchronous passes* instead:
//!
//! 1. **Evaluate** — against loads frozen at the start of the pass, each
//!    host independently proposes moving users off its most expensive
//!    current server to the destination with the best exact marginal
//!    cost change (a pure function, fanned out across threads by
//!    [`balance_par`]);
//! 2. **Merge** — proposals are applied in host-index order, each
//!    re-validated against *current* loads with an `O(1)` exact cost
//!    delta ([`transfer_delta`]) and dropped if it no longer improves
//!    the objective.
//!
//! Because evaluation is pure and the merge is sequential in a fixed
//! order, [`balance_par`] is byte-identical to [`balance_sync`] at any
//! thread count — `tests/assign_differential.rs` enforces this.

use lems_net::cost_matrix::CostMatrix;
use lems_net::graph::NodeId;
use lems_net::topology::{NodeKind, Topology};
use serde::{Deserialize, Serialize};

use crate::cost::{CostModel, ServerSpec};

/// Moves below this margin are treated as non-improving (guards against
/// float round-off oscillation); shared by the classic and scaled solvers.
const COST_EPS: f64 = 1e-12;

/// A host together with its user population (`N_i`).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HostSpec {
    /// The host's node in the topology.
    pub node: NodeId,
    /// Number of users on the host.
    pub users: u32,
}

/// An instance of the assignment problem.
#[derive(Clone, Debug)]
pub struct AssignmentProblem {
    /// Hosts with their populations.
    pub hosts: Vec<HostSpec>,
    /// Servers with their capacities and processing times.
    pub servers: Vec<(NodeId, ServerSpec)>,
    /// `C_ij`: zero-load shortest-path communication time (in units)
    /// between host `i` and server `j`, as a shared flat matrix.
    pub comm: CostMatrix,
    /// Cost constants.
    pub model: CostModel,
}

impl AssignmentProblem {
    /// Builds a problem from a topology: hosts/servers are taken from the
    /// topology (in node order), `C_ij` from all-pairs shortest paths, and
    /// every server gets the same `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `users_per_host` length differs from the topology's host
    /// count, if there are no servers, or if some host cannot reach some
    /// server.
    pub fn from_topology(
        topology: &Topology,
        users_per_host: &[u32],
        spec: ServerSpec,
        model: CostModel,
    ) -> Self {
        Self::from_matrix(
            topology,
            CostMatrix::build(topology),
            users_per_host,
            spec,
            model,
        )
    }

    /// Builds a problem around an already-computed [`CostMatrix`] — the
    /// scale path, where the matrix is built once and shared by
    /// assignment, reconfiguration, and GetMail authority lists.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shape does not match the topology's
    /// hosts × servers, plus the conditions of
    /// [`AssignmentProblem::from_topology`].
    pub fn from_matrix(
        topology: &Topology,
        comm: CostMatrix,
        users_per_host: &[u32],
        spec: ServerSpec,
        model: CostModel,
    ) -> Self {
        let host_nodes = topology.hosts();
        let server_nodes = topology.servers();
        assert_eq!(
            host_nodes.len(),
            users_per_host.len(),
            "users_per_host must align with the topology's hosts"
        );
        assert!(!server_nodes.is_empty(), "need at least one server");
        assert_eq!(
            (comm.host_count(), comm.server_count()),
            (host_nodes.len(), server_nodes.len()),
            "cost matrix shape must match the topology"
        );
        let validation = model.validate();
        assert!(validation.is_ok(), "invalid cost model: {validation:?}");

        AssignmentProblem {
            hosts: host_nodes
                .iter()
                .zip(users_per_host)
                .map(|(&node, &users)| HostSpec { node, users })
                .collect(),
            servers: server_nodes.into_iter().map(|n| (n, spec)).collect(),
            comm,
            model,
        }
    }

    /// Builds a problem where each server keeps its own spec, taken from
    /// `specs` aligned with the topology's servers.
    ///
    /// # Panics
    ///
    /// Same conditions as [`AssignmentProblem::from_topology`], plus a
    /// length mismatch between servers and `specs`.
    pub fn from_topology_with_specs(
        topology: &Topology,
        users_per_host: &[u32],
        specs: &[ServerSpec],
        model: CostModel,
    ) -> Self {
        let mut p = Self::from_topology(
            topology,
            users_per_host,
            specs
                .first()
                .copied()
                .unwrap_or_else(ServerSpec::paper_example),
            model,
        );
        assert_eq!(
            p.servers.len(),
            specs.len(),
            "specs must align with the topology's servers"
        );
        for ((_, s), &spec) in p.servers.iter_mut().zip(specs) {
            *s = spec;
        }
        p
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Total user population.
    pub fn total_users(&self) -> u32 {
        self.hosts.iter().map(|h| h.users).sum()
    }

    /// Total server capacity.
    pub fn total_capacity(&self) -> u32 {
        self.servers.iter().map(|(_, s)| s.max_load).sum()
    }

    /// `TC_ij` given a hypothetical load on server `j`.
    pub fn tc(&self, host: usize, server: usize, load: u32) -> f64 {
        let (_, spec) = self.servers[server];
        self.model
            .connection_cost(self.comm[host][server], load, spec.max_load, spec.proc_time)
    }

    /// The per-server term of the objective: `L·(Q(L/M)+z)·W2`.
    fn load_term(&self, server: usize, load: u32) -> f64 {
        let (_, spec) = self.servers[server];
        f64::from(load)
            * (self.model.queueing_delay(load, spec.max_load) + spec.proc_time)
            * self.model.w_proc
    }
}

/// `A_ij`: how many users of each host are assigned to each server.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    counts: Vec<Vec<u32>>,
    loads: Vec<u32>,
}

impl Assignment {
    /// An all-zero assignment shaped for `p`.
    pub fn empty(p: &AssignmentProblem) -> Self {
        Assignment {
            counts: vec![vec![0; p.server_count()]; p.host_count()],
            loads: vec![0; p.server_count()],
        }
    }

    /// `A_ij`.
    pub fn count(&self, host: usize, server: usize) -> u32 {
        self.counts[host][server]
    }

    /// `L_j`: current load on server `j`.
    pub fn load(&self, server: usize) -> u32 {
        self.loads[server]
    }

    /// All server loads.
    pub fn loads(&self) -> &[u32] {
        &self.loads
    }

    /// `ρ_j` under problem `p`.
    pub fn utilization(&self, p: &AssignmentProblem, server: usize) -> f64 {
        f64::from(self.loads[server]) / f64::from(p.servers[server].1.max_load)
    }

    /// Moves `k` users of `host` from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `k` users of `host` are on `from`.
    pub fn transfer(&mut self, host: usize, from: usize, to: usize, k: u32) {
        assert!(
            self.counts[host][from] >= k,
            "host {host} has only {} users on server {from}, cannot move {k}",
            self.counts[host][from]
        );
        self.counts[host][from] -= k;
        self.counts[host][to] += k;
        self.loads[from] -= k;
        self.loads[to] += k;
    }

    /// Adds `k` users of `host` to `server` (used by initialisation and
    /// add-user reconfiguration).
    pub fn place(&mut self, host: usize, server: usize, k: u32) {
        self.counts[host][server] += k;
        self.loads[server] += k;
    }

    /// Removes `k` users of `host` from `server` (delete-user
    /// reconfiguration).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `k` users are placed there.
    pub fn remove(&mut self, host: usize, server: usize, k: u32) {
        assert!(self.counts[host][server] >= k, "not enough users to remove");
        self.counts[host][server] -= k;
        self.loads[server] -= k;
    }

    /// Total connection cost `Σ_ij A_ij · TC_ij` under `p`.
    pub fn total_cost(&self, p: &AssignmentProblem) -> f64 {
        let mut comm_term = 0.0;
        for i in 0..p.host_count() {
            for j in 0..p.server_count() {
                comm_term += f64::from(self.counts[i][j]) * p.comm[i][j];
            }
        }
        let mut load_term = 0.0;
        for j in 0..p.server_count() {
            load_term += p.load_term(j, self.loads[j]);
        }
        comm_term * p.model.w_comm + load_term
    }

    /// Server indices still loaded beyond capacity (the paper's final
    /// "check if some of the servers are still overloaded").
    pub fn overloaded(&self, p: &AssignmentProblem) -> Vec<usize> {
        (0..p.server_count())
            .filter(|&j| self.loads[j] > p.servers[j].1.max_load)
            .collect()
    }

    /// Expands host `i`'s row into one server index per user (users are
    /// ordered by server index) — used to hand each individual user an
    /// assignment.
    pub fn server_of_users(&self, host: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for (j, &k) in self.counts[host].iter().enumerate() {
            out.extend(std::iter::repeat_n(j, k as usize));
        }
        out
    }

    /// Non-zero rows as `(host index, server index, users)` — the layout of
    /// the paper's Tables 1–3.
    pub fn table_rows(&self) -> Vec<(usize, usize, u32)> {
        let mut rows = Vec::new();
        for (i, row) in self.counts.iter().enumerate() {
            for (j, &k) in row.iter().enumerate() {
                if k > 0 {
                    rows.push((i, j, k));
                }
            }
        }
        rows
    }

    /// FNV-1a digest over the full `A_ij` matrix (shape included) — a
    /// compact fingerprint for determinism checks: byte-identical
    /// assignments, and nothing else, share a digest.
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(self.counts.len() as u64);
        eat(self.loads.len() as u64);
        for row in &self.counts {
            for &c in row {
                eat(u64::from(c));
            }
        }
        h
    }
}

/// Initialisation: every host's users go to its nearest server by
/// zero-load communication time (ties break toward the lower server
/// index, deterministically).
///
/// # Examples
///
/// ```
/// use lems_net::generators::fig1;
/// use lems_syntax::assign::{initialize, AssignmentProblem};
/// use lems_syntax::cost::{CostModel, ServerSpec};
///
/// let f = fig1();
/// let p = AssignmentProblem::from_topology(
///     &f.topology, &f.users_per_host,
///     ServerSpec::paper_example(), CostModel::paper_example());
/// let a = initialize(&p);
/// // Table 1: S1 = 100, S2 = 150, S3 = 20.
/// assert_eq!(a.loads(), &[100, 150, 20]);
/// ```
pub fn initialize(p: &AssignmentProblem) -> Assignment {
    let mut a = Assignment::empty(p);
    for (i, host) in p.hosts.iter().enumerate() {
        // `from_topology` asserts at least one server exists.
        let j = (0..p.server_count())
            .min_by(|&x, &y| p.comm[i][x].total_cmp(&p.comm[i][y]))
            .unwrap_or(0);
        a.place(i, j, host.users);
    }
    a
}

/// Options for [`balance`].
#[derive(Clone, Copy, Debug)]
pub struct BalanceOptions {
    /// Users moved per accepted transfer. The paper's base algorithm moves
    /// one; larger batches are the paper's suggested speed-up.
    pub batch: u32,
    /// Safety bound on full passes over the hosts.
    pub max_passes: u64,
}

impl Default for BalanceOptions {
    fn default() -> Self {
        BalanceOptions {
            batch: 1,
            max_passes: 100_000,
        }
    }
}

/// Outcome of a balancing run.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct BalanceReport {
    /// Full passes over all hosts.
    pub passes: u64,
    /// Accepted user transfers (each of up to `batch` users).
    pub moves: u64,
    /// Tentative transfers that were undone.
    pub undone: u64,
    /// Objective before balancing.
    pub initial_cost: f64,
    /// Objective after balancing.
    pub final_cost: f64,
}

/// The balancing loop of §3.1.1.
///
/// Each pass visits hosts in index order. For host `i`, `S_min` is the
/// server with minimum `TC_ij` at current loads and `S_max` the
/// maximum-cost server among those with `A_ik > 0`. If they differ and
/// `S_min` is strictly cheaper, up to `batch` users move from `S_max` to
/// `S_min`; the move is kept only if it lowers the total objective
/// ("otherwise undo the previous action"). Passes repeat "until no more
/// changes are needed".
///
/// Termination: every kept move strictly decreases the objective, and the
/// (finite) assignment space contains no infinite strictly-decreasing
/// chain; `max_passes` is a belt-and-braces bound.
pub fn balance(p: &AssignmentProblem, a: &mut Assignment, opts: BalanceOptions) -> BalanceReport {
    assert!(opts.batch >= 1, "batch must be at least 1");
    let mut report = BalanceReport {
        initial_cost: a.total_cost(p),
        final_cost: 0.0,
        ..BalanceReport::default()
    };

    for _pass in 0..opts.max_passes {
        report.passes += 1;
        let mut changed = false;

        for i in 0..p.host_count() {
            loop {
                // S_min: cheapest server for host i at current loads.
                let s_min = (0..p.server_count())
                    .min_by(|&x, &y| p.tc(i, x, a.load(x)).total_cmp(&p.tc(i, y, a.load(y))))
                    .unwrap_or(0);
                // S_max: costliest server among those hosting users of i.
                let Some(s_max) = (0..p.server_count())
                    .filter(|&j| a.count(i, j) > 0)
                    .max_by(|&x, &y| p.tc(i, x, a.load(x)).total_cmp(&p.tc(i, y, a.load(y))))
                else {
                    break; // host has no users
                };

                if s_min == s_max {
                    break;
                }
                let tc_min = p.tc(i, s_min, a.load(s_min));
                let tc_max = p.tc(i, s_max, a.load(s_max));
                if tc_min >= tc_max {
                    break;
                }

                // Try the full batch first; if that overshoots, fall back
                // to a single user so batching never changes the fixpoint,
                // only the speed (the paper's suggested optimisation).
                let mut accepted = false;
                for k in [opts.batch.min(a.count(i, s_max)), 1] {
                    if k == 0 {
                        break;
                    }
                    let before = a.total_cost(p);
                    a.transfer(i, s_max, s_min, k);
                    let after = a.total_cost(p);
                    if after < before - COST_EPS {
                        report.moves += 1;
                        changed = true;
                        accepted = true;
                        break;
                    }
                    a.transfer(i, s_min, s_max, k); // undo
                    report.undone += 1;
                    if k == 1 {
                        break;
                    }
                }
                if !accepted {
                    break;
                }
            }
        }

        if !changed {
            break;
        }
    }

    report.final_cost = a.total_cost(p);
    report
}

/// Convenience: initialise then balance, returning both the assignment and
/// the report.
pub fn solve(p: &AssignmentProblem, opts: BalanceOptions) -> (Assignment, BalanceReport) {
    let mut a = initialize(p);
    let report = balance(p, &mut a, opts);
    (a, report)
}

/// Options for the scaled synchronous solver ([`balance_sync`] /
/// [`balance_par`]).
#[derive(Clone, Copy, Debug)]
pub struct ScaleOptions {
    /// Users moved per accepted transfer (with a fall-back retry of 1, so
    /// batching never changes which fixpoints are reachable, only speed).
    pub batch: u32,
    /// Safety bound on synchronous passes.
    pub max_passes: u64,
    /// Worker threads for the evaluation fan-out; `0` means use the
    /// runtime's thread count. The result is identical for every value.
    pub threads: usize,
}

impl Default for ScaleOptions {
    fn default() -> Self {
        ScaleOptions {
            batch: 64,
            max_passes: 100_000,
            threads: 0,
        }
    }
}

/// One host's proposed `S_max → S_min` transfer, computed against loads
/// frozen at the start of a synchronous pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MoveProposal {
    /// Proposing host.
    pub host: usize,
    /// Source server (`S_max`).
    pub from: usize,
    /// Destination server (`S_min`).
    pub to: usize,
    /// Users to move (`min(batch, A_ij)` at evaluation time).
    pub users: u32,
}

/// Outcome of a scaled balancing run, including the per-pass objective
/// trace used by the monotonicity invariants.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ScaleReport {
    /// Synchronous passes executed.
    pub passes: u64,
    /// Accepted transfers.
    pub moves: u64,
    /// Proposals rejected at merge time (stale after earlier merges).
    pub undone: u64,
    /// Objective before balancing.
    pub initial_cost: f64,
    /// Objective after balancing.
    pub final_cost: f64,
    /// Objective after initialisation and after each pass
    /// (`cost_trace[0] == initial_cost`, last element `== final_cost`).
    pub cost_trace: Vec<f64>,
}

/// Exact `O(1)` objective change for moving `k` users of `host` from
/// server `from` to server `to` at the assignment's *current* loads.
///
/// Derived from the decomposition in the module docs: the comm term
/// changes by `k·(C_i,to − C_i,from)·W1` and only the two touched
/// servers' load terms change.
pub fn transfer_delta(
    p: &AssignmentProblem,
    a: &Assignment,
    host: usize,
    from: usize,
    to: usize,
    k: u32,
) -> f64 {
    let comm_delta =
        f64::from(k) * (p.comm.cost(host, to) - p.comm.cost(host, from)) * p.model.w_comm;
    let load_delta = p.load_term(to, a.load(to) + k) - p.load_term(to, a.load(to))
        + p.load_term(from, a.load(from) - k)
        - p.load_term(from, a.load(from));
    comm_delta + load_delta
}

/// Host `host`'s best move against frozen pass-start state: `S_max` is
/// the most expensive server currently holding its users (by the frozen
/// average `TC_ij = C_ij·W1 + srv_term[j]`), the destination is the
/// server with the best exact *marginal* cost change ([`transfer_delta`]
/// at pass-start loads, `O(1)` per candidate). Ties break toward the
/// lower server index.
///
/// The destination must be chosen by marginal — not average — cost: a
/// server sitting just below the ρ cutoff looks cheap on average, but
/// one more user pushes *every* resident user's waiting-time estimate to
/// β, so its marginal cost is enormous. An average-cost argmin stalls on
/// exactly that server while emptier (merely farther) servers go unused,
/// leaving overload the solver could have drained.
fn propose_move(
    p: &AssignmentProblem,
    a: &Assignment,
    srv_term: &[f64],
    dest_term1: &[f64],
    host: usize,
    batch: u32,
) -> Option<MoveProposal> {
    let row = p.comm.row(host);
    let w1 = p.model.w_comm;
    let mut s_max = None;
    let mut tc_max = f64::NEG_INFINITY;
    for (j, (&c, &t)) in row.iter().zip(srv_term).enumerate() {
        if a.count(host, j) > 0 {
            let tc = c * w1 + t;
            if tc > tc_max {
                tc_max = tc;
                s_max = Some(j);
            }
        }
    }
    let s_max = s_max?;
    // The source-side part of the one-user marginal delta is the same for
    // every candidate destination, so the argmin only needs the
    // destination-side unit terms — one mul-add per server, like the
    // classic `TC` scan, not a full `transfer_delta` per candidate.
    let mut to = None;
    let mut d1_min = f64::INFINITY;
    for (j, (&c, &t1)) in row.iter().zip(dest_term1).enumerate() {
        if j == s_max {
            continue;
        }
        let d1 = c * w1 + t1;
        if d1 < d1_min {
            d1_min = d1;
            to = Some(j);
        }
    }
    let to = to?;
    let users = batch.min(a.count(host, s_max));
    // Exact check only for the winner, at both granularities the merge
    // step will try (whole batch, then a single user).
    let d =
        transfer_delta(p, a, host, s_max, to, users).min(transfer_delta(p, a, host, s_max, to, 1));
    if d < -COST_EPS {
        Some(MoveProposal {
            host,
            from: s_max,
            to,
            users,
        })
    } else {
        None
    }
}

/// The per-server term of `TC` at the assignment's current loads:
/// `(Q(ρ_j) + z_j)·W2` for every server.
fn server_terms(p: &AssignmentProblem, a: &Assignment) -> Vec<f64> {
    (0..p.server_count())
        .map(|j| {
            let (_, spec) = p.servers[j];
            (p.model.queueing_delay(a.load(j), spec.max_load) + spec.proc_time) * p.model.w_proc
        })
        .collect()
}

/// The destination-side part of the one-user marginal cost at the
/// assignment's current loads: `load_term(j, L_j + 1) − load_term(j, L_j)`
/// for every server. This is what makes a server sitting just below the ρ
/// cutoff expensive as a *destination* even though its average cost is
/// still low — one more user sends every resident's waiting time to β.
fn dest_unit_terms(p: &AssignmentProblem, a: &Assignment) -> Vec<f64> {
    (0..p.server_count())
        .map(|j| p.load_term(j, a.load(j) + 1) - p.load_term(j, a.load(j)))
        .collect()
}

fn eval_hosts_sequential(
    p: &AssignmentProblem,
    a: &Assignment,
    srv_term: &[f64],
    dest_term1: &[f64],
    lo: usize,
    hi: usize,
    batch: u32,
) -> Vec<MoveProposal> {
    (lo..hi)
        .filter_map(|i| propose_move(p, a, srv_term, dest_term1, i, batch))
        .collect()
}

fn eval_hosts_parallel(
    p: &AssignmentProblem,
    a: &Assignment,
    srv_term: &[f64],
    dest_term1: &[f64],
    batch: u32,
    threads: usize,
) -> Vec<MoveProposal> {
    use rayon::prelude::*;

    let n = p.host_count();
    let workers = if threads == 0 {
        rayon::current_num_threads()
    } else {
        threads
    };
    if workers <= 1 || n < 2 {
        return eval_hosts_sequential(p, a, srv_term, dest_term1, 0, n, batch);
    }
    let chunk = n.div_ceil(workers);
    let ranges: Vec<(usize, usize)> = (0..n)
        .step_by(chunk)
        .map(|lo| (lo, (lo + chunk).min(n)))
        .collect();
    // Each range is evaluated against the same frozen state (pure); the
    // flatten preserves host order, so the merge below sees the exact
    // sequence the sequential evaluator would produce.
    let per_range: Vec<Vec<MoveProposal>> = ranges
        .par_iter()
        .map(|&(lo, hi)| eval_hosts_sequential(p, a, srv_term, dest_term1, lo, hi, batch))
        .collect();
    per_range.into_iter().flatten().collect()
}

/// Deterministic merge: applies proposals in host-index order, each
/// re-validated with [`transfer_delta`] against *current* loads (earlier
/// merges may have invalidated it). Falls back from the batch size to a
/// single user before giving up, mirroring [`balance`].
fn merge_proposals(
    p: &AssignmentProblem,
    a: &mut Assignment,
    proposals: &[MoveProposal],
    report: &mut ScaleReport,
) -> bool {
    let mut changed = false;
    for m in proposals {
        let avail = a.count(m.host, m.from);
        for k in [m.users.min(avail), 1] {
            if k == 0 || k > avail {
                break;
            }
            if transfer_delta(p, a, m.host, m.from, m.to, k) < -COST_EPS {
                a.transfer(m.host, m.from, m.to, k);
                report.moves += 1;
                changed = true;
                break;
            }
            report.undone += 1;
            if k == 1 {
                break;
            }
        }
    }
    changed
}

fn run_synced(
    p: &AssignmentProblem,
    a: &mut Assignment,
    opts: ScaleOptions,
    parallel: bool,
) -> ScaleReport {
    assert!(opts.batch >= 1, "batch must be at least 1");
    let initial = a.total_cost(p);
    let mut report = ScaleReport {
        initial_cost: initial,
        final_cost: initial,
        cost_trace: vec![initial],
        ..ScaleReport::default()
    };

    for _pass in 0..opts.max_passes {
        report.passes += 1;
        let srv_term = server_terms(p, a);
        let dest_term1 = dest_unit_terms(p, a);
        let proposals = if parallel {
            eval_hosts_parallel(p, a, &srv_term, &dest_term1, opts.batch, opts.threads)
        } else {
            eval_hosts_sequential(p, a, &srv_term, &dest_term1, 0, p.host_count(), opts.batch)
        };
        let changed = merge_proposals(p, a, &proposals, &mut report);
        report.final_cost = a.total_cost(p);
        report.cost_trace.push(report.final_cost);
        if !changed {
            break;
        }
    }
    report
}

/// Sequential reference implementation of the synchronous-pass solver —
/// the ground truth [`balance_par`] must match byte for byte.
pub fn balance_sync(p: &AssignmentProblem, a: &mut Assignment, opts: ScaleOptions) -> ScaleReport {
    run_synced(p, a, opts, false)
}

/// Parallel synchronous-pass solver: per-host move evaluation fans out
/// across threads; the deterministic merge keeps the result byte-identical
/// to [`balance_sync`] at any thread count (including 1).
pub fn balance_par(p: &AssignmentProblem, a: &mut Assignment, opts: ScaleOptions) -> ScaleReport {
    run_synced(p, a, opts, true)
}

/// Convenience: initialise then [`balance_sync`].
pub fn solve_sync(p: &AssignmentProblem, opts: ScaleOptions) -> (Assignment, ScaleReport) {
    let mut a = initialize(p);
    let report = balance_sync(p, &mut a, opts);
    (a, report)
}

/// Convenience: initialise then [`balance_par`].
pub fn solve_par(p: &AssignmentProblem, opts: ScaleOptions) -> (Assignment, ScaleReport) {
    let mut a = initialize(p);
    let report = balance_par(p, &mut a, opts);
    (a, report)
}

/// Ranks all servers for host `i` by `TC_ij` at the final loads — the order
/// in which authority lists are drawn ("the first server in the list is the
/// primary server").
pub fn server_ranking(p: &AssignmentProblem, a: &Assignment, host: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..p.server_count()).collect();
    order.sort_by(|&x, &y| {
        p.tc(host, x, a.load(x))
            .total_cmp(&p.tc(host, y, a.load(y)))
            .then(x.cmp(&y))
    });
    order
}

/// Top-`k` authority lists for every host: server *node ids* ranked by
/// `TC_ij` at the final loads, truncated to `list_len` — the §3.2.3 lists
/// GetMail polls. Shares the solver's precomputed per-server terms so the
/// sort key is `O(1)` per comparison even at 500 servers.
pub fn authority_lists(p: &AssignmentProblem, a: &Assignment, list_len: usize) -> Vec<Vec<NodeId>> {
    let srv_term = server_terms(p, a);
    let w1 = p.model.w_comm;
    (0..p.host_count())
        .map(|i| {
            let row = p.comm.row(i);
            let mut order: Vec<usize> = (0..p.server_count()).collect();
            order.sort_by(|&x, &y| {
                (row[x] * w1 + srv_term[x])
                    .total_cmp(&(row[y] * w1 + srv_term[y]))
                    .then(x.cmp(&y))
            });
            order.truncate(list_len);
            order.into_iter().map(|j| p.servers[j].0).collect()
        })
        .collect()
}

/// Checks that a topology has the hosts/servers the problem assumes —
/// useful before reusing a problem after topology edits.
pub fn consistent_with(p: &AssignmentProblem, topology: &Topology) -> bool {
    p.hosts
        .iter()
        .all(|h| topology.kind(h.node) == NodeKind::Host)
        && p.servers
            .iter()
            .all(|(n, _)| topology.kind(*n) == NodeKind::Server)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lems_net::generators::{fig1, table3};
    use proptest::prelude::*;

    fn fig1_problem() -> AssignmentProblem {
        let f = fig1();
        AssignmentProblem::from_topology(
            &f.topology,
            &f.users_per_host,
            ServerSpec::paper_example(),
            CostModel::paper_example(),
        )
    }

    #[test]
    fn table1_initial_assignment() {
        let p = fig1_problem();
        let a = initialize(&p);
        // Paper Table 1: H1,H3 -> S1; H2,H4,H5 -> S2; H6 -> S3.
        assert_eq!(a.count(0, 0), 50);
        assert_eq!(a.count(1, 1), 60);
        assert_eq!(a.count(2, 0), 50);
        assert_eq!(a.count(3, 1), 50);
        assert_eq!(a.count(4, 1), 40);
        assert_eq!(a.count(5, 2), 20);
        assert_eq!(a.loads(), &[100, 150, 20]);
        // Only S2 exceeds its capacity of 100; S1 sits exactly at capacity.
        assert_eq!(a.overloaded(&p), vec![1]);
    }

    #[test]
    fn table2_balancing_relieves_s2() {
        let p = fig1_problem();
        let (a, report) = solve(&p, BalanceOptions::default());
        // All users still assigned.
        assert_eq!(a.loads().iter().sum::<u32>(), 270);
        // No server over capacity.
        assert!(a.overloaded(&p).is_empty());
        // Objective strictly improved.
        assert!(report.final_cost < report.initial_cost);
        // S2's overload was drained below the M/M/1 cutoff.
        assert!(a.utilization(&p, 1) < 0.99);
        // "Users on one host may be assigned to different servers."
        let split_hosts = (0..p.host_count())
            .filter(|&i| (0..p.server_count()).filter(|&j| a.count(i, j) > 0).count() > 1)
            .count();
        assert!(split_hosts >= 1, "expected at least one split host");
    }

    #[test]
    fn table3_initialization() {
        let f = table3();
        let p = AssignmentProblem::from_topology(
            &f.topology,
            &f.users_per_host,
            ServerSpec::paper_example(),
            CostModel::paper_example(),
        );
        let a = initialize(&p);
        assert_eq!(a.loads(), &[100, 100, 20]);
        let (b, _) = solve(&p, BalanceOptions::default());
        assert!(b.overloaded(&p).is_empty());
        assert_eq!(b.loads().iter().sum::<u32>(), 220);
    }

    #[test]
    fn balancing_never_loses_users() {
        let p = fig1_problem();
        let (a, _) = solve(&p, BalanceOptions::default());
        for i in 0..p.host_count() {
            let total: u32 = (0..p.server_count()).map(|j| a.count(i, j)).sum();
            assert_eq!(total, p.hosts[i].users, "host {i} population changed");
        }
    }

    #[test]
    fn batch_moves_converge_faster() {
        let p = fig1_problem();
        let mut a1 = initialize(&p);
        let r1 = balance(&p, &mut a1, BalanceOptions::default());
        let mut a8 = initialize(&p);
        let r8 = balance(
            &p,
            &mut a8,
            BalanceOptions {
                batch: 8,
                ..BalanceOptions::default()
            },
        );
        assert!(r8.moves < r1.moves, "batched should use fewer moves");
        // Both end in comparable cost (within 5%).
        assert!((r8.final_cost - r1.final_cost).abs() / r1.final_cost < 0.05);
    }

    #[test]
    fn ranking_puts_cheapest_first() {
        let p = fig1_problem();
        let (a, _) = solve(&p, BalanceOptions::default());
        for i in 0..p.host_count() {
            let rank = server_ranking(&p, &a, i);
            let costs: Vec<f64> = rank.iter().map(|&j| p.tc(i, j, a.load(j))).collect();
            assert!(costs.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn consistency_check() {
        let f = fig1();
        let p = fig1_problem();
        assert!(consistent_with(&p, &f.topology));
    }

    #[test]
    fn transfer_bookkeeping() {
        let p = fig1_problem();
        let mut a = initialize(&p);
        a.transfer(1, 1, 2, 10);
        assert_eq!(a.count(1, 1), 50);
        assert_eq!(a.count(1, 2), 10);
        assert_eq!(a.load(1), 140);
        assert_eq!(a.load(2), 30);
        a.remove(1, 2, 10);
        assert_eq!(a.load(2), 20);
    }

    #[test]
    #[should_panic(expected = "cannot move")]
    fn over_transfer_panics() {
        let p = fig1_problem();
        let mut a = initialize(&p);
        a.transfer(5, 2, 0, 21); // H6 has only 20 users on S3
    }

    #[test]
    fn scaled_solver_matches_parallel_on_fig1() {
        let p = fig1_problem();
        let (a_sync, r_sync) = solve_sync(&p, ScaleOptions::default());
        let (a_par, r_par) = solve_par(&p, ScaleOptions::default());
        assert_eq!(a_sync, a_par);
        assert_eq!(a_sync.digest(), a_par.digest());
        assert_eq!(r_sync.cost_trace, r_par.cost_trace);
        assert_eq!(r_sync.moves, r_par.moves);
        // The scaled solver reaches a valid fixpoint on the paper example.
        assert_eq!(a_sync.loads().iter().sum::<u32>(), 270);
        assert!(a_sync.overloaded(&p).is_empty());
        assert!(r_sync.final_cost < r_sync.initial_cost);
    }

    #[test]
    fn scaled_solver_is_thread_count_independent() {
        let p = fig1_problem();
        let base = solve_par(&p, ScaleOptions::default());
        for threads in [1, 2, 3, 8] {
            let got = solve_par(
                &p,
                ScaleOptions {
                    threads,
                    ..ScaleOptions::default()
                },
            );
            assert_eq!(base.0, got.0, "threads={threads}");
            assert_eq!(base.1.cost_trace, got.1.cost_trace, "threads={threads}");
        }
    }

    #[test]
    fn transfer_delta_matches_full_recompute() {
        let p = fig1_problem();
        let mut a = initialize(&p);
        for (host, from, to, k) in [(1usize, 1usize, 2usize, 5u32), (3, 1, 0, 2), (0, 0, 2, 10)] {
            let predicted = transfer_delta(&p, &a, host, from, to, k);
            let before = a.total_cost(&p);
            a.transfer(host, from, to, k);
            let actual = a.total_cost(&p) - before;
            assert!(
                (predicted - actual).abs() < 1e-9,
                "delta mismatch: predicted {predicted}, actual {actual}"
            );
        }
    }

    #[test]
    fn scaled_cost_trace_is_monotone() {
        let p = fig1_problem();
        let (_, r) = solve_sync(&p, ScaleOptions::default());
        assert_eq!(r.cost_trace.first(), Some(&r.initial_cost));
        assert_eq!(r.cost_trace.last(), Some(&r.final_cost));
        assert!(r
            .cost_trace
            .windows(2)
            .all(|w| w[1] <= w[0] + 1e-9 * w[0].abs().max(1.0)));
    }

    #[test]
    fn digest_distinguishes_assignments() {
        let p = fig1_problem();
        let a = initialize(&p);
        let mut b = a.clone();
        assert_eq!(a.digest(), b.digest());
        b.transfer(1, 1, 2, 1);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn authority_lists_rank_by_final_tc() {
        let p = fig1_problem();
        let (a, _) = solve_sync(&p, ScaleOptions::default());
        let lists = authority_lists(&p, &a, 2);
        assert_eq!(lists.len(), p.host_count());
        for (i, list) in lists.iter().enumerate() {
            assert_eq!(list.len(), 2);
            let rank = server_ranking(&p, &a, i);
            let expect: Vec<NodeId> = rank.iter().take(2).map(|&j| p.servers[j].0).collect();
            assert_eq!(list, &expect, "host {i}");
        }
    }

    proptest! {
        /// On random populations over the Fig. 1 network, balancing never
        /// increases the objective, never loses users, and (with total
        /// population comfortably below the ρ = 0.99 M/M/1 wall) leaves no
        /// server overloaded. Near saturation the paper's own algorithm
        /// can legitimately stop with residual overload — its final step is
        /// "check if some of the servers are still overloaded".
        #[test]
        fn balance_invariants(users in proptest::collection::vec(1u32..45, 6)) {
            let f = fig1();
            let p = AssignmentProblem::from_topology(
                &f.topology,
                &users,
                ServerSpec::paper_example(),
                CostModel::paper_example(),
            );
            let (a, report) = solve(&p, BalanceOptions::default());
            prop_assert!(report.final_cost <= report.initial_cost + 1e-9);
            prop_assert_eq!(a.loads().iter().sum::<u32>(), users.iter().sum::<u32>());
            if p.total_users() <= p.total_capacity() {
                prop_assert!(a.overloaded(&p).is_empty(),
                    "loads {:?} with capacity available", a.loads());
            }
        }
    }
}
