//! Name-resolution caching (§4.1).
//!
//! The paper lists "caching capability (i.e., the capability of
//! maintaining a list of both frequently and recently used names and
//! addresses)" among the efficiency criteria. This module provides the
//! cache a user interface or server keeps in front of the resolution
//! machinery: bounded LRU with an optional time-to-live, explicit
//! invalidation for reconfiguration events, and hit/miss accounting.

use std::collections::HashMap;

use lems_core::name::MailName;
use lems_core::user::AuthorityList;
use lems_sim::time::{SimDuration, SimTime};

/// A bounded LRU cache from mail names to authority lists.
///
/// Entries expire after the configured TTL (stale routing knowledge is
/// worse than a miss: it sends mail to servers that may no longer be
/// authorities) and are evicted least-recently-used beyond capacity.
///
/// # Examples
///
/// ```
/// use lems_syntax::cache::ResolutionCache;
/// use lems_core::user::AuthorityList;
/// use lems_net::graph::NodeId;
/// use lems_sim::time::{SimDuration, SimTime};
///
/// let mut cache = ResolutionCache::new(2, SimDuration::from_units(100.0));
/// let alice = "east.h1.alice".parse()?;
/// let list = AuthorityList::new(vec![NodeId(1)]);
/// cache.put(alice, list.clone(), SimTime::ZERO);
/// let hit = cache.get(&"east.h1.alice".parse()?, SimTime::from_units(1.0));
/// assert_eq!(hit, Some(&list));
/// assert_eq!(cache.stats().hits, 1);
/// # Ok::<(), lems_core::name::ParseNameError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ResolutionCache {
    capacity: usize,
    ttl: SimDuration,
    entries: HashMap<MailName, Entry>,
    /// Monotonic use counter implementing LRU ordering.
    tick: u64,
    stats: CacheStats,
}

#[derive(Clone, Debug)]
struct Entry {
    list: AuthorityList,
    inserted_at: SimTime,
    last_used: u64,
}

/// Hit/miss accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (absent or expired).
    pub misses: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
    /// Entries dropped because they had expired.
    pub expirations: u64,
    /// Entries removed by explicit invalidation.
    pub invalidations: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl ResolutionCache {
    /// Creates a cache holding at most `capacity` entries, each valid for
    /// `ttl` after insertion.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, ttl: SimDuration) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        ResolutionCache {
            capacity,
            ttl,
            entries: HashMap::with_capacity(capacity),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Looks `name` up at time `now`, refreshing its LRU position on a
    /// hit. Expired entries count as misses and are dropped.
    pub fn get(&mut self, name: &MailName, now: SimTime) -> Option<&AuthorityList> {
        self.tick += 1;
        let expired = match self.entries.get(name) {
            Some(e) => now.duration_since(e.inserted_at) >= self.ttl,
            None => {
                self.stats.misses += 1;
                return None;
            }
        };
        if expired {
            self.entries.remove(name);
            self.stats.expirations += 1;
            self.stats.misses += 1;
            return None;
        }
        self.stats.hits += 1;
        let tick = self.tick;
        self.entries.get_mut(name).map(|e| {
            e.last_used = tick;
            &e.list
        })
    }

    /// Inserts or refreshes an entry, evicting the least recently used
    /// entry if at capacity.
    pub fn put(&mut self, name: MailName, list: AuthorityList, now: SimTime) {
        self.tick += 1;
        if !self.entries.contains_key(&name) && self.entries.len() >= self.capacity {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(
            name,
            Entry {
                list,
                inserted_at: now,
                last_used: self.tick,
            },
        );
    }

    /// Drops one entry (e.g. after a migration renamed the user).
    pub fn invalidate(&mut self, name: &MailName) -> bool {
        let removed = self.entries.remove(name).is_some();
        if removed {
            self.stats.invalidations += 1;
        }
        removed
    }

    /// Drops every entry whose list mentions `server` — the
    /// reconfiguration hook for server removal (§3.1.3c).
    pub fn invalidate_server(&mut self, server: lems_net::graph::NodeId) -> usize {
        let victims: Vec<MailName> = self
            .entries
            .iter()
            .filter(|(_, e)| e.list.contains(server))
            .map(|(k, _)| k.clone())
            .collect();
        for v in &victims {
            self.entries.remove(v);
        }
        self.stats.invalidations += victims.len() as u64;
        victims.len()
    }

    /// Drops everything (wholesale reconfiguration).
    pub fn clear(&mut self) {
        self.stats.invalidations += self.entries.len() as u64;
        self.entries.clear();
    }

    /// Current number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accounting so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lems_net::graph::NodeId;
    use proptest::prelude::*;

    fn name(i: usize) -> MailName {
        format!("east.h1.user{i}").parse().unwrap()
    }

    fn list(s: usize) -> AuthorityList {
        AuthorityList::new(vec![NodeId(s)])
    }

    fn t(u: f64) -> SimTime {
        SimTime::from_units(u)
    }

    #[test]
    fn hit_miss_and_rate() {
        let mut c = ResolutionCache::new(4, SimDuration::from_units(100.0));
        assert!(c.get(&name(0), t(0.0)).is_none());
        c.put(name(0), list(1), t(0.0));
        assert!(c.get(&name(0), t(1.0)).is_some());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ttl_expires_entries() {
        let mut c = ResolutionCache::new(4, SimDuration::from_units(10.0));
        c.put(name(0), list(1), t(0.0));
        assert!(c.get(&name(0), t(9.9)).is_some());
        assert!(c.get(&name(0), t(10.0)).is_none(), "expired at exactly ttl");
        assert_eq!(c.stats().expirations, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        let mut c = ResolutionCache::new(2, SimDuration::from_units(1000.0));
        c.put(name(0), list(0), t(0.0));
        c.put(name(1), list(1), t(1.0));
        // Touch 0 so 1 becomes the LRU victim.
        let _ = c.get(&name(0), t(2.0));
        c.put(name(2), list(2), t(3.0));
        assert!(c.get(&name(0), t(4.0)).is_some());
        assert!(c.get(&name(1), t(4.0)).is_none(), "evicted");
        assert!(c.get(&name(2), t(4.0)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn server_invalidation_targets_lists() {
        let mut c = ResolutionCache::new(8, SimDuration::from_units(1000.0));
        c.put(
            name(0),
            AuthorityList::new(vec![NodeId(1), NodeId(2)]),
            t(0.0),
        );
        c.put(name(1), AuthorityList::new(vec![NodeId(3)]), t(0.0));
        c.put(name(2), AuthorityList::new(vec![NodeId(2)]), t(0.0));
        assert_eq!(c.invalidate_server(NodeId(2)), 2);
        assert_eq!(c.len(), 1);
        assert!(c.get(&name(1), t(1.0)).is_some());
    }

    #[test]
    fn explicit_invalidation_and_clear() {
        let mut c = ResolutionCache::new(4, SimDuration::from_units(1000.0));
        c.put(name(0), list(0), t(0.0));
        assert!(c.invalidate(&name(0)));
        assert!(!c.invalidate(&name(0)));
        c.put(name(1), list(1), t(0.0));
        c.put(name(2), list(2), t(0.0));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().invalidations, 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ResolutionCache::new(0, SimDuration::from_units(1.0));
    }

    proptest! {
        /// The cache never exceeds capacity, and a just-inserted entry is
        /// always retrievable before its TTL.
        #[test]
        fn capacity_bound_holds(ops in proptest::collection::vec((0usize..20, 0u64..50), 1..200)) {
            let mut c = ResolutionCache::new(5, SimDuration::from_units(1e6));
            for (i, (user, at)) in ops.into_iter().enumerate() {
                let now = SimTime::from_ticks(at + i as u64);
                c.put(name(user), list(user), now);
                prop_assert!(c.len() <= 5);
                prop_assert!(c.get(&name(user), now).is_some());
            }
        }
    }
}
