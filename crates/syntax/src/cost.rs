//! The connection-cost model of §3.1.1.
//!
//! The total connection cost between host `H_i` and server `S_j` is
//!
//! ```text
//! TC_ij = C_ij · W1 + (Q(ρ_j) + z) · W2
//! ```
//!
//! where `C_ij` is the average communication time between the host and the
//! server (shortest-path, zero-load), `W1`/`W2` are designer-chosen weights
//! for communication versus processing cost, `z` is the average message
//! processing time at the server, and `Q(ρ)` is the M/M/1 waiting-time
//! estimate `ρ/(1−ρ)` for server utilisation `ρ = L_j / M_j`, replaced by a
//! "very large constant" β once the server saturates (`ρ ≥ 0.99`).

use serde::{Deserialize, Serialize};

/// Weights and constants of the connection-cost formula.
///
/// # Examples
///
/// The paper's worked example uses `W1 = 4`, `W2 = 1`, `z = 0.5`:
///
/// ```
/// use lems_syntax::cost::CostModel;
///
/// let m = CostModel::paper_example();
/// // A host one hop (1 time unit) from an idle server:
/// let tc = m.connection_cost(1.0, 0, 100, 0.5);
/// assert_eq!(tc, 1.0 * 4.0 + (0.0 + 0.5) * 1.0);
/// ```
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// `W1`: weight on communication time.
    pub w_comm: f64,
    /// `W2`: weight on server processing and waiting time.
    pub w_proc: f64,
    /// Utilisation at which the queue estimate is replaced by `beta`.
    pub rho_cutoff: f64,
    /// β, the "very large constant" penalising saturated servers.
    pub beta: f64,
}

impl CostModel {
    /// The constants of the paper's Fig. 1 example: `W1 = 4`, `W2 = 1`
    /// ("to force the algorithm to select the closest servers to the hosts
    /// whenever possible"; `W1` accounts for round-trip delay).
    pub fn paper_example() -> Self {
        CostModel {
            w_comm: 4.0,
            w_proc: 1.0,
            rho_cutoff: 0.99,
            beta: 1.0e6,
        }
    }

    /// A model that prices communication and processing equally.
    pub fn balanced() -> Self {
        CostModel {
            w_comm: 1.0,
            w_proc: 1.0,
            rho_cutoff: 0.99,
            beta: 1.0e6,
        }
    }

    /// Validates the constants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint: weights must
    /// be non-negative and finite, `rho_cutoff` in `(0, 1)`, `beta`
    /// positive.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [("w_comm", self.w_comm), ("w_proc", self.w_proc)] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and >= 0, got {v}"));
            }
        }
        if !(self.rho_cutoff > 0.0 && self.rho_cutoff < 1.0) {
            return Err(format!(
                "rho_cutoff must be in (0,1), got {}",
                self.rho_cutoff
            ));
        }
        if !(self.beta > 0.0 && self.beta.is_finite()) {
            return Err(format!(
                "beta must be positive and finite, got {}",
                self.beta
            ));
        }
        Ok(())
    }

    /// `Q(ρ)`: estimated average waiting time at a server with `load` users
    /// out of `max_load` capacity — the M/M/1 estimate `ρ/(1−ρ)` below the
    /// cutoff, β at or above it.
    ///
    /// # Panics
    ///
    /// Panics if `max_load == 0`.
    pub fn queueing_delay(&self, load: u32, max_load: u32) -> f64 {
        assert!(max_load > 0, "server capacity must be positive");
        let rho = f64::from(load) / f64::from(max_load);
        if rho < self.rho_cutoff {
            rho / (1.0 - rho)
        } else {
            self.beta
        }
    }

    /// `TC_ij` for a host at communication distance `comm_units` from a
    /// server currently carrying `load` of `max_load` users, with average
    /// processing time `proc_time` (`z`).
    pub fn connection_cost(
        &self,
        comm_units: f64,
        load: u32,
        max_load: u32,
        proc_time: f64,
    ) -> f64 {
        comm_units * self.w_comm + (self.queueing_delay(load, max_load) + proc_time) * self.w_proc
    }

    /// The paper's "final modification": "include variable communication
    /// delays by having approximate queuing delays that is a function of
    /// the channel utilization" (§3.1.1). The communication term is
    /// inflated by the same M/M/1 factor evaluated at the channel's
    /// utilisation; at `channel_rho = 0` this reduces exactly to
    /// [`CostModel::connection_cost`].
    ///
    /// # Panics
    ///
    /// Panics if `channel_rho` is negative or not finite.
    pub fn connection_cost_with_channel(
        &self,
        comm_units: f64,
        channel_rho: f64,
        load: u32,
        max_load: u32,
        proc_time: f64,
    ) -> f64 {
        assert!(
            channel_rho.is_finite() && channel_rho >= 0.0,
            "channel utilisation must be finite and >= 0"
        );
        let channel_q = if channel_rho < self.rho_cutoff {
            channel_rho / (1.0 - channel_rho)
        } else {
            self.beta
        };
        comm_units * (1.0 + channel_q) * self.w_comm
            + (self.queueing_delay(load, max_load) + proc_time) * self.w_proc
    }
}

/// Static description of one server for assignment purposes.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ServerSpec {
    /// `M_j`: maximum number of users assignable to the server.
    pub max_load: u32,
    /// `z`: average message processing time, in time units.
    pub proc_time: f64,
}

impl ServerSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `max_load == 0` or `proc_time` is negative/not finite.
    pub fn new(max_load: u32, proc_time: f64) -> Self {
        assert!(max_load > 0, "max_load must be positive");
        assert!(
            proc_time.is_finite() && proc_time >= 0.0,
            "proc_time must be finite and non-negative"
        );
        ServerSpec {
            max_load,
            proc_time,
        }
    }

    /// The paper example's server: capacity 100 users, 0.5 units of
    /// processing per message.
    pub fn paper_example() -> Self {
        ServerSpec::new(100, 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_queue_grows_with_load() {
        let m = CostModel::paper_example();
        assert_eq!(m.queueing_delay(0, 100), 0.0);
        let q50 = m.queueing_delay(50, 100);
        assert!((q50 - 1.0).abs() < 1e-12); // 0.5 / 0.5
        let q90 = m.queueing_delay(90, 100);
        assert!((q90 - 9.0).abs() < 1e-9);
        assert!(q90 > q50);
    }

    #[test]
    fn saturated_server_costs_beta() {
        let m = CostModel::paper_example();
        assert_eq!(m.queueing_delay(99, 100), m.beta);
        assert_eq!(m.queueing_delay(150, 100), m.beta);
    }

    #[test]
    fn connection_cost_formula() {
        let m = CostModel::paper_example();
        // C=2 units, ρ=0.5 -> Q=1, z=0.5: TC = 2*4 + (1+0.5)*1 = 9.5
        let tc = m.connection_cost(2.0, 50, 100, 0.5);
        assert!((tc - 9.5).abs() < 1e-12);
    }

    #[test]
    fn channel_queueing_reduces_to_base_at_zero_load() {
        let m = CostModel::paper_example();
        let base = m.connection_cost(2.0, 50, 100, 0.5);
        let with = m.connection_cost_with_channel(2.0, 0.0, 50, 100, 0.5);
        assert_eq!(base, with);
        // A half-loaded channel doubles the effective communication time.
        let busy = m.connection_cost_with_channel(2.0, 0.5, 50, 100, 0.5);
        assert!((busy - (2.0 * 2.0 * 4.0 + 1.5)).abs() < 1e-9);
        // A saturated channel hits the beta wall.
        let jammed = m.connection_cost_with_channel(2.0, 0.999, 50, 100, 0.5);
        assert!(jammed > m.beta);
    }

    #[test]
    fn validation_catches_bad_constants() {
        let mut m = CostModel::paper_example();
        assert!(m.validate().is_ok());
        m.rho_cutoff = 1.5;
        assert!(m.validate().unwrap_err().contains("rho_cutoff"));
        let mut m2 = CostModel::paper_example();
        m2.w_comm = -1.0;
        assert!(m2.validate().is_err());
        let mut m3 = CostModel::paper_example();
        m3.beta = f64::INFINITY;
        assert!(m3.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        CostModel::paper_example().queueing_delay(1, 0);
    }

    #[test]
    #[should_panic(expected = "max_load must be positive")]
    fn zero_capacity_spec_panics() {
        let _ = ServerSpec::new(0, 0.5);
    }
}
