//! The GetMail retrieval algorithm of §3.1.2c.
//!
//! Mail is deposited in the **first alive server** of the recipient's
//! ordered authority list, so when servers fail, a user's mail may be
//! spread over several servers. The naive retrieval polls every authority
//! server; the paper's algorithm avoids that with two pieces of
//! bookkeeping:
//!
//! * `LastCheckingTime[user]` — when the user last checked mail;
//! * `PreviouslyUnavailableServers[user]` — servers that were down during
//!   some earlier check and may still be buffering old mail;
//!
//! plus one per-server register, `LastStartTime[server]` — when the server
//! last recovered or was initialised (clocks need only coarse
//! synchronisation, "a second or even a slower unit").
//!
//! The check walks the authority list; as soon as it reaches an alive
//! server whose `LastStartTime` *precedes* the user's `LastCheckingTime`,
//! it stops — that server has been up for the whole interval, so every
//! deposit since the last check landed there or earlier in the list.
//! Finally it drains any alive servers left in
//! `PreviouslyUnavailableServers`. Under normal conditions (primary up
//! continuously) this is exactly **one poll**, and §5 claims no messages
//! are ever lost; `repro-getmail` measures both.

use std::collections::BTreeSet;

use lems_core::message::MessageId;
use lems_net::graph::NodeId;
use lems_sim::time::SimTime;

/// Reply from probing one server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProbeReply {
    /// The server's `LastStartTime`: when it last recovered or booted.
    pub last_start_time: SimTime,
    /// The stored messages for the user, drained by the probe.
    pub messages: Vec<MessageId>,
}

/// The storage side GetMail talks to: either simulated servers or the
/// analytic [`PlanStore`] used by experiments.
pub trait MailStore {
    /// Polls `server` at `now` on behalf of one user. Returns `None` when
    /// the server is down or unreachable; otherwise drains and returns the
    /// user's stored mail along with the server's `LastStartTime`.
    fn probe(&mut self, server: NodeId, now: SimTime) -> Option<ProbeReply>;
}

/// Per-user retrieval bookkeeping (lives in the user interface).
#[derive(Clone, Debug, Default)]
pub struct GetMailState {
    last_checking_time: SimTime,
    previously_unavailable: BTreeSet<NodeId>,
}

/// What one retrieval accomplished.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RetrievalOutcome {
    /// Probe attempts made (alive or not) — the cost the paper compares
    /// against the poll-everything baseline.
    pub polls: u32,
    /// Messages retrieved, in probe order.
    pub retrieved: Vec<MessageId>,
    /// True if the walk reached the end of the authority list without the
    /// early-exit condition firing (first check, or every server restarted
    /// since the last check).
    pub exhausted_list: bool,
}

impl GetMailState {
    /// Creates fresh state (no checks yet).
    pub fn new() -> Self {
        GetMailState::default()
    }

    /// When the user last checked mail.
    pub fn last_checking_time(&self) -> SimTime {
        self.last_checking_time
    }

    /// Servers recorded as previously unavailable.
    pub fn previously_unavailable(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.previously_unavailable.iter().copied()
    }

    /// Runs the paper's `GetMail` procedure at `now` over the user's
    /// authority list.
    ///
    /// # Panics
    ///
    /// Panics if `authorities` is empty.
    pub fn get_mail(
        &mut self,
        authorities: &[NodeId],
        store: &mut impl MailStore,
        now: SimTime,
    ) -> RetrievalOutcome {
        assert!(!authorities.is_empty(), "authority list must not be empty");
        let current_checking_time = now;
        let mut out = RetrievalOutcome::default();
        let mut finished = false;
        let mut probed_this_check: BTreeSet<NodeId> = BTreeSet::new();

        for &server in authorities {
            if finished {
                break;
            }
            out.polls += 1;
            probed_this_check.insert(server);
            match store.probe(server, now) {
                Some(reply) => {
                    out.retrieved.extend(reply.messages);
                    self.previously_unavailable.remove(&server);
                    if self.last_checking_time > reply.last_start_time {
                        finished = true;
                    }
                }
                None => {
                    self.previously_unavailable.insert(server);
                }
            }
        }
        out.exhausted_list = !finished;

        // Drain old mail from servers that were unavailable at earlier
        // checks and are reachable again now. Servers already probed during
        // the walk above are skipped: alive ones were drained there, dead
        // ones stay recorded for next time.
        let pending: Vec<NodeId> = self
            .previously_unavailable
            .iter()
            .copied()
            .filter(|s| !probed_this_check.contains(s))
            .collect();
        for server in pending {
            out.polls += 1;
            if let Some(reply) = store.probe(server, now) {
                out.retrieved.extend(reply.messages);
                self.previously_unavailable.remove(&server);
            }
        }

        self.last_checking_time = current_checking_time;
        out
    }
}

/// The baseline: poll every authority server, every time.
pub fn poll_all(
    authorities: &[NodeId],
    store: &mut impl MailStore,
    now: SimTime,
) -> RetrievalOutcome {
    assert!(!authorities.is_empty(), "authority list must not be empty");
    let mut out = RetrievalOutcome::default();
    for &server in authorities {
        out.polls += 1;
        if let Some(reply) = store.probe(server, now) {
            out.retrieved.extend(reply.messages);
        }
    }
    out.exhausted_list = true;
    out
}

/// An analytic [`MailStore`] over a [`FailurePlan`]: servers are up or down
/// exactly as the plan says, `LastStartTime` is derived from the plan's
/// outages, and deposits follow the delivery rule (first alive server in
/// the recipient's list).
///
/// [`FailurePlan`]: lems_sim::failure::FailurePlan
#[derive(Clone, Debug)]
pub struct PlanStore {
    plan: lems_sim::failure::FailurePlan,
    /// NodeId -> ActorId mapping is identity here: experiments index
    /// servers directly by node.
    stored: std::collections::HashMap<NodeId, Vec<MessageId>>,
    deposited: u64,
    lost: u64,
}

impl PlanStore {
    /// Creates a store governed by `plan` (node `n` maps to the plan's
    /// actor `n`).
    pub fn new(plan: lems_sim::failure::FailurePlan) -> Self {
        PlanStore {
            plan,
            stored: std::collections::HashMap::new(),
            deposited: 0,
            lost: 0,
        }
    }

    fn is_up(&self, server: NodeId, at: SimTime) -> bool {
        self.plan.is_up(lems_sim::actor::ActorId(server.0), at)
    }

    /// `LastStartTime` of `server` as of `at`: the end of the latest outage
    /// that finished at or before `at` (or time zero if none).
    pub fn last_start_time(&self, server: NodeId, at: SimTime) -> SimTime {
        self.plan
            .outages(lems_sim::actor::ActorId(server.0))
            .iter()
            .filter(|o| o.up_at <= at)
            .map(|o| o.up_at)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Deposits `id` at the first alive server of `authorities` at time
    /// `at` (the delivery rule). Returns the chosen server, or `None` — and
    /// counts the message lost — if every server is down.
    pub fn deposit(
        &mut self,
        authorities: &[NodeId],
        id: MessageId,
        at: SimTime,
    ) -> Option<NodeId> {
        for &s in authorities {
            if self.is_up(s, at) {
                self.stored.entry(s).or_default().push(id);
                self.deposited += 1;
                return Some(s);
            }
        }
        self.lost += 1;
        None
    }

    /// Messages successfully deposited so far.
    pub fn deposited_count(&self) -> u64 {
        self.deposited
    }

    /// Deposit attempts that found every server down (bounced, not lost in
    /// storage — the sender is told).
    pub fn undeliverable_count(&self) -> u64 {
        self.lost
    }

    /// Messages still sitting in server storage.
    pub fn in_storage(&self) -> usize {
        self.stored.values().map(Vec::len).sum()
    }
}

impl MailStore for PlanStore {
    fn probe(&mut self, server: NodeId, now: SimTime) -> Option<ProbeReply> {
        if !self.is_up(server, now) {
            return None;
        }
        let messages = self.stored.remove(&server).unwrap_or_default();
        Some(ProbeReply {
            last_start_time: self.last_start_time(server, now),
            messages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lems_sim::actor::ActorId;
    use lems_sim::failure::FailurePlan;

    fn t(u: f64) -> SimTime {
        SimTime::from_units(u)
    }

    fn servers() -> Vec<NodeId> {
        vec![NodeId(0), NodeId(1), NodeId(2)]
    }

    #[test]
    fn steady_state_is_one_poll() {
        let mut store = PlanStore::new(FailurePlan::new());
        let auth = servers();
        let mut st = GetMailState::new();
        // First check ever: walks the whole list (conservative).
        let first = st.get_mail(&auth, &mut store, t(1.0));
        assert_eq!(first.polls, 3);
        assert!(first.exhausted_list);
        // From then on: one poll per check.
        for i in 2..10 {
            store.deposit(&auth, MessageId(i), t(i as f64 - 0.5));
            let out = st.get_mail(&auth, &mut store, t(i as f64));
            assert_eq!(out.polls, 1, "check {i}");
            assert_eq!(out.retrieved, vec![MessageId(i)]);
            assert!(!out.exhausted_list);
        }
    }

    #[test]
    fn failover_deposits_are_recovered() {
        let mut plan = FailurePlan::new();
        // Primary down between t=2 and t=6.
        plan.add_outage(ActorId(0), t(2.0), t(6.0)).unwrap();
        let mut store = PlanStore::new(plan);
        let auth = servers();
        let mut st = GetMailState::new();
        let _ = st.get_mail(&auth, &mut store, t(1.0)); // settle

        // Deposited while primary is down -> lands on secondary.
        assert_eq!(
            store.deposit(&auth, MessageId(100), t(3.0)),
            Some(NodeId(1))
        );
        // Check while primary is still down: poll primary (down), then
        // secondary (up, start-time 0 < last check -> finished).
        let out = st.get_mail(&auth, &mut store, t(4.0));
        assert_eq!(out.retrieved, vec![MessageId(100)]);
        assert_eq!(out.polls, 2);
        // Primary is now in PreviouslyUnavailableServers.
        assert_eq!(
            st.previously_unavailable().collect::<Vec<_>>(),
            vec![NodeId(0)]
        );

        // After recovery, the next check probes the primary; its
        // LastStartTime (6.0) is newer than our last check (4.0), so the
        // walk continues to the secondary, and PUS is cleared.
        store.deposit(&auth, MessageId(101), t(7.0)); // lands on primary again
        let out = st.get_mail(&auth, &mut store, t(8.0));
        assert!(out.retrieved.contains(&MessageId(101)));
        assert!(st.previously_unavailable().next().is_none());
        assert_eq!(store.in_storage(), 0, "no mail left behind");
    }

    #[test]
    fn mail_stranded_on_crashed_server_is_recovered_later() {
        let mut plan = FailurePlan::new();
        plan.add_outage(ActorId(0), t(4.0), t(10.0)).unwrap();
        let mut store = PlanStore::new(plan);
        let auth = servers();
        let mut st = GetMailState::new();
        let _ = st.get_mail(&auth, &mut store, t(1.0));

        // Deposited on the primary before it crashes.
        store.deposit(&auth, MessageId(200), t(3.0));
        // User checks while primary is down; the message is stranded there.
        let out = st.get_mail(&auth, &mut store, t(5.0));
        assert!(out.retrieved.is_empty());
        // Primary recovers; next check drains it (via the early walk since
        // LastStartTime > LastCheckingTime continues the scan, and the PUS
        // sweep as a second line of defence).
        let out = st.get_mail(&auth, &mut store, t(11.0));
        assert_eq!(out.retrieved, vec![MessageId(200)]);
        assert_eq!(store.in_storage(), 0);
    }

    #[test]
    fn poll_all_baseline_always_polls_everything() {
        let mut store = PlanStore::new(FailurePlan::new());
        let auth = servers();
        store.deposit(&auth, MessageId(1), t(0.5));
        let out = poll_all(&auth, &mut store, t(1.0));
        assert_eq!(out.polls, 3);
        assert_eq!(out.retrieved, vec![MessageId(1)]);
        let out2 = poll_all(&auth, &mut store, t(2.0));
        assert_eq!(out2.polls, 3);
        assert!(out2.retrieved.is_empty());
    }

    #[test]
    fn deposit_with_all_servers_down_bounces() {
        let mut plan = FailurePlan::new();
        for i in 0..3 {
            plan.add_outage(ActorId(i), t(1.0), t(9.0)).unwrap();
        }
        let mut store = PlanStore::new(plan);
        let auth = servers();
        assert_eq!(store.deposit(&auth, MessageId(5), t(2.0)), None);
        assert_eq!(store.undeliverable_count(), 1);
        assert_eq!(store.deposited_count(), 0);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_authority_list_panics() {
        let mut store = PlanStore::new(FailurePlan::new());
        let mut st = GetMailState::new();
        let _ = st.get_mail(&[], &mut store, t(1.0));
    }

    /// End-to-end ledger test: random failures, random deposits and
    /// checks; every deposited message is eventually retrieved exactly
    /// once (§5: "no messages will be lost even when some servers fail").
    #[test]
    fn no_message_lost_under_random_failures() {
        use lems_sim::rng::SimRng;
        let rng = SimRng::seed(42);
        for trial in 0..20 {
            let mut trial_rng = rng.fork(&format!("trial{trial}"));
            let actors: Vec<ActorId> = (0..3).map(ActorId).collect();
            let plan = FailurePlan::random(
                &mut trial_rng,
                &actors,
                lems_sim::time::SimDuration::from_units(30.0),
                lems_sim::time::SimDuration::from_units(10.0),
                t(400.0),
            )
            .expect("valid random-plan parameters");
            let mut store = PlanStore::new(plan);
            let auth = servers();
            let mut st = GetMailState::new();
            let mut expected = std::collections::HashSet::<MessageId>::new();
            let mut got: Vec<MessageId> = Vec::new();
            let mut next_id = 0u64;

            let mut time = 0.0;
            while time < 400.0 {
                time += trial_rng.unit() * 5.0 + 0.5;
                if trial_rng.chance(0.6) {
                    let id = MessageId(next_id);
                    next_id += 1;
                    if store.deposit(&auth, id, t(time)).is_some() {
                        expected.insert(id);
                    }
                } else {
                    got.extend(st.get_mail(&auth, &mut store, t(time)).retrieved);
                }
            }
            // Final checks after all outages end (horizon 400): drain.
            got.extend(st.get_mail(&auth, &mut store, t(500.0)).retrieved);
            got.extend(st.get_mail(&auth, &mut store, t(501.0)).retrieved);

            let got_set: std::collections::HashSet<MessageId> = got.iter().copied().collect();
            assert_eq!(
                got.len(),
                got_set.len(),
                "duplicate retrievals (trial {trial})"
            );
            assert_eq!(got_set, expected, "lost/extra mail (trial {trial})");
            assert_eq!(
                store.in_storage(),
                0,
                "mail left in storage (trial {trial})"
            );
        }
    }
}
