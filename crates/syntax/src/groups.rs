//! Group naming via distribution lists (§4.3).
//!
//! The paper lists "group naming" among the flexibility criteria and
//! §3.3.1B notes that without attribute addressing a mass mailing needs a
//! "distribution list … to be available". This module is that
//! conventional mechanism for Systems 1 and 2: named lists whose members
//! are users or other lists, expanded recursively with cycle and depth
//! protection — the baseline the attribute-based System 3 is an
//! alternative to.

use std::collections::{BTreeMap, BTreeSet};

use lems_core::name::MailName;
use serde::{Deserialize, Serialize};

/// A member of a distribution list.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum Member {
    /// A user, by full name.
    User(MailName),
    /// Another list, by list name.
    List(String),
}

/// Error from group operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GroupError {
    /// The named list does not exist.
    UnknownList(String),
    /// Expansion exceeded the depth bound (deep nesting or a cycle
    /// escaping detection through aliasing).
    TooDeep {
        /// The list whose expansion blew the bound.
        list: String,
        /// The bound that was hit.
        max_depth: usize,
    },
}

impl std::fmt::Display for GroupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupError::UnknownList(l) => write!(f, "unknown distribution list {l:?}"),
            GroupError::TooDeep { list, max_depth } => {
                write!(f, "expanding {list:?} exceeded depth {max_depth}")
            }
        }
    }
}

impl std::error::Error for GroupError {}

/// Maximum nesting depth honoured by [`GroupTable::expand`].
pub const MAX_EXPANSION_DEPTH: usize = 32;

/// The server-side table of distribution lists.
///
/// # Examples
///
/// ```
/// use lems_syntax::groups::{GroupTable, Member};
///
/// let mut t = GroupTable::new();
/// t.define("staff", vec![
///     Member::User("east.h1.alice".parse()?),
///     Member::User("east.h1.bob".parse()?),
/// ]);
/// t.define("everyone", vec![
///     Member::List("staff".into()),
///     Member::User("west.h2.carol".parse()?),
/// ]);
/// let members = t.expand("everyone")?;
/// assert_eq!(members.len(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct GroupTable {
    lists: BTreeMap<String, Vec<Member>>,
}

impl GroupTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        GroupTable::default()
    }

    /// Defines (or redefines) a list.
    pub fn define(&mut self, name: &str, members: Vec<Member>) {
        self.lists.insert(name.to_owned(), members);
    }

    /// Removes a list; returns whether it existed. Dangling references
    /// from other lists surface as [`GroupError::UnknownList`] at
    /// expansion time.
    pub fn remove(&mut self, name: &str) -> bool {
        self.lists.remove(name).is_some()
    }

    /// True if the list exists.
    pub fn contains(&self, name: &str) -> bool {
        self.lists.contains_key(name)
    }

    /// Number of defined lists.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// True when no lists are defined.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// Expands a list to its set of users (deduplicated, sorted).
    /// Nested lists expand recursively; each list is visited at most once
    /// per expansion, so mutually recursive lists are handled gracefully.
    ///
    /// # Errors
    ///
    /// Returns [`GroupError::UnknownList`] for missing lists (top-level or
    /// nested) and [`GroupError::TooDeep`] past
    /// [`MAX_EXPANSION_DEPTH`].
    pub fn expand(&self, name: &str) -> Result<Vec<MailName>, GroupError> {
        let mut out = BTreeSet::new();
        let mut visited = BTreeSet::new();
        self.expand_into(name, &mut out, &mut visited, 0)?;
        Ok(out.into_iter().collect())
    }

    fn expand_into(
        &self,
        name: &str,
        out: &mut BTreeSet<MailName>,
        visited: &mut BTreeSet<String>,
        depth: usize,
    ) -> Result<(), GroupError> {
        if depth > MAX_EXPANSION_DEPTH {
            return Err(GroupError::TooDeep {
                list: name.to_owned(),
                max_depth: MAX_EXPANSION_DEPTH,
            });
        }
        if !visited.insert(name.to_owned()) {
            return Ok(()); // cycle: already expanded on this walk
        }
        let members = self
            .lists
            .get(name)
            .ok_or_else(|| GroupError::UnknownList(name.to_owned()))?;
        for m in members {
            match m {
                Member::User(u) => {
                    out.insert(u.clone());
                }
                Member::List(l) => self.expand_into(l, out, visited, depth + 1)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user(s: &str) -> Member {
        Member::User(s.parse().unwrap())
    }

    #[test]
    fn flat_expansion_dedupes() {
        let mut t = GroupTable::new();
        t.define(
            "l",
            vec![user("east.h.a"), user("east.h.b"), user("east.h.a")],
        );
        let got = t.expand("l").unwrap();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn nested_expansion() {
        let mut t = GroupTable::new();
        t.define("inner", vec![user("east.h.a")]);
        t.define(
            "outer",
            vec![Member::List("inner".into()), user("east.h.b")],
        );
        let got = t.expand("outer").unwrap();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn cycles_terminate() {
        let mut t = GroupTable::new();
        t.define("a", vec![Member::List("b".into()), user("east.h.x")]);
        t.define("b", vec![Member::List("a".into()), user("east.h.y")]);
        let got = t.expand("a").unwrap();
        assert_eq!(got.len(), 2, "both users found despite the a<->b cycle");
    }

    #[test]
    fn unknown_lists_error() {
        let t = GroupTable::new();
        assert!(matches!(t.expand("ghost"), Err(GroupError::UnknownList(_))));
        let mut t = GroupTable::new();
        t.define("l", vec![Member::List("ghost".into())]);
        let err = t.expand("l").unwrap_err();
        assert_eq!(err.to_string(), "unknown distribution list \"ghost\"");
    }

    #[test]
    fn removal_leaves_dangling_references() {
        let mut t = GroupTable::new();
        t.define("inner", vec![user("east.h.a")]);
        t.define("outer", vec![Member::List("inner".into())]);
        assert!(t.remove("inner"));
        assert!(!t.remove("inner"));
        assert!(t.expand("outer").is_err());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn deep_chain_within_bound() {
        let mut t = GroupTable::new();
        t.define("l0", vec![user("east.h.z")]);
        for i in 1..=MAX_EXPANSION_DEPTH {
            t.define(&format!("l{i}"), vec![Member::List(format!("l{}", i - 1))]);
        }
        let got = t.expand(&format!("l{MAX_EXPANSION_DEPTH}")).unwrap();
        assert_eq!(got.len(), 1);
    }
}
