//! # lems-syntax — System 1: mail with syntax-directed naming
//!
//! The first of the three designs in *"Designing Large Electronic Mail
//! Systems"* (Bahaa-El-Din & Yuen, ICDCS 1988): users carry
//! location-dependent `region.host.user` names, and every mail-system
//! function keys off the syntax of those names.
//!
//! * [`cost`] — the `TC_ij = C_ij·W1 + (Q(ρ)+z)·W2` connection-cost model
//!   with its M/M/1 waiting-time estimate (§3.1.1);
//! * [`assign`] — the load-balancing server-assignment algorithm:
//!   nearest-server initialisation (Tables 1, 3) plus the iterative
//!   balancing loop (Table 2);
//! * [`resolve`] — syntax-directed name resolution with region forwarding
//!   (§3.1.2b);
//! * [`getmail`] — the GetMail retrieval algorithm and the poll-everything
//!   baseline (§3.1.2c), with the paper's "≈ one poll, no mail lost"
//!   guarantees;
//! * [`actors`] — the full simulated system: host/user-interface and
//!   server actors, connection setup with failover, store-and-forward
//!   delivery, notifications, and asynchronous GetMail over real timeouts;
//! * [`groups`] — distribution lists with nested expansion (§4.3 group
//!   naming — the conventional baseline System 3 replaces);
//! * [`cache`] — the §4.1 "caching capability": LRU+TTL resolution
//!   caching with reconfiguration-aware invalidation;
//! * [`retention`] — the §3.1.2c archiving/clean-up policy protecting
//!   server storage;
//! * [`reconfig`] — add/delete users, hosts, servers with rebalancing
//!   (§3.1.3);
//! * [`migrate`] — rename + redirect + notify for migrating users
//!   (§3.1.4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actors;
pub mod assign;
pub mod cache;
pub mod cost;
pub mod getmail;
pub mod groups;
pub mod migrate;
pub mod reconfig;
pub mod resolve;
pub mod retention;

pub use actors::{
    ChaosError, DeliveryStats, Deployment, DeploymentConfig, LinkChaos, MailMsg, Partition,
    ServerFailurePlan, SessionConfig,
};
pub use assign::{
    balance, balance_par, balance_sync, initialize, solve, solve_par, solve_sync, Assignment,
    AssignmentProblem, BalanceOptions, BalanceReport, ScaleOptions, ScaleReport,
};
pub use cache::{CacheStats, ResolutionCache};
pub use cost::{CostModel, ServerSpec};
pub use getmail::{GetMailState, MailStore, PlanStore, ProbeReply, RetrievalOutcome};
pub use groups::{GroupError, GroupTable, Member};
pub use migrate::{migrate_user, MigrationOutcome, Redirect, RedirectTable};
pub use reconfig::{ReconfigReport, Reconfigurator};
pub use resolve::{Resolution, SyntaxResolver};
pub use retention::{sweep as retention_sweep, CleanupReport, RetentionPolicy};
