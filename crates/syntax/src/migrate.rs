//! User migration under syntax-directed naming (§3.1.4).
//!
//! "Since the names in this system are location dependent …, migrated
//! users have to change their names to indicate their new locations. Also
//! the users are assigned to new servers. Basically the operation involves
//! adding the user to the new location, then deleting the user from the
//! old location. Between the two operations, mail addressed to a migrated
//! user can be redirected to the new user address, and the senders are
//! notified about the name changes."

use std::collections::BTreeMap;

use lems_core::directory::{Directory, DirectoryError};
use lems_core::name::MailName;
use lems_core::user::AuthorityList;
use lems_net::graph::NodeId;
use lems_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// A forwarding entry left behind at the old location.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Redirect {
    /// The name mail may still be addressed to.
    pub old_name: MailName,
    /// Where it should go now.
    pub new_name: MailName,
    /// The entry is honoured until this instant, after which mail to the
    /// old name bounces with a name-change notification.
    #[serde(skip, default = "SimTime::default")]
    pub expires_at: SimTime,
}

/// The old region's table of migrated users.
///
/// # Examples
///
/// ```
/// use lems_syntax::migrate::RedirectTable;
/// use lems_sim::time::SimTime;
///
/// let mut t = RedirectTable::new();
/// let old = "east.h1.alice".parse()?;
/// let new = "west.h9.alice".parse()?;
/// t.insert(old, new, SimTime::from_units(100.0));
/// let hit = t.lookup(&"east.h1.alice".parse()?, SimTime::from_units(50.0));
/// assert!(hit.is_some());
/// let miss = t.lookup(&"east.h1.alice".parse()?, SimTime::from_units(150.0));
/// assert!(miss.is_none());
/// # Ok::<(), lems_core::name::ParseNameError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct RedirectTable {
    entries: BTreeMap<MailName, Redirect>,
    /// Senders notified of name changes (old name -> notification count).
    notifications: BTreeMap<MailName, u64>,
}

impl RedirectTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        RedirectTable::default()
    }

    /// Installs a redirect.
    pub fn insert(&mut self, old_name: MailName, new_name: MailName, expires_at: SimTime) {
        self.entries.insert(
            old_name.clone(),
            Redirect {
                old_name,
                new_name,
                expires_at,
            },
        );
    }

    /// Looks up a still-valid redirect; records a sender notification on
    /// every hit ("the senders are notified about the name changes").
    pub fn lookup(&mut self, name: &MailName, now: SimTime) -> Option<&Redirect> {
        let hit = self.entries.get(name).filter(|r| now < r.expires_at);
        if hit.is_some() {
            *self.notifications.entry(name.clone()).or_insert(0) += 1;
        }
        hit
    }

    /// Drops expired entries, returning how many were removed.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, r| now < r.expires_at);
        before - self.entries.len()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries remain.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many redirected lookups have hit `old_name`.
    pub fn notification_count(&self, old_name: &MailName) -> u64 {
        self.notifications.get(old_name).copied().unwrap_or(0)
    }
}

/// Result of migrating one user.
#[derive(Clone, Debug)]
pub struct MigrationOutcome {
    /// The retired name.
    pub old_name: MailName,
    /// The new name at the new location.
    pub new_name: MailName,
    /// The redirect left behind.
    pub redirect_expires_at: SimTime,
}

/// Performs the §3.1.4 migration: register the user under a new
/// location-dependent name, retire the old name, and leave a redirect for
/// `redirect_ttl` worth of time.
///
/// # Errors
///
/// Returns the directory's error if the old name is unknown or the new
/// name is taken; the directory is left unchanged on error.
#[allow(clippy::too_many_arguments)] // mirrors the paper's migration inputs
pub fn migrate_user(
    directory: &mut Directory,
    redirects: &mut RedirectTable,
    old_name: &MailName,
    new_region_token: &str,
    new_host_token: &str,
    new_home_host: NodeId,
    new_authorities: AuthorityList,
    now: SimTime,
    redirect_ttl: lems_sim::time::SimDuration,
) -> Result<MigrationOutcome, DirectoryError> {
    let old = directory
        .by_name(old_name)
        .ok_or_else(|| DirectoryError::UnknownName(old_name.clone()))?
        .clone();
    let new_name = old
        .name
        .relocated(new_region_token, new_host_token)
        .map_err(|_| DirectoryError::UnknownName(old_name.clone()))?;

    // "Adding the user to the new location, then deleting the user from
    // the old location."
    directory.register(new_name.clone(), new_home_host, new_authorities)?;
    directory.unregister(old_name)?;

    let expires_at = now + redirect_ttl;
    redirects.insert(old_name.clone(), new_name.clone(), expires_at);

    Ok(MigrationOutcome {
        old_name: old_name.clone(),
        new_name,
        redirect_expires_at: expires_at,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lems_sim::time::SimDuration;

    fn t(u: f64) -> SimTime {
        SimTime::from_units(u)
    }

    fn setup() -> (Directory, RedirectTable) {
        let mut d = Directory::new();
        d.map_region("east", lems_net::topology::RegionId(0));
        d.map_region("west", lems_net::topology::RegionId(1));
        d.register(
            "east.h1.alice".parse().unwrap(),
            NodeId(10),
            AuthorityList::new(vec![NodeId(0)]),
        )
        .unwrap();
        (d, RedirectTable::new())
    }

    #[test]
    fn migration_renames_and_redirects() {
        let (mut d, mut r) = setup();
        let old: MailName = "east.h1.alice".parse().unwrap();
        let out = migrate_user(
            &mut d,
            &mut r,
            &old,
            "west",
            "h9",
            NodeId(20),
            AuthorityList::new(vec![NodeId(5)]),
            t(10.0),
            SimDuration::from_units(50.0),
        )
        .unwrap();
        assert_eq!(out.new_name.to_string(), "west.h9.alice");
        assert!(!d.is_registered(&old));
        assert!(d.is_registered(&out.new_name));

        // Mail to the old name redirects while the entry is live …
        let hit = r.lookup(&old, t(30.0)).cloned().unwrap();
        assert_eq!(hit.new_name, out.new_name);
        assert_eq!(r.notification_count(&old), 1);
        // … and stops after expiry.
        assert!(r.lookup(&old, t(70.0)).is_none());
        assert_eq!(r.expire(t(70.0)), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn migrating_unknown_user_fails_cleanly() {
        let (mut d, mut r) = setup();
        let ghost: MailName = "east.h1.ghost".parse().unwrap();
        let err = migrate_user(
            &mut d,
            &mut r,
            &ghost,
            "west",
            "h9",
            NodeId(20),
            AuthorityList::new(vec![NodeId(5)]),
            t(1.0),
            SimDuration::from_units(10.0),
        )
        .unwrap_err();
        assert!(matches!(err, DirectoryError::UnknownName(_)));
        assert_eq!(d.len(), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn migration_to_taken_name_fails_without_side_effects() {
        let (mut d, mut r) = setup();
        d.register(
            "west.h9.alice".parse().unwrap(),
            NodeId(21),
            AuthorityList::new(vec![NodeId(6)]),
        )
        .unwrap();
        let old: MailName = "east.h1.alice".parse().unwrap();
        let err = migrate_user(
            &mut d,
            &mut r,
            &old,
            "west",
            "h9",
            NodeId(20),
            AuthorityList::new(vec![NodeId(5)]),
            t(1.0),
            SimDuration::from_units(10.0),
        )
        .unwrap_err();
        assert!(matches!(err, DirectoryError::DuplicateName(_)));
        assert!(
            d.is_registered(&old),
            "old name must survive a failed migration"
        );
        assert!(r.is_empty());
    }
}
