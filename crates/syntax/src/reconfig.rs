//! Reconfiguration procedures of §3.1.3: adding and deleting users, hosts,
//! and servers, with re-balancing through the §3.1.1 assignment algorithm.
//!
//! Reconfiguration operates on the assignment state (`AssignmentProblem` +
//! `Assignment`); pushing the resulting authority-list changes into a
//! running deployment is the caller's job (the paper: "some changes are
//! made to tables in all servers").

use lems_net::graph::NodeId;
use serde::{Deserialize, Serialize};

use crate::assign::{
    balance, Assignment, AssignmentProblem, BalanceOptions, BalanceReport, HostSpec,
};
use crate::cost::ServerSpec;

/// What a reconfiguration step did.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct ReconfigReport {
    /// Users whose server assignment changed.
    pub moved_users: u64,
    /// Servers that had to be told about the change (table updates).
    pub notified_servers: usize,
    /// The balancing pass that followed, if one ran.
    pub rebalance: Option<BalanceReport>,
}

/// Assignment state plus the operations of §3.1.3.
#[derive(Clone, Debug)]
pub struct Reconfigurator {
    problem: AssignmentProblem,
    assignment: Assignment,
    opts: BalanceOptions,
}

impl Reconfigurator {
    /// Wraps an existing problem/assignment pair.
    pub fn new(problem: AssignmentProblem, assignment: Assignment, opts: BalanceOptions) -> Self {
        Reconfigurator {
            problem,
            assignment,
            opts,
        }
    }

    /// The current problem.
    pub fn problem(&self) -> &AssignmentProblem {
        &self.problem
    }

    /// The current assignment.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    fn snapshot(&self) -> Vec<Vec<u32>> {
        (0..self.problem.host_count())
            .map(|i| {
                (0..self.problem.server_count())
                    .map(|j| self.assignment.count(i, j))
                    .collect()
            })
            .collect()
    }

    /// Users moved between two snapshots with identical shapes.
    fn moved_since(&self, before: &[Vec<u32>]) -> u64 {
        let mut moved = 0u64;
        for (i, row_before) in before.iter().enumerate().take(self.problem.host_count()) {
            for (j, &b) in row_before
                .iter()
                .enumerate()
                .take(self.problem.server_count())
            {
                let after = self.assignment.count(i, j);
                if after < b {
                    moved += u64::from(b - after);
                }
            }
        }
        moved
    }

    /// §3.1.3a: adds `k` users to host `host` — "a simple procedure that
    /// does not have to balance the load": they go to the cheapest server
    /// at current loads. If that overloads servers, a rebalance runs.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn add_users(&mut self, host: usize, k: u32) -> ReconfigReport {
        assert!(
            host < self.problem.host_count(),
            "unknown host index {host}"
        );
        let before = self.snapshot();
        self.problem.hosts[host].users += k;
        let j = (0..self.problem.server_count())
            .min_by(|&x, &y| {
                self.problem
                    .tc(host, x, self.assignment.load(x))
                    .total_cmp(&self.problem.tc(host, y, self.assignment.load(y)))
            })
            .unwrap_or(0);
        self.assignment.place(host, j, k);

        let mut report = ReconfigReport {
            notified_servers: 1,
            ..ReconfigReport::default()
        };
        if !self.assignment.overloaded(&self.problem).is_empty() {
            report.rebalance = Some(balance(&self.problem, &mut self.assignment, self.opts));
            report.notified_servers = self.problem.server_count();
        }
        report.moved_users = self.moved_since(&before);
        report
    }

    /// §3.1.3a: removes `k` users from host `host`, draining its most
    /// loaded servers first.
    ///
    /// # Panics
    ///
    /// Panics if the host has fewer than `k` users.
    pub fn remove_users(&mut self, host: usize, k: u32) -> ReconfigReport {
        assert!(
            self.problem.hosts[host].users >= k,
            "host {host} has fewer than {k} users"
        );
        self.problem.hosts[host].users -= k;
        let mut left = k;
        while left > 0 {
            // The assertion above guarantees enough placed users exist.
            let Some(j) = (0..self.problem.server_count())
                .filter(|&j| self.assignment.count(host, j) > 0)
                .max_by_key(|&j| self.assignment.count(host, j))
            else {
                break;
            };
            let take = left.min(self.assignment.count(host, j));
            self.assignment.remove(host, j, take);
            left -= take;
        }
        ReconfigReport {
            moved_users: u64::from(k),
            notified_servers: 1,
            ..ReconfigReport::default()
        }
    }

    /// §3.1.3b: adds a host with `users` users; `comm_row[j]` is its
    /// zero-load distance to server `j`. The new load is distributed by
    /// nearest-server placement followed by balancing.
    ///
    /// # Panics
    ///
    /// Panics if `comm_row` is misaligned with the servers.
    pub fn add_host(&mut self, node: NodeId, users: u32, comm_row: &[f64]) -> ReconfigReport {
        assert_eq!(
            comm_row.len(),
            self.problem.server_count(),
            "comm_row must cover every server"
        );
        self.problem.hosts.push(HostSpec { node, users });
        self.problem.comm.push_host_row(comm_row);
        // Grow the assignment matrix by rebuilding shape-compatibly.
        let mut grown = Assignment::empty(&self.problem);
        for i in 0..self.problem.host_count() - 1 {
            for j in 0..self.problem.server_count() {
                let c = self.assignment.count(i, j);
                if c > 0 {
                    grown.place(i, j, c);
                }
            }
        }
        self.assignment = grown;
        let host = self.problem.host_count() - 1;
        let j = (0..self.problem.server_count())
            .min_by(|&x, &y| self.problem.comm[host][x].total_cmp(&self.problem.comm[host][y]))
            .unwrap_or(0);
        self.assignment.place(host, j, users);
        let before = self.snapshot();
        let rebalance = balance(&self.problem, &mut self.assignment, self.opts);
        ReconfigReport {
            moved_users: self.moved_since(&before),
            notified_servers: self.problem.server_count(),
            rebalance: Some(rebalance),
        }
    }

    /// §3.1.3b: removes host `host` and its users; "the load balancing
    /// state among the servers is upset and our load balancing algorithm
    /// should be applied".
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn remove_host(&mut self, host: usize) -> ReconfigReport {
        assert!(
            host < self.problem.host_count(),
            "unknown host index {host}"
        );
        let users = self.problem.hosts[host].users;
        for j in 0..self.problem.server_count() {
            let c = self.assignment.count(host, j);
            if c > 0 {
                self.assignment.remove(host, j, c);
            }
        }
        self.problem.hosts.remove(host);
        self.problem.comm.remove_host_row(host);
        // Rebuild the matrix without the removed row.
        let mut shrunk = Assignment::empty(&self.problem);
        let mut old_i = 0;
        for i in 0..self.problem.host_count() {
            if old_i == host {
                old_i += 1;
            }
            for j in 0..self.problem.server_count() {
                let c = self.assignment.count(old_i, j);
                if c > 0 {
                    shrunk.place(i, j, c);
                }
            }
            old_i += 1;
        }
        self.assignment = shrunk;
        let before = self.snapshot();
        let rebalance = balance(&self.problem, &mut self.assignment, self.opts);
        ReconfigReport {
            moved_users: self.moved_since(&before) + u64::from(users),
            notified_servers: self.problem.server_count(),
            rebalance: Some(rebalance),
        }
    }

    /// §3.1.3c: adds a server. "First, the new server notifies all other
    /// servers about its being added … Then the server assignment procedure
    /// is performed to redistribute the load so that some users are
    /// assigned to the new server."
    ///
    /// `comm_col[i]` is host `i`'s zero-load distance to the new server.
    ///
    /// # Panics
    ///
    /// Panics if `comm_col` is misaligned with the hosts.
    pub fn add_server(
        &mut self,
        node: NodeId,
        spec: ServerSpec,
        comm_col: &[f64],
    ) -> ReconfigReport {
        assert_eq!(
            comm_col.len(),
            self.problem.host_count(),
            "comm_col must cover every host"
        );
        let notified = self.problem.server_count();
        self.problem.servers.push((node, spec));
        self.problem.comm.push_server_col(comm_col);
        // Extend the matrix with a zero column.
        let mut grown = Assignment::empty(&self.problem);
        for i in 0..self.problem.host_count() {
            for j in 0..self.problem.server_count() - 1 {
                let c = self.assignment.count(i, j);
                if c > 0 {
                    grown.place(i, j, c);
                }
            }
        }
        self.assignment = grown;
        let before = self.snapshot();
        let rebalance = balance(&self.problem, &mut self.assignment, self.opts);
        ReconfigReport {
            moved_users: self.moved_since(&before),
            notified_servers: notified,
            rebalance: Some(rebalance),
        }
    }

    /// §3.1.3c: deletes server `server`. "The server to be deleted notifies
    /// all other servers before it is removed. Those servers then cooperate
    /// to share the load of the removed server."
    ///
    /// # Panics
    ///
    /// Panics if it is the last server (users would have nowhere to go) or
    /// the index is out of range.
    pub fn remove_server(&mut self, server: usize) -> ReconfigReport {
        assert!(
            server < self.problem.server_count(),
            "unknown server {server}"
        );
        assert!(
            self.problem.server_count() > 1,
            "cannot remove the last server"
        );
        let displaced: u64 = (0..self.problem.host_count())
            .map(|i| u64::from(self.assignment.count(i, server)))
            .sum();

        // Move each host's users on the dying server to its cheapest other
        // server, then drop the column and rebalance.
        for i in 0..self.problem.host_count() {
            let c = self.assignment.count(i, server);
            if c == 0 {
                continue;
            }
            // Another server exists: the last-server case is asserted out
            // at the top of `remove_server`.
            let Some(j) = (0..self.problem.server_count())
                .filter(|&j| j != server)
                .min_by(|&x, &y| {
                    self.problem
                        .tc(i, x, self.assignment.load(x))
                        .total_cmp(&self.problem.tc(i, y, self.assignment.load(y)))
                })
            else {
                continue;
            };
            self.assignment.transfer(i, server, j, c);
        }

        self.problem.servers.remove(server);
        self.problem.comm.remove_server_col(server);
        let mut shrunk = Assignment::empty(&self.problem);
        for i in 0..self.problem.host_count() {
            let mut old_j = 0;
            for j in 0..self.problem.server_count() {
                if old_j == server {
                    old_j += 1;
                }
                let c = self.assignment.count(i, old_j);
                if c > 0 {
                    shrunk.place(i, j, c);
                }
                old_j += 1;
            }
        }
        self.assignment = shrunk;
        let before = self.snapshot();
        let rebalance = balance(&self.problem, &mut self.assignment, self.opts);
        ReconfigReport {
            moved_users: self.moved_since(&before) + displaced,
            notified_servers: self.problem.server_count(),
            rebalance: Some(rebalance),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{initialize, solve};
    use crate::cost::CostModel;
    use lems_net::generators::fig1;

    fn reconf() -> Reconfigurator {
        let f = fig1();
        let p = AssignmentProblem::from_topology(
            &f.topology,
            &f.users_per_host,
            ServerSpec::paper_example(),
            CostModel::paper_example(),
        );
        let (a, _) = solve(&p, BalanceOptions::default());
        Reconfigurator::new(p, a, BalanceOptions::default())
    }

    #[test]
    fn add_users_simple_path() {
        let mut r = reconf();
        let before_total: u32 = r.assignment().loads().iter().sum();
        let rep = r.add_users(0, 5);
        assert_eq!(r.assignment().loads().iter().sum::<u32>(), before_total + 5);
        // Plenty of headroom: no rebalance needed.
        assert!(rep.rebalance.is_none());
    }

    #[test]
    fn add_users_triggers_rebalance_when_overloading() {
        let mut r = reconf();
        let rep = r.add_users(0, 25); // 270 + 25 = 295 of 300: tight
                                      // Either way the invariant holds: totals preserved.
        assert_eq!(r.assignment().loads().iter().sum::<u32>(), 295);
        let _ = rep;
    }

    #[test]
    fn remove_users_shrinks_population() {
        let mut r = reconf();
        let rep = r.remove_users(1, 10);
        assert_eq!(rep.moved_users, 10);
        assert_eq!(r.problem().hosts[1].users, 50);
        assert_eq!(r.assignment().loads().iter().sum::<u32>(), 260);
    }

    #[test]
    fn add_and_remove_host_preserve_population_balance() {
        let mut r = reconf();
        let rep = r.add_host(NodeId(99), 30, &[2.0, 1.0, 2.0]);
        assert!(rep.rebalance.is_some());
        assert_eq!(r.assignment().loads().iter().sum::<u32>(), 300);
        assert_eq!(r.problem().host_count(), 7);

        let rep = r.remove_host(6);
        assert!(rep.moved_users >= 30);
        assert_eq!(r.assignment().loads().iter().sum::<u32>(), 270);
        assert_eq!(r.problem().host_count(), 6);
    }

    #[test]
    fn add_server_attracts_load() {
        let mut r = reconf();
        // New server very close to the overloaded middle hosts.
        let rep = r.add_server(
            NodeId(100),
            ServerSpec::paper_example(),
            &[2.0, 1.0, 2.0, 1.0, 1.0, 2.0],
        );
        assert_eq!(rep.notified_servers, 3);
        assert_eq!(r.problem().server_count(), 4);
        let new_load = r.assignment().load(3);
        assert!(new_load > 0, "new server should take load, got {new_load}");
        assert_eq!(r.assignment().loads().iter().sum::<u32>(), 270);
    }

    #[test]
    fn remove_server_redistributes_users() {
        let mut r = reconf();
        let displaced = r.assignment().load(2);
        let rep = r.remove_server(2);
        assert!(rep.moved_users >= u64::from(displaced));
        assert_eq!(r.problem().server_count(), 2);
        assert_eq!(r.assignment().loads().iter().sum::<u32>(), 270);
    }

    #[test]
    #[should_panic(expected = "cannot remove the last server")]
    fn removing_last_server_panics() {
        let mut r = reconf();
        r.remove_server(0);
        r.remove_server(0);
        r.remove_server(0);
    }

    #[test]
    fn initialize_then_reconfigure_is_consistent() {
        let f = fig1();
        let p = AssignmentProblem::from_topology(
            &f.topology,
            &f.users_per_host,
            ServerSpec::paper_example(),
            CostModel::paper_example(),
        );
        let a = initialize(&p);
        let mut r = Reconfigurator::new(p, a, BalanceOptions::default());
        r.add_users(5, 3);
        r.remove_users(0, 3);
        assert_eq!(r.assignment().loads().iter().sum::<u32>(), 270);
    }
}
