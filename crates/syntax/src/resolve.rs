//! Syntax-directed name resolution (§3.1.2b).
//!
//! "The name resolution scheme is based on the syntax of names. A name is
//! said to be resolved if an authority server for the name is located.
//! Given a name, the resolution procedure will either return the authority
//! server or a server that may be able to resolve the name properly. If
//! the recipient is located within the local region then his server can be
//! located directly from other servers in the region. Otherwise, the
//! message is transmitted to one of the servers in the recipient region
//! where the name resolution process continues."

use std::collections::BTreeMap;

use lems_core::directory::ServerView;
use lems_core::name::MailName;
use lems_core::user::AuthorityList;
use lems_net::graph::NodeId;
use lems_net::topology::RegionId;

/// What one resolution step decided.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// This server is an authority for the name: deliver here.
    LocalAuthority,
    /// The name belongs to this region; its authority servers are known
    /// directly (regional replication).
    RegionalAuthority(AuthorityList),
    /// The name belongs to another region; forward to one of that region's
    /// servers and resolve there.
    ForwardToRegion {
        /// The recipient's region.
        region: RegionId,
        /// Known servers of that region, nearest-first as configured.
        servers: Vec<NodeId>,
    },
    /// The region token does not map to any known region — undeliverable.
    UnknownRegion,
    /// The region is local but no user record matches — undeliverable.
    UnknownUser,
}

/// One server's syntax-directed resolver.
///
/// Knowledge model (§2, §3.1.2b): a server is authoritative for the names
/// in its [`ServerView`]; it additionally replicates the authority lists of
/// every user *of its own region* (so local names resolve in one step) and
/// the server roster of every region (so foreign names forward in one
/// step).
#[derive(Clone, Debug)]
pub struct SyntaxResolver {
    server: NodeId,
    region: RegionId,
    view: ServerView,
    region_index: BTreeMap<MailName, AuthorityList>,
    region_servers: BTreeMap<RegionId, Vec<NodeId>>,
}

impl SyntaxResolver {
    /// Builds a resolver for `server` in `region`.
    pub fn new(
        server: NodeId,
        region: RegionId,
        view: ServerView,
        region_index: BTreeMap<MailName, AuthorityList>,
        region_servers: BTreeMap<RegionId, Vec<NodeId>>,
    ) -> Self {
        SyntaxResolver {
            server,
            region,
            view,
            region_index,
            region_servers,
        }
    }

    /// The server this resolver runs on.
    pub fn server(&self) -> NodeId {
        self.server
    }

    /// The server's region.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// This server's authoritative view (mutable, for reconfiguration).
    pub fn view_mut(&mut self) -> &mut ServerView {
        &mut self.view
    }

    /// This server's authoritative view.
    pub fn view(&self) -> &ServerView {
        &self.view
    }

    /// Adds or updates a local-region user's authority list (regional
    /// replication maintenance).
    pub fn upsert_regional(&mut self, name: MailName, authorities: AuthorityList) {
        self.region_index.insert(name, authorities);
    }

    /// Drops a local-region user (delete/migrate-away).
    pub fn remove_regional(&mut self, name: &MailName) -> Option<AuthorityList> {
        self.region_index.remove(name)
    }

    /// Updates the roster of servers for a region (add/delete server
    /// reconfiguration: "some changes are made to tables in all servers",
    /// §3.1.3c).
    pub fn set_region_servers(&mut self, region: RegionId, servers: Vec<NodeId>) {
        self.region_servers.insert(region, servers);
    }

    /// Resolves `name` one step, per §3.1.2b.
    pub fn resolve(&self, name: &MailName) -> Resolution {
        let Some(target_region) = self.view.region_of_name(name.region()) else {
            return Resolution::UnknownRegion;
        };
        if target_region == self.region {
            if self.view.is_authority_for(name) {
                return Resolution::LocalAuthority;
            }
            match self.region_index.get(name) {
                Some(list) => Resolution::RegionalAuthority(list.clone()),
                None => Resolution::UnknownUser,
            }
        } else {
            match self.region_servers.get(&target_region) {
                Some(servers) if !servers.is_empty() => Resolution::ForwardToRegion {
                    region: target_region,
                    servers: servers.clone(),
                },
                _ => Resolution::UnknownRegion,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lems_core::directory::Directory;

    fn name(s: &str) -> MailName {
        s.parse().unwrap()
    }

    fn resolver() -> SyntaxResolver {
        let mut dir = Directory::new();
        dir.map_region("east", RegionId(0));
        dir.map_region("west", RegionId(1));
        dir.register(
            name("east.h1.alice"),
            NodeId(10),
            AuthorityList::new(vec![NodeId(0), NodeId(1)]),
        )
        .unwrap();
        // Bob's authorities exclude server 0, so server 0 must resolve him
        // through the regional index.
        dir.register(
            name("east.h2.bob"),
            NodeId(11),
            AuthorityList::new(vec![NodeId(1)]),
        )
        .unwrap();
        let views = dir.partition(&[NodeId(0), NodeId(1)]);

        let mut region_index = BTreeMap::new();
        for rec in dir.iter() {
            region_index.insert(rec.name.clone(), rec.authorities.clone());
        }
        let mut region_servers = BTreeMap::new();
        region_servers.insert(RegionId(0), vec![NodeId(0), NodeId(1)]);
        region_servers.insert(RegionId(1), vec![NodeId(5)]);

        SyntaxResolver::new(
            NodeId(0),
            RegionId(0),
            views[&NodeId(0)].clone(),
            region_index,
            region_servers,
        )
    }

    #[test]
    fn local_authority_resolves_immediately() {
        let r = resolver();
        assert_eq!(
            r.resolve(&name("east.h1.alice")),
            Resolution::LocalAuthority
        );
    }

    #[test]
    fn regional_name_resolves_to_authority_list() {
        let r = resolver();
        match r.resolve(&name("east.h2.bob")) {
            Resolution::RegionalAuthority(list) => {
                assert_eq!(list.primary(), NodeId(1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn foreign_region_forwards() {
        let r = resolver();
        match r.resolve(&name("west.h9.carol")) {
            Resolution::ForwardToRegion { region, servers } => {
                assert_eq!(region, RegionId(1));
                assert_eq!(servers, vec![NodeId(5)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_region_and_user() {
        let r = resolver();
        assert_eq!(r.resolve(&name("mars.h1.zed")), Resolution::UnknownRegion);
        assert_eq!(r.resolve(&name("east.h1.nobody")), Resolution::UnknownUser);
    }

    #[test]
    fn reconfiguration_updates_tables() {
        let mut r = resolver();
        r.upsert_regional(name("east.h3.dave"), AuthorityList::new(vec![NodeId(1)]));
        assert!(matches!(
            r.resolve(&name("east.h3.dave")),
            Resolution::RegionalAuthority(_)
        ));
        r.remove_regional(&name("east.h3.dave"));
        assert_eq!(r.resolve(&name("east.h3.dave")), Resolution::UnknownUser);

        r.set_region_servers(RegionId(1), vec![NodeId(6), NodeId(7)]);
        match r.resolve(&name("west.h9.carol")) {
            Resolution::ForwardToRegion { servers, .. } => {
                assert_eq!(servers, vec![NodeId(6), NodeId(7)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
