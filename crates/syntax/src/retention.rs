//! Message archiving and clean-up (§3.1.2c).
//!
//! "Another option can be provided to allow a copy of the message to be
//! retained on the server. In that case, some policy of message archiving
//! and clean-up must be implemented to protect the servers' storage from
//! being used up."
//!
//! A [`RetentionPolicy`] bounds each mailbox by age and by count;
//! [`sweep`] applies it across a server's store and reports what was
//! archived. All mutation routes through [`MailStore`] — the policy never
//! touches a [`Mailbox`](lems_core::mailbox::Mailbox) directly, so a
//! durable backend journals every expiry exactly like a retrieval
//! (enforced by the `store-mutation-discipline` lint).

use lems_core::name::MailName;
use lems_core::store::MailStore;
use lems_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Serialize `SimDuration` as fractional time units.
mod duration_units {
    use lems_sim::time::SimDuration;
    use serde::{Deserialize, Deserializer, Serializer};

    // serde's `serialize_with` contract passes the field by reference.
    #[allow(clippy::trivially_copy_pass_by_ref)]
    pub fn serialize<S: Serializer>(d: &SimDuration, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(d.as_units())
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<SimDuration, D::Error> {
        let units = f64::deserialize(d)?;
        if !(units.is_finite() && units >= 0.0) {
            return Err(serde::de::Error::custom("duration must be finite and >= 0"));
        }
        Ok(SimDuration::from_units(units))
    }
}

/// Storage bounds for retained mail.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RetentionPolicy {
    /// Messages older than this are archived away from server storage.
    #[serde(with = "duration_units")]
    pub max_age: SimDuration,
    /// At most this many messages stay per mailbox (oldest leave first).
    pub max_per_mailbox: usize,
}

impl RetentionPolicy {
    /// A permissive default: 1,000 time units, 1,000 messages.
    pub fn generous() -> Self {
        RetentionPolicy {
            max_age: SimDuration::from_units(1_000.0),
            max_per_mailbox: 1_000,
        }
    }

    /// Applies the policy to `owner`'s mailbox at time `now`; returns how
    /// many messages were removed by each rule.
    pub fn apply(
        &self,
        store: &mut dyn MailStore,
        owner: &MailName,
        now: SimTime,
    ) -> (usize, usize) {
        let cutoff = now - self.max_age;
        let by_age = store.expire_older_than(owner, cutoff);
        let mut by_count = 0;
        loop {
            let oldest = store
                .mailboxes()
                .get(owner)
                .filter(|mb| mb.len() > self.max_per_mailbox)
                .and_then(|mb| mb.peek().first().map(|s| s.message.id));
            let Some(oldest) = oldest else { break };
            store.remove(owner, oldest);
            by_count += 1;
        }
        (by_age, by_count)
    }
}

/// What one clean-up pass removed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CleanupReport {
    /// Messages archived for exceeding the age bound.
    pub archived_by_age: usize,
    /// Messages archived for exceeding the per-mailbox count bound.
    pub archived_by_count: usize,
    /// Mailboxes touched.
    pub mailboxes_swept: usize,
}

impl CleanupReport {
    /// Total messages removed from server storage.
    pub fn total_archived(&self) -> usize {
        self.archived_by_age + self.archived_by_count
    }
}

/// Sweeps every mailbox of a server's store under `policy` at time `now`.
pub fn sweep(store: &mut dyn MailStore, policy: &RetentionPolicy, now: SimTime) -> CleanupReport {
    let owners: Vec<MailName> = store.mailboxes().keys().cloned().collect();
    let mut report = CleanupReport::default();
    for owner in owners {
        let before = store
            .mailboxes()
            .get(&owner)
            .map_or(0, lems_core::Mailbox::len);
        let (age, count) = policy.apply(store, &owner, now);
        let after = store
            .mailboxes()
            .get(&owner)
            .map_or(0, lems_core::Mailbox::len);
        report.archived_by_age += age;
        report.archived_by_count += count;
        if age + count > 0 || before != after {
            report.mailboxes_swept += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use lems_core::message::{Message, MessageIdGen};
    use lems_core::store::MemStore;

    fn store_with(owners: &[MailName], n: usize, spacing: f64) -> (MemStore, MessageIdGen) {
        let mut store = MemStore::stable();
        let mut gen = MessageIdGen::new();
        for owner in owners {
            for i in 0..n {
                let m = Message::new(
                    gen.next_id(),
                    "east.h1.s".parse().unwrap(),
                    owner.clone(),
                    "s",
                    "b",
                    SimTime::ZERO,
                );
                store.deposit(m, SimTime::from_units(i as f64 * spacing));
            }
        }
        (store, gen)
    }

    fn owner(i: usize) -> MailName {
        format!("east.h1.u{i}").parse().unwrap()
    }

    #[test]
    fn age_bound_archives_old_mail() {
        let o = owner(0);
        let (mut store, _) = store_with(std::slice::from_ref(&o), 10, 10.0); // deposits at 0,10,..,90
        let policy = RetentionPolicy {
            max_age: SimDuration::from_units(35.0),
            max_per_mailbox: 100,
        };
        let (by_age, by_count) = policy.apply(&mut store, &o, SimTime::from_units(100.0));
        // cutoff = 65: deposits at 0..60 leave (7 messages).
        assert_eq!(by_age, 7);
        assert_eq!(by_count, 0);
        assert_eq!(store.mailboxes()[&o].len(), 3);
    }

    #[test]
    fn count_bound_keeps_newest() {
        let o = owner(0);
        let (mut store, _) = store_with(std::slice::from_ref(&o), 10, 1.0);
        let policy = RetentionPolicy {
            max_age: SimDuration::from_units(1e6),
            max_per_mailbox: 4,
        };
        let (by_age, by_count) = policy.apply(&mut store, &o, SimTime::from_units(20.0));
        assert_eq!(by_age, 0);
        assert_eq!(by_count, 6);
        assert_eq!(store.mailboxes()[&o].len(), 4);
        // The survivors are the newest deposits.
        assert!(store.mailboxes()[&o]
            .peek()
            .iter()
            .all(|s| s.deposited_at >= SimTime::from_units(6.0)));
    }

    #[test]
    fn sweep_reports_across_mailboxes() {
        // Two mailboxes with different deposit cadences.
        let (mut store, mut gen) = store_with(&[owner(0)], 10, 10.0);
        for i in 0..10 {
            let m = Message::new(
                gen.next_id(),
                "east.h1.s".parse().unwrap(),
                owner(1),
                "s",
                "b",
                SimTime::ZERO,
            );
            store.deposit(m, SimTime::from_units(i as f64));
        }
        let policy = RetentionPolicy {
            max_age: SimDuration::from_units(50.0),
            max_per_mailbox: 5,
        };
        let report = sweep(&mut store, &policy, SimTime::from_units(100.0));
        assert!(report.total_archived() > 0);
        assert_eq!(report.mailboxes_swept, 2);
        for mb in store.mailboxes().values() {
            assert!(mb.len() <= 5);
        }
    }

    #[test]
    fn generous_policy_touches_nothing_fresh() {
        let o = owner(0);
        let (mut store, _) = store_with(std::slice::from_ref(&o), 5, 1.0);
        let policy = RetentionPolicy::generous();
        let (a, c) = policy.apply(&mut store, &o, SimTime::from_units(10.0));
        assert_eq!((a, c), (0, 0));
        assert_eq!(store.mailboxes()[&o].len(), 5);
    }
}
