//! Corporate mail under failures: a System-1 deployment on the Fig. 1
//! network rides out random server outages; every message is either
//! retrieved or bounced with an error — never silently lost (§5).
//!
//! ```sh
//! cargo run --example corporate_mail
//! ```

use lems::net::generators::fig1;
use lems::sim::rng::SimRng;
use lems::sim::time::{SimDuration, SimTime};
use lems::syntax::{Deployment, DeploymentConfig, ServerFailurePlan};

fn main() {
    let scenario = fig1();
    let mut mail = Deployment::build(
        &scenario.topology,
        &[2, 2, 2, 2, 2, 2],
        &DeploymentConfig {
            seed: 2024,
            ..DeploymentConfig::default()
        },
    );
    let users = mail.user_names();
    let mut rng = SimRng::seed(2024).fork("corporate");

    // Servers fail randomly: ~90% availability (MTBF 90, MTTR 10).
    let outages = ServerFailurePlan::random(
        &mut rng,
        &scenario.topology.servers(),
        SimDuration::from_units(90.0),
        SimDuration::from_units(10.0),
        SimTime::from_units(800.0),
    );
    let outage_count: usize = outages.outages.values().map(Vec::len).sum();
    mail.apply_server_failures(&outages);
    println!("injected {outage_count} server outages across 800 time units");

    // A workday of traffic: everyone mails colleagues, checks regularly.
    let mut t = 1.0;
    while t < 700.0 {
        let from = rng.index(users.len());
        let mut to = rng.index(users.len());
        if to == from {
            to = (to + 1) % users.len();
        }
        mail.send_at(
            SimTime::from_units(t),
            &users[from].clone(),
            &users[to].clone(),
        );
        t += rng.unit() * 5.0 + 0.5;
    }
    let mut t = 10.0;
    while t < 820.0 {
        for u in users.clone() {
            mail.check_at(SimTime::from_units(t + rng.unit()), &u);
        }
        t += 30.0;
    }
    // Final sweep after all outages have healed.
    for (i, u) in users.clone().iter().enumerate() {
        mail.check_at(SimTime::from_units(900.0 + i as f64), u);
        mail.check_at(SimTime::from_units(950.0 + i as f64), u);
    }
    mail.sim.run_to_quiescence();

    let st = mail.stats.borrow();
    println!("submitted:           {}", st.submitted);
    println!("retrieved:           {}", st.retrieved);
    println!("bounced (notified):  {}", st.bounced);
    println!("silently lost:       {}", st.outstanding());
    println!(
        "submit attempts/msg: {:.2}",
        st.submit_attempts as f64 / st.submitted as f64
    );
    println!("polls per check:     {:.3}", st.retrieval_polls.mean());
    println!(
        "delivery latency:    {:.2} units (mean), end-to-end {:.1} units",
        st.delivery_latency.mean(),
        st.end_to_end.mean()
    );
    assert_eq!(st.outstanding(), 0, "the paper's no-loss guarantee");
    println!("\nok: no message was silently lost despite {outage_count} outages.");
}
