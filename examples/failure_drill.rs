//! Failure drill: watch the GetMail bookkeeping in action. A user's
//! primary server crashes mid-conversation; mail fails over to the
//! secondary, the primary recovers, and the retrieval algorithm finds
//! everything with near-minimal polling (§3.1.2c).
//!
//! ```sh
//! cargo run --example failure_drill
//! ```

use lems::core::MessageId;
use lems::net::NodeId;
use lems::sim::failure::FailurePlan;
use lems::sim::prelude::*;
use lems::syntax::getmail::{poll_all, GetMailState, PlanStore};

fn main() {
    // Three authority servers; the primary fails between t=10 and t=30.
    let authorities = vec![NodeId(0), NodeId(1), NodeId(2)];
    let mut plan = FailurePlan::new();
    plan.add_outage(
        ActorId(0),
        SimTime::from_units(10.0),
        SimTime::from_units(30.0),
    )
    .expect("outage window is well-formed");
    let mut store = PlanStore::new(plan.clone());
    let mut state = GetMailState::new();
    let t = SimTime::from_units;

    println!("timeline (primary = S0, down in [10, 30)):\n");

    // Settle: the first-ever check walks the whole list.
    let out = state.get_mail(&authorities, &mut store, t(1.0));
    println!(
        "t= 1.0  first check:        {} polls (walks the full list once)",
        out.polls
    );

    store.deposit(&authorities, MessageId(1), t(5.0));
    let out = state.get_mail(&authorities, &mut store, t(6.0));
    println!(
        "t= 6.0  normal check:       {} poll(s), got {:?} — the paper's 'approximately one'",
        out.polls,
        out.retrieved.iter().map(|m| m.0).collect::<Vec<_>>()
    );

    // Primary goes down; mail lands on the secondary.
    let srv = store
        .deposit(&authorities, MessageId(2), t(12.0))
        .expect("secondary is up");
    println!("t=12.0  deposit while S0 down -> stored on n{}", srv.0);

    let out = state.get_mail(&authorities, &mut store, t(15.0));
    println!(
        "t=15.0  check during outage: {} polls (S0 timeout + S1), got {:?}; S0 noted as previously unavailable",
        out.polls,
        out.retrieved.iter().map(|m| m.0).collect::<Vec<_>>()
    );

    // Mail deposited on the secondary *while we are not looking*, and the
    // primary recovers before the next check.
    store.deposit(&authorities, MessageId(3), t(20.0));
    println!("t=20.0  deposit while S0 still down -> stored on secondary");
    println!("t=30.0  S0 recovers (its LastStartTime becomes 30.0)");

    let out = state.get_mail(&authorities, &mut store, t(35.0));
    println!(
        "t=35.0  check after recovery: {} polls, got {:?}",
        out.polls,
        out.retrieved.iter().map(|m| m.0).collect::<Vec<_>>()
    );
    println!("        (S0's LastStartTime 30.0 > our last check 15.0, so the walk");
    println!("         continued past S0 and drained the secondary — nothing lost)");

    let out = state.get_mail(&authorities, &mut store, t(40.0));
    println!("t=40.0  steady state again: {} poll(s)", out.polls);

    // Compare with the naive baseline.
    let mut naive_store = PlanStore::new(plan);
    let naive = poll_all(&authorities, &mut naive_store, t(40.0));
    println!(
        "\nbaseline poll-all pays {} polls on every single check, forever.",
        naive.polls
    );
    assert_eq!(store.in_storage(), 0);
    println!("ledger: all deposited mail retrieved; server storage empty.");
}
