//! Attribute-based mass distribution (System 3): find every database
//! specialist on the continent without knowing a single address, estimate
//! the cost, and stay within budget (§3.3).
//!
//! ```sh
//! cargo run --example marketing_blast
//! ```

use lems::attr::{
    distribute, estimate, AttrKey, AttributeNetwork, AttributeRegistry, AttributeSet, Query,
    RequesterContext, Visibility,
};
use lems::net::generators::{multi_region, MultiRegionConfig};
use lems::net::topology::Topology;
use lems::sim::failure::FailurePlan;
use lems::sim::rng::SimRng;
use std::collections::BTreeMap;

fn build_world() -> AttributeNetwork {
    let mut rng = SimRng::seed(99);
    let raw = multi_region(
        &mut rng,
        &MultiRegionConfig {
            regions: 4,
            hosts_per_region: 3,
            servers_per_region: 3,
            ..MultiRegionConfig::default()
        },
    );
    // GHS needs distinct weights; rebuild the topology over them.
    let g = raw.graph().with_distinct_weights();
    let mut topo = Topology::new();
    for n in raw.nodes() {
        match raw.kind(n) {
            lems::net::NodeKind::Host => topo.add_host(raw.region(n), raw.name(n)),
            lems::net::NodeKind::Server => topo.add_server(raw.region(n), raw.name(n)),
        };
    }
    for e in g.edges() {
        topo.link(e.a, e.b, e.weight);
    }

    // Populate each server's registry with user profiles.
    let fields = ["databases", "networks", "operating systems", "graphics"];
    let mut registries = BTreeMap::new();
    for (person, &s) in topo.servers().iter().enumerate() {
        let region = topo.region(s).0;
        let mut reg = AttributeRegistry::new();
        for k in 0..6 {
            let mut a = AttributeSet::new();
            a.add(
                AttrKey::Expertise,
                fields[(person + k) % fields.len()],
                Visibility::Public,
            );
            a.add(AttrKey::Organization, "ACME", Visibility::Public);
            if person == 2 && k == 1 {
                // One registered misspelling-prone name for the fuzzy demo.
                a.add(AttrKey::Nickname, "thompson", Visibility::Public);
            }
            // Some people keep their interests private.
            if k % 3 == 0 {
                a.add(AttrKey::Interest, "chess", Visibility::Private);
            }
            reg.upsert(
                format!("r{region}.h.person{person}_{k}")
                    .parse()
                    .expect("valid"),
                a,
            );
        }
        registries.insert(s, reg);
    }
    AttributeNetwork::new(topo, registries)
}

fn main() {
    let net = build_world();
    let root = net.topology().servers()[0];
    let ctx = RequesterContext::default();

    // "Find potential clients": everyone whose expertise mentions
    // databases — addressed by attribute, not by name.
    let query = Query::Attr(
        AttrKey::Expertise,
        lems::attr::Predicate::Contains("database".into()),
    );

    // 1. Distributed search over the backbone+local MST.
    let search = net
        .search(root, &query, &ctx, &FailurePlan::new(), 1)
        .expect("root is up");
    println!(
        "distributed search: {} matches across {} responding nodes in {:.1} virtual units",
        search.matches,
        search.responded,
        search.completed_at.as_units()
    );
    assert_eq!(search.matches, search.ground_truth_matches);

    // 2. Cost estimate before sending (§3.3.1B).
    let est = estimate(&net, root, &query);
    println!("\ncost table (delivery per region):");
    for (region, cost) in &est.region_costs {
        println!("  {region}: {cost:.1} units");
    }
    println!(
        "full coverage: {:.1} units (+{:.1} search charge)",
        est.total_cost, est.search_charge
    );

    // 3. Send within budget: flow control picks the cheapest regions.
    let budget = est.total_cost * 0.5;
    let out = distribute(&net, root, &query, &ctx, Some(budget));
    println!(
        "\nwith a budget of {budget:.1} units: {} region(s), {} recipient(s), {} skipped",
        out.regions.len(),
        out.recipients.len(),
        out.skipped_recipients
    );
    for r in out.recipients.iter().take(5) {
        println!("  -> {r}");
    }

    // 4. A misspelled directory lookup still finds its person.
    let fuzzy = Query::name_like("tompson", 1);
    let hits = net.central_matches(&fuzzy, &ctx);
    println!(
        "\nfuzzy lookup for 'tompson' (misspelled): {} hit(s): {:?}",
        hits.len(),
        hits.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
}
