//! Quickstart: build the paper's Fig. 1 mail system, send a message,
//! retrieve it, and look at the run statistics.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lems::net::generators::fig1;
use lems::sim::time::SimTime;
use lems::syntax::{Deployment, DeploymentConfig};

fn main() {
    // The worked example of the paper: 6 hosts, 3 servers, one region.
    let scenario = fig1();

    // Build a full System-1 deployment: the §3.1.1 assignment algorithm
    // places users on servers and derives each user's ordered
    // authority-server list; host and server actors are wired over the
    // deterministic simulator.
    let mut mail = Deployment::build(
        &scenario.topology,
        &[3, 3, 3, 3, 3, 3], // three users per host for the demo
        &DeploymentConfig::default(),
    );

    let users = mail.user_names();
    let alice = users[0].clone();
    let bob = users[users.len() - 1].clone();
    println!("deployment: {} users, e.g. {alice} and {bob}", users.len());

    // Alice writes to Bob at t=1; Bob checks his mail at t=50.
    mail.send_at(SimTime::from_units(1.0), &alice, &bob);
    mail.check_at(SimTime::from_units(50.0), &bob);
    mail.sim.run_to_quiescence();

    let stats = mail.stats.borrow();
    println!("submitted: {}", stats.submitted);
    println!("deposited: {}", stats.deposited);
    println!("retrieved: {}", stats.retrieved);
    println!(
        "end-to-end latency: {:.2} time units",
        stats.end_to_end.mean()
    );
    println!(
        "retrieval polls (first check walks the whole list): {}",
        stats.retrieval_polls.mean()
    );
    assert_eq!(stats.retrieved, 1);
    println!("\nok: the message made it.");
}
