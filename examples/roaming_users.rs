//! Roaming users under System 2: location-independent access within a
//! region, cross-server location lookups, and the §3.2.4 decision between
//! remote access, redirection, and renaming after a cross-region move.
//!
//! ```sh
//! cargo run --example roaming_users
//! ```

use lems::locindep::{
    delivery_cost, rename_breakeven, CostParams, CrossRegionPolicy, LocIndepResolver,
    RegionTracker, SubgroupMap, UserLocation,
};
use lems::net::generators::{multi_region, MultiRegionConfig};
use lems::net::topology::RegionId;
use lems::sim::rng::SimRng;
use std::collections::{BTreeMap, HashMap};

fn main() {
    // A two-region world.
    let mut rng = SimRng::seed(7);
    let world = multi_region(
        &mut rng,
        &MultiRegionConfig {
            regions: 2,
            hosts_per_region: 5,
            servers_per_region: 3,
            ..MultiRegionConfig::default()
        },
    );
    let dist = world.distances();
    let east = RegionId(0);
    let servers = world.servers_in(east);
    let hosts = world.hosts_in(east);

    // Name resolution is hash-based: any server can compute who is
    // responsible for carol, no matter which host she uses today.
    let subgroups = SubgroupMap::new(32, servers.clone());
    let mut region_names = HashMap::new();
    region_names.insert("r0".to_owned(), RegionId(0));
    region_names.insert("r1".to_owned(), RegionId(1));
    let mut region_servers = BTreeMap::new();
    region_servers.insert(RegionId(0), servers.clone());
    region_servers.insert(RegionId(1), world.servers_in(RegionId(1)));
    let resolver = LocIndepResolver::new(
        servers[0],
        east,
        subgroups.clone(),
        region_names,
        region_servers,
    );

    let carol: lems::core::MailName = format!("r0.{}.carol", world.name(hosts[0]))
        .parse()
        .expect("valid name");
    println!("carol's primary host: {}", world.name(hosts[0]));
    println!(
        "her sub-group server (resolved by hash, host-independent): {:?}",
        resolver.resolve(&carol)
    );

    // Carol roams: logs in from another host through its nearest server.
    let mut tracker = RegionTracker::new(servers.clone());
    tracker.login(&carol, hosts[3], servers[1]);
    let found = tracker.locate(&carol, servers[0]);
    println!(
        "\ncarol roams to {}: located via {} consultation(s)",
        world.name(hosts[3]),
        found.consults
    );

    // Delivery cost at primary vs roaming.
    let params = CostParams::default();
    let at_primary = delivery_cost(
        &dist,
        servers[2],
        servers[0],
        hosts[0],
        &servers,
        UserLocation::Primary,
        CrossRegionPolicy::Redirect,
        &params,
    );
    let roaming = delivery_cost(
        &dist,
        servers[2],
        servers[0],
        hosts[0],
        &servers,
        UserLocation::WithinRegion {
            current_host: hosts[3],
            consults: found.consults,
        },
        CrossRegionPolicy::Redirect,
        &params,
    );
    println!("delivery cost at primary: {:.1} units", at_primary.total());
    println!(
        "delivery cost roaming:    {:.1} units (overhead only when moving)",
        roaming.total()
    );

    // Carol moves to the other region for a semester: compare policies.
    let new_server = world.servers_in(RegionId(1))[0];
    let new_host = world.hosts_in(RegionId(1))[0];
    let loc = UserLocation::CrossRegion {
        current_host: new_host,
        new_region_server: new_server,
    };
    let mut costs = Vec::new();
    for policy in [
        CrossRegionPolicy::RemoteAccess,
        CrossRegionPolicy::Redirect,
        CrossRegionPolicy::Rename,
    ] {
        let c = delivery_cost(
            &dist, servers[2], servers[0], hosts[0], &servers, loc, policy, &params,
        );
        println!(
            "cross-region via {policy:?}: {:.1} units/message",
            c.total()
        );
        costs.push(c.total());
    }
    match rename_breakeven(costs[1], costs[2], &params) {
        Some(n) => println!("=> renaming pays for itself after {n} message(s)"),
        None => println!("=> redirection is never more expensive here"),
    }

    // Reconfiguration: add a server, only re-hashed sub-groups move.
    let mut grown = subgroups;
    let extra = world.servers_in(RegionId(1))[2];
    let mut roster = servers.clone();
    roster.push(extra);
    let report = grown.rehash(roster);
    println!(
        "\nadding a 4th server rehashes {}/{} sub-groups ({:.0}% of the name space) — no names change",
        report.moved_groups.len(),
        report.total_groups,
        100.0 * report.moved_fraction()
    );
}
