//! Telephone-style hierarchies: the paper notes "the current hierarchical
//! numbering scheme for telephone services is a good example of
//! syntax-directed naming … A three or four hierarchy system can be
//! applied to electronic mail" (§3.1.1). This example runs a four-level
//! name space with zone delegation and longest-prefix resolution.
//!
//! ```sh
//! cargo run --example zoned_hierarchy
//! ```

use lems::core::{HierName, ZoneTable};
use lems::net::NodeId;

fn main() {
    // The "telephone book": a root directory server plus delegated zones.
    let mut zones = ZoneTable::new(NodeId(0));
    zones.delegate("usa".parse().unwrap(), NodeId(1));
    zones.delegate("usa.east".parse().unwrap(), NodeId(2));
    zones.delegate("usa.east.boston".parse().unwrap(), NodeId(3));
    zones.delegate("usa.west".parse().unwrap(), NodeId(4));
    zones.delegate("europe".parse().unwrap(), NodeId(5));

    println!("zone table ({} delegations + root):\n", zones.len());

    let queries = [
        "usa.east.boston.vax1.alice", // 5 levels: country.region.city.host.user
        "usa.east.albany.pc2.bob",
        "usa.west.la.sun3.carol",
        "europe.fr.paris.mini.dave",
        "asia.jp.tokyo.h.erin", // no delegation: root answers
    ];
    for q in queries {
        let name: HierName = q.parse().expect("valid name");
        let (server, depth) = zones.resolve(&name);
        let chain = zones.referral_chain(&name);
        println!(
            "{q:<30} -> n{} (zone depth {depth}, referral chain {:?})",
            server.0,
            chain.iter().map(|n| n.0).collect::<Vec<_>>()
        );
    }

    // Reconfiguration: spinning down the boston zone server falls back to
    // the usa.east zone without touching a single user name.
    println!("\nundelegating usa.east.boston ...");
    zones.undelegate(&"usa.east.boston".parse().unwrap());
    let name: HierName = "usa.east.boston.vax1.alice".parse().unwrap();
    let (server, depth) = zones.resolve(&name);
    println!(
        "usa.east.boston.vax1.alice     -> n{} (zone depth {depth}) — names unchanged",
        server.0
    );
}
