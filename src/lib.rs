//! # lems — Large Electronic Mail Systems
//!
//! A production-quality Rust reproduction of *"Designing Large Electronic
//! Mail Systems"* (Wael Bahaa-El-Din & Hsi-Tung Yuen, ICDCS 1988): three
//! complete designs for continent-scale electronic mail, built over a
//! deterministic discrete-event simulator.
//!
//! ## The three systems
//!
//! * **System 1 — syntax-directed naming** ([`syntax`]): location-bound
//!   `region.host.user` names; the load-balancing server-assignment
//!   algorithm; syntax-directed resolution with regional forwarding; the
//!   GetMail retrieval algorithm whose polls-per-check is ≈ 1 and which
//!   never loses mail under server failures.
//! * **System 2 — limited location-independent access** ([`locindep`]):
//!   hash-based sub-group resolution, cooperative location tracking,
//!   rehash-based reconfiguration, and the remote-access / redirect /
//!   rename migration trade-off.
//! * **System 3 — attribute-based mail** ([`attr`]): typed attributes with
//!   privacy, fuzzy directory lookup, and mass distribution over a
//!   backbone+local minimum spanning tree built by the distributed
//!   Gallager–Humblet–Spira protocol ([`mst`]).
//!
//! ## Substrates
//!
//! * [`sim`] — deterministic discrete-event engine (actors, timers,
//!   failures, seeded RNG, statistics);
//! * [`net`] — weighted graphs, shortest paths, centralized MSTs,
//!   multi-region topologies, transport;
//! * [`core`] — names, messages, mailboxes, directories, workloads;
//! * [`store`] — durable mailbox storage: pluggable `MailStore` backends
//!   and the crash-recoverable write-ahead log;
//! * [`eval`] — the paper's §4 evaluation criteria as a metrics framework.
//!
//! ## Quickstart
//!
//! ```
//! use lems::net::generators::fig1;
//! use lems::syntax::{solve, AssignmentProblem, BalanceOptions, CostModel, ServerSpec};
//!
//! // Reproduce Table 1 -> Table 2 of the paper:
//! let f = fig1();
//! let p = AssignmentProblem::from_topology(
//!     &f.topology, &f.users_per_host,
//!     ServerSpec::paper_example(), CostModel::paper_example());
//! let (assignment, report) = solve(&p, BalanceOptions::default());
//! assert!(assignment.overloaded(&p).is_empty());
//! assert!(report.final_cost < report.initial_cost);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin/` for
//! the `repro-*` binaries that regenerate every table and figure of the
//! paper (indexed in `DESIGN.md` and `EXPERIMENTS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lems_attr as attr;
pub use lems_core as core;
pub use lems_eval as eval;
pub use lems_locindep as locindep;
pub use lems_mst as mst;
pub use lems_net as net;
pub use lems_sim as sim;
pub use lems_store as store;
pub use lems_syntax as syntax;
