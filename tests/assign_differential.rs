//! Differential harness for the scaled §3.1.1 assignment solver: the
//! deterministic parallel solver (`solve_par`) must be **byte-identical**
//! to the synchronous reference (`solve_sync`) on every topology, at any
//! worker count — same assignment, same digest, same per-pass cost trace.
//!
//! Covers ≥20 seeded random multi-region topologies from 6 hosts up to
//! 2 000 hosts, plus the paper's exact Fig. 1 worked example (Tables 1
//! and 2) run through the scale path (`CostMatrix` + `from_matrix`).

use lems::net::cost_matrix::CostMatrix;
use lems::net::generators::{fig1, multi_region, MultiRegionConfig};
use lems::sim::rng::SimRng;
use lems::syntax::assign::{self, ScaleOptions};
use lems::syntax::{initialize, solve_par, solve_sync, Assignment, AssignmentProblem};
use lems::syntax::{CostModel, ServerSpec};

/// One randomized differential case: a seeded multi-region topology with
/// seeded per-host populations and a capacity that comfortably fits them.
struct Case {
    seed: u64,
    regions: usize,
    hosts_per_region: usize,
    servers_per_region: usize,
    max_users_per_host: u32,
}

impl Case {
    const fn new(
        seed: u64,
        regions: usize,
        hosts_per_region: usize,
        servers_per_region: usize,
        max_users_per_host: u32,
    ) -> Self {
        Case {
            seed,
            regions,
            hosts_per_region,
            servers_per_region,
            max_users_per_host,
        }
    }

    fn build(&self) -> AssignmentProblem {
        let cfg = MultiRegionConfig {
            regions: self.regions,
            hosts_per_region: self.hosts_per_region,
            servers_per_region: self.servers_per_region,
            ..MultiRegionConfig::default()
        };
        let mut rng = SimRng::seed(self.seed);
        let topology = multi_region(&mut rng, &cfg);
        let hosts = self.regions * self.hosts_per_region;
        let users: Vec<u32> = (0..hosts)
            .map(|_| rng.range::<u64, _>(1..=u64::from(self.max_users_per_host)) as u32)
            .collect();
        // Size capacity so the total fits at ~80% aggregate utilisation:
        // the solver must then be able to keep every server below the
        // M/M/1 cutoff, which `solved_invariants` asserts.
        let servers = self.regions * self.servers_per_region;
        let total: u64 = users.iter().map(|&u| u64::from(u)).sum();
        let capacity = (total * 5 / 4 / servers as u64 + 1).max(2) as u32;
        AssignmentProblem::from_topology(
            &topology,
            &users,
            ServerSpec::new(capacity, 0.5),
            CostModel::paper_example(),
        )
    }
}

/// The ≥20 seeded topologies required by the harness, spanning 6 hosts
/// (a single tiny region) to 2 000 hosts across 40 regions.
fn cases() -> Vec<Case> {
    vec![
        Case::new(1, 1, 6, 3, 60),
        Case::new(2, 1, 6, 3, 60),
        Case::new(3, 1, 8, 2, 40),
        Case::new(4, 2, 5, 2, 40),
        Case::new(5, 2, 10, 3, 40),
        Case::new(6, 3, 10, 3, 40),
        Case::new(7, 4, 6, 3, 50),
        Case::new(8, 4, 6, 3, 50),
        Case::new(9, 4, 15, 3, 30),
        Case::new(10, 5, 20, 2, 30),
        Case::new(11, 5, 20, 4, 30),
        Case::new(12, 8, 25, 3, 25),
        Case::new(13, 8, 25, 3, 25),
        Case::new(14, 10, 30, 4, 25),
        Case::new(15, 10, 50, 4, 20),
        Case::new(16, 16, 50, 3, 20),
        Case::new(17, 20, 60, 4, 15),
        Case::new(18, 25, 64, 4, 12),
        Case::new(19, 32, 50, 4, 12),
        Case::new(20, 40, 50, 2, 10),
    ]
}

fn assert_identical(
    label: &str,
    (a, ra): &(Assignment, assign::ScaleReport),
    (b, rb): &(Assignment, assign::ScaleReport),
) {
    assert_eq!(a, b, "{label}: assignments diverged");
    assert_eq!(a.digest(), b.digest(), "{label}: digests diverged");
    assert_eq!(ra.passes, rb.passes, "{label}: pass counts diverged");
    assert_eq!(ra.moves, rb.moves, "{label}: move counts diverged");
    assert_eq!(
        ra.cost_trace, rb.cost_trace,
        "{label}: per-pass cost traces diverged"
    );
    assert_eq!(
        ra.final_cost.to_bits(),
        rb.final_cost.to_bits(),
        "{label}: final costs diverged"
    );
}

fn solved_invariants(label: &str, p: &AssignmentProblem, a: &Assignment) {
    for i in 0..p.host_count() {
        let placed: u32 = (0..p.server_count()).map(|j| a.count(i, j)).sum();
        assert_eq!(
            placed, p.hosts[i].users,
            "{label}: host {i} population changed"
        );
    }
    assert!(
        a.overloaded(p).is_empty(),
        "{label}: capacity suffices yet a server is over max_load"
    );
    for j in 0..p.server_count() {
        assert!(
            a.utilization(p, j) < p.model.rho_cutoff,
            "{label}: server {j} left at or above the M/M/1 cutoff"
        );
    }
}

#[test]
fn fig1_table1_initialisation_through_scale_path() {
    // Build the Fig. 1 problem through the explicit CostMatrix route the
    // million-user pipeline uses, and reproduce Table 1 exactly.
    let f = fig1();
    let comm = CostMatrix::build(&f.topology);
    let p = AssignmentProblem::from_matrix(
        &f.topology,
        comm,
        &f.users_per_host,
        ServerSpec::paper_example(),
        CostModel::paper_example(),
    );
    let a = initialize(&p);
    assert_eq!(a.count(0, 0), 50);
    assert_eq!(a.count(1, 1), 60);
    assert_eq!(a.count(2, 0), 50);
    assert_eq!(a.count(3, 1), 50);
    assert_eq!(a.count(4, 1), 40);
    assert_eq!(a.count(5, 2), 20);
    assert_eq!(a.loads(), &[100, 150, 20]);
    assert_eq!(a.overloaded(&p), vec![1]);
}

#[test]
fn fig1_table2_balancing_through_scaled_solver() {
    let f = fig1();
    let p = AssignmentProblem::from_topology(
        &f.topology,
        &f.users_per_host,
        ServerSpec::paper_example(),
        CostModel::paper_example(),
    );
    let sync = solve_sync(&p, ScaleOptions::default());
    let par = solve_par(&p, ScaleOptions::default());
    assert_identical("fig1", &sync, &par);

    let (a, report) = sync;
    // Table 2's qualitative contract: all 270 users placed, S2's overload
    // drained below the M/M/1 cutoff, objective strictly improved.
    assert_eq!(a.loads().iter().sum::<u32>(), 270);
    solved_invariants("fig1", &p, &a);
    assert!(report.final_cost < report.initial_cost);
    // And the scaled solver agrees with the classic Table 2 solver on the
    // objective it reaches (same fixed point family, within 5%).
    let (_, classic) = assign::solve(&p, assign::BalanceOptions::default());
    assert!((report.final_cost - classic.final_cost).abs() / classic.final_cost < 0.05);
}

#[test]
fn sequential_and_parallel_agree_on_twenty_seeded_topologies() {
    let cases = cases();
    assert!(cases.len() >= 20);
    for c in &cases {
        let p = c.build();
        let label = format!(
            "seed {} ({} hosts x {} servers)",
            c.seed,
            p.host_count(),
            p.server_count()
        );
        let sync = solve_sync(&p, ScaleOptions::default());
        // Force genuine multi-worker evaluation even on a single-CPU
        // machine: `threads` overrides the rayon pool size.
        let par = solve_par(
            &p,
            ScaleOptions {
                threads: 3,
                ..ScaleOptions::default()
            },
        );
        assert_identical(&label, &sync, &par);
        solved_invariants(&label, &p, &sync.0);
        assert!(
            sync.1.passes > 0 && !sync.1.cost_trace.is_empty(),
            "{label}: solver did no work"
        );
    }
}

#[test]
fn worker_count_never_changes_the_result() {
    let c = Case::new(77, 6, 20, 3, 30);
    let p = c.build();
    let baseline = solve_sync(&p, ScaleOptions::default());
    for threads in [1usize, 2, 3, 4, 8] {
        let par = solve_par(
            &p,
            ScaleOptions {
                threads,
                ..ScaleOptions::default()
            },
        );
        assert_identical(&format!("threads={threads}"), &baseline, &par);
    }
}

#[test]
fn digest_is_seed_sensitive() {
    // Same seed twice => same digest; different seed => (here) different.
    let d = |seed| {
        let p = Case::new(seed, 4, 10, 3, 30).build();
        solve_par(&p, ScaleOptions::default()).0.digest()
    };
    assert_eq!(d(5), d(5));
    assert_ne!(d(5), d(6));
}
