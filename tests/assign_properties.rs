//! Property-based invariants for the scaled §3.1.1 assignment solver and
//! the §3.1.3 reconfiguration procedures:
//!
//! * every user is always assigned (per-host populations are conserved);
//! * with capacity available, no server is left over `max_load`, and the
//!   ρ ≤ 0.99 M/M/1 cap is respected;
//! * the per-pass cost trace is monotonically non-increasing;
//! * the deterministic parallel solver agrees with the synchronous
//!   reference on every sampled instance;
//! * add-user / delete-user reconfiguration preserves all of the above.

use proptest::prelude::*;

use lems::net::generators::{fig1, multi_region, MultiRegionConfig};
use lems::sim::rng::SimRng;
use lems::syntax::assign::ScaleOptions;
use lems::syntax::{
    initialize, solve_par, solve_sync, Assignment, AssignmentProblem, BalanceOptions, CostModel,
    Reconfigurator, ScaleReport, ServerSpec,
};

fn fig1_problem(users: &[u32]) -> AssignmentProblem {
    let f = fig1();
    AssignmentProblem::from_topology(
        &f.topology,
        users,
        ServerSpec::paper_example(),
        CostModel::paper_example(),
    )
}

/// A seeded random two-region problem with ~80% aggregate utilisation.
fn random_problem(seed: u64, hosts_per_region: usize) -> AssignmentProblem {
    let cfg = MultiRegionConfig {
        regions: 2,
        hosts_per_region,
        servers_per_region: 3,
        ..MultiRegionConfig::default()
    };
    let mut rng = SimRng::seed(seed);
    let topology = multi_region(&mut rng, &cfg);
    let users: Vec<u32> = (0..2 * hosts_per_region)
        .map(|_| rng.range::<u64, _>(1..=40) as u32)
        .collect();
    let total: u64 = users.iter().map(|&u| u64::from(u)).sum();
    let capacity = (total * 5 / 4 / 6 + 1).max(2) as u32;
    AssignmentProblem::from_topology(
        &topology,
        &users,
        ServerSpec::new(capacity, 0.5),
        CostModel::paper_example(),
    )
}

fn populations_conserved(p: &AssignmentProblem, a: &Assignment) -> Result<(), String> {
    for i in 0..p.host_count() {
        let placed: u32 = (0..p.server_count()).map(|j| a.count(i, j)).sum();
        if placed != p.hosts[i].users {
            return Err(format!(
                "host {i}: {placed} placed vs {} population",
                p.hosts[i].users
            ));
        }
    }
    Ok(())
}

fn trace_monotone(report: &ScaleReport) -> Result<(), String> {
    let mut prev = report.initial_cost;
    for (pass, &c) in report.cost_trace.iter().enumerate() {
        if c > prev + prev.abs() * 1e-9 + 1e-9 {
            return Err(format!("pass {pass}: cost rose {prev} -> {c}"));
        }
        prev = c;
    }
    Ok(())
}

proptest! {
    /// Scaled-solver invariants on random Fig. 1 populations: users
    /// conserved, monotone trace, sync ≡ par, and — with capacity
    /// available — no overloaded server and ρ below the cutoff.
    #[test]
    fn scaled_solver_invariants(users in proptest::collection::vec(1u32..45, 6)) {
        let p = fig1_problem(&users);
        let (a, report) = solve_sync(&p, ScaleOptions::default());
        let (ap, rp) = solve_par(&p, ScaleOptions { threads: 2, ..ScaleOptions::default() });
        prop_assert_eq!(&a, &ap, "parallel solver diverged from reference");
        prop_assert_eq!(&report.cost_trace, &rp.cost_trace);

        prop_assert!(populations_conserved(&p, &a).is_ok(),
            "{:?}", populations_conserved(&p, &a));
        prop_assert!(trace_monotone(&report).is_ok(), "{:?}", trace_monotone(&report));
        prop_assert!(report.final_cost <= report.initial_cost + 1e-9);
        if p.total_users() <= p.total_capacity() {
            prop_assert!(a.overloaded(&p).is_empty(),
                "loads {:?} with capacity available", a.loads());
        }
        // With comfortable headroom the ρ ≤ 0.99 cap must hold everywhere.
        if f64::from(p.total_users()) <= 0.9 * f64::from(p.total_capacity()) {
            for j in 0..p.server_count() {
                prop_assert!(a.utilization(&p, j) < p.model.rho_cutoff,
                    "server {} at rho {}", j, a.utilization(&p, j));
            }
        }
    }

    /// The same invariants on seeded random multi-region topologies.
    #[test]
    fn scaled_solver_invariants_on_random_topologies(
        seed in 0u64..4096, hosts_per_region in 4usize..12
    ) {
        let p = random_problem(seed, hosts_per_region);
        let (a, report) = solve_par(&p, ScaleOptions::default());
        prop_assert!(populations_conserved(&p, &a).is_ok(),
            "{:?}", populations_conserved(&p, &a));
        prop_assert!(trace_monotone(&report).is_ok(), "{:?}", trace_monotone(&report));
        prop_assert!(a.overloaded(&p).is_empty());
        for j in 0..p.server_count() {
            prop_assert!(a.utilization(&p, j) < p.model.rho_cutoff);
        }
    }

    /// §3.1.3a add-user reconfiguration: populations stay consistent, and
    /// as long as capacity still suffices no server ends up overloaded.
    #[test]
    fn reconfig_add_users_preserves_invariants(
        users in proptest::collection::vec(1u32..30, 6),
        host in 0usize..6,
        k in 1u32..40,
    ) {
        let p = fig1_problem(&users);
        let (a, _) = solve_sync(&p, ScaleOptions::default());
        let mut rc = Reconfigurator::new(p, a, BalanceOptions::default());
        rc.add_users(host, k);

        let (p, a) = (rc.problem(), rc.assignment());
        prop_assert_eq!(p.hosts[host].users, users[host] + k);
        prop_assert!(populations_conserved(p, a).is_ok(), "{:?}", populations_conserved(p, a));
        prop_assert_eq!(
            a.loads().iter().sum::<u32>(),
            users.iter().sum::<u32>() + k
        );
        if p.total_users() <= p.total_capacity() {
            prop_assert!(a.overloaded(p).is_empty(),
                "loads {:?} with capacity available", a.loads());
        }
    }

    /// §3.1.3a delete-user reconfiguration: exactly `k` users leave the
    /// chosen host, everyone else stays put, and no overload appears.
    #[test]
    fn reconfig_remove_users_preserves_invariants(
        users in proptest::collection::vec(5u32..40, 6),
        host in 0usize..6,
        frac in 1u32..5,
    ) {
        let k = (users[host] * frac / 5).max(1);
        let p = fig1_problem(&users);
        let (a, _) = solve_sync(&p, ScaleOptions::default());
        let before_total: u32 = a.loads().iter().sum();
        let mut rc = Reconfigurator::new(p, a, BalanceOptions::default());
        rc.remove_users(host, k);

        let (p, a) = (rc.problem(), rc.assignment());
        prop_assert_eq!(p.hosts[host].users, users[host] - k);
        prop_assert!(populations_conserved(p, a).is_ok(), "{:?}", populations_conserved(p, a));
        prop_assert_eq!(a.loads().iter().sum::<u32>(), before_total - k);
        prop_assert!(a.overloaded(p).is_empty());
    }

    /// Add-then-remove round trip: the population vector returns to its
    /// starting point and the assignment stays internally consistent.
    #[test]
    fn reconfig_round_trip_conserves_populations(
        users in proptest::collection::vec(1u32..30, 6),
        host in 0usize..6,
        k in 1u32..25,
    ) {
        let p = fig1_problem(&users);
        let a = initialize(&p);
        let mut rc = Reconfigurator::new(p, a, BalanceOptions::default());
        rc.add_users(host, k);
        rc.remove_users(host, k);
        let (p, a) = (rc.problem(), rc.assignment());
        prop_assert_eq!(p.hosts[host].users, users[host]);
        prop_assert!(populations_conserved(p, a).is_ok(), "{:?}", populations_conserved(p, a));
    }
}
