//! Integration: every layer of the stack is a pure function of its seed —
//! identical seeds give identical results, different seeds differ.

use lems::net::generators::{multi_region, MultiRegionConfig};
use lems::net::graph::Weight;
use lems::sim::linkfault::LinkProfile;
use lems::sim::rng::SimRng;
use lems::sim::time::{SimDuration, SimTime};
use lems::syntax::{Deployment, DeploymentConfig, LinkChaos, ServerFailurePlan};

/// Every scenario here quiesces far below this; exhausting it means a
/// stuck retry loop, which must fail the test rather than hang it.
const EVENT_BUDGET: u64 = 2_000_000;

fn topo_fingerprint(seed: u64) -> Vec<(usize, usize, Weight)> {
    let mut rng = SimRng::seed(seed);
    let t = multi_region(&mut rng, &MultiRegionConfig::default());
    t.graph()
        .edges()
        .iter()
        .map(|e| (e.a.0, e.b.0, e.weight))
        .collect()
}

#[test]
fn topology_generation_is_deterministic() {
    assert_eq!(topo_fingerprint(5), topo_fingerprint(5));
    assert_ne!(topo_fingerprint(5), topo_fingerprint(6));
}

fn ghs_fingerprint(seed: u64) -> (Vec<(usize, usize)>, u64) {
    let mut rng = SimRng::seed(seed);
    let raw = multi_region(&mut rng, &MultiRegionConfig::default());
    let g = raw.graph().with_distinct_weights();
    let run = lems::mst::ghs::run_ghs(&g, seed);
    (
        run.edges.iter().map(|&(a, b)| (a.0, b.0)).collect(),
        run.stats.total_sent(),
    )
}

#[test]
fn ghs_runs_are_deterministic() {
    assert_eq!(ghs_fingerprint(9), ghs_fingerprint(9));
}

fn deployment_fingerprint(seed: u64) -> (u64, u64, SimTime) {
    let f = lems::net::generators::fig1();
    let mut d = Deployment::build(
        &f.topology,
        &[2, 2, 2, 2, 2, 2],
        &DeploymentConfig {
            seed,
            ..DeploymentConfig::default()
        },
    );
    let names = d.user_names();
    for i in 0..names.len() {
        d.send_at(
            SimTime::from_units(1.0 + i as f64),
            &names[i],
            &names[(i + 5) % names.len()],
        );
    }
    for (i, n) in names.iter().enumerate() {
        d.check_at(SimTime::from_units(100.0 + i as f64), n);
    }
    assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));
    let st = d.stats.borrow();
    (st.retrieved, st.deposited, d.sim.now())
}

#[test]
fn full_deployments_replay_exactly() {
    assert_eq!(deployment_fingerprint(3), deployment_fingerprint(3));
}

/// Renders the complete engine trace of a fig1 deployment run — with
/// optional server failures — as one string, one event per line.
fn trace_stream(seed: u64, with_failures: bool) -> String {
    let f = lems::net::generators::fig1();
    let mut d = Deployment::build(
        &f.topology,
        &[2, 2, 2, 2, 2, 2],
        &DeploymentConfig {
            seed,
            ..DeploymentConfig::default()
        },
    );
    d.sim.enable_trace(usize::MAX);
    if with_failures {
        let mut rng = SimRng::seed(seed).fork("determinism-failures");
        let plan = ServerFailurePlan::random(
            &mut rng,
            &f.servers,
            SimDuration::from_units(60.0),
            SimDuration::from_units(10.0),
            SimTime::from_units(120.0),
        );
        d.apply_server_failures(&plan);
    }
    let names = d.user_names();
    for i in 0..names.len() {
        d.send_at(
            SimTime::from_units(1.0 + i as f64),
            &names[i],
            &names[(i + 5) % names.len()],
        );
    }
    for (i, n) in names.iter().enumerate() {
        d.check_at(SimTime::from_units(200.0 + i as f64), n);
    }
    assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));
    let lines: Vec<String> = d
        .sim
        .trace()
        .events()
        .map(std::string::ToString::to_string)
        .collect();
    assert!(
        lines.len() > 50,
        "trace unexpectedly small: {} events",
        lines.len()
    );
    lines.join("\n")
}

#[test]
fn trace_streams_replay_byte_identically() {
    for seed in [3, 11] {
        assert_eq!(
            trace_stream(seed, false),
            trace_stream(seed, false),
            "seed {seed}: steady trace diverged between runs"
        );
    }
}

#[test]
fn trace_streams_replay_byte_identically_under_failures() {
    for seed in [3, 11] {
        assert_eq!(
            trace_stream(seed, true),
            trace_stream(seed, true),
            "seed {seed}: failure-injected trace diverged between runs"
        );
    }
}

/// Renders the complete engine trace of a fig1 run under link-level chaos
/// — probabilistic drop/duplication/jitter plus a flapping partition — as
/// one string, one event per line.
fn chaos_trace_stream(seed: u64) -> String {
    let f = lems::net::generators::fig1();
    let mut d = Deployment::build(
        &f.topology,
        &[2, 2, 2, 2, 2, 2],
        &DeploymentConfig {
            seed,
            ..DeploymentConfig::default()
        },
    );
    d.sim.enable_trace(usize::MAX);
    let isolated = vec![f.servers[0]];
    let mut others = f.hosts.clone();
    others.extend(f.servers.iter().skip(1).copied());
    let chaos = LinkChaos::new(
        LinkProfile::new(0.10, 0.03, SimDuration::from_units(1.0))
            .expect("probabilities are in range"),
        SimTime::from_units(250.0),
    )
    .partition(
        isolated,
        others,
        SimTime::from_units(40.0),
        SimTime::from_units(80.0),
    );
    d.apply_link_chaos(&chaos).expect("fig1 nodes are bound");
    let names = d.user_names();
    for i in 0..names.len() {
        d.send_at(
            SimTime::from_units(1.0 + 3.0 * i as f64),
            &names[i],
            &names[(i + 5) % names.len()],
        );
    }
    for (i, n) in names.iter().enumerate() {
        d.check_at(SimTime::from_units(300.0 + i as f64), n);
    }
    assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));
    let stream: String = d
        .sim
        .trace()
        .events()
        .map(std::string::ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        stream.contains("link-drop"),
        "chaos trace has no link-drop events — faults were not active"
    );
    stream
}

#[test]
fn trace_streams_replay_byte_identically_under_link_faults() {
    for seed in [3, 11] {
        assert_eq!(
            chaos_trace_stream(seed),
            chaos_trace_stream(seed),
            "seed {seed}: link-fault trace diverged between runs"
        );
    }
}

#[test]
fn workload_generation_is_deterministic() {
    use lems::core::workload::{generate, WorkloadConfig};
    use lems::core::UserId;
    use lems::net::RegionId;
    let pop: Vec<(UserId, RegionId)> = (0..12).map(|i| (UserId(i), RegionId(i % 3))).collect();
    let a = generate(&mut SimRng::seed(4), &pop, &WorkloadConfig::default());
    let b = generate(&mut SimRng::seed(4), &pop, &WorkloadConfig::default());
    assert_eq!(a.events(), b.events());
}
