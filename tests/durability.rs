//! Durability acceptance tests (ISSUE 7): the WAL backend must make a
//! server crash *invisible* to the rest of the system — byte-identical
//! event traces against the fiat-stable in-memory model — while the
//! volatile backend demonstrably loses acked mail under the same crash
//! plan, and a persist/restore round trip of the storage layer must not
//! perturb a run at all.

use lems_net::generators::fig1;
use lems_sim::time::SimTime;
use lems_store::{DurabilityConfig, SyncPolicy, WalConfig};
use lems_syntax::actors::{Deployment, DeploymentConfig, ServerFailurePlan};

const EVENT_BUDGET: u64 = 2_000_000;

fn t(u: f64) -> SimTime {
    SimTime::from_units(u)
}

/// FNV-1a over the rendered trace (same digest as `schedule_explore`).
fn trace_digest(trace: &lems_sim::trace::Trace) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for ev in trace.events() {
        for b in format!("{ev}\n").bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// Small segments so rotation + compaction run inside the test window.
fn wal_cfg() -> WalConfig {
    WalConfig {
        segment_bytes: 8 * 1024,
        chunk_messages: 8,
        max_segments: 3,
        ..WalConfig::default()
    }
}

/// The shared crash plan: Fig. 1, server 0 down in [10, 30) while mail is
/// in flight, deposits landing on it before the crash, users draining
/// well after recovery.
fn crash_workload(seed: u64, durability: DurabilityConfig) -> Deployment {
    let f = fig1();
    let mut d = Deployment::build(
        &f.topology,
        &[2, 2, 2, 2, 2, 2],
        &DeploymentConfig {
            seed,
            durability,
            ..DeploymentConfig::default()
        },
    );
    d.sim.enable_trace(usize::MAX);
    let names = d.user_names();
    let mut plan = ServerFailurePlan::new();
    plan.add(f.servers[0], t(10.0), t(30.0));
    d.apply_server_failures(&plan);
    for i in 0..names.len() {
        d.send_at(
            t(5.0 + 2.0 * i as f64),
            &names[i],
            &names[(i + 3) % names.len()],
        );
    }
    for (i, n) in names.iter().enumerate() {
        d.check_at(t(60.0 + i as f64), n);
        d.check_at(t(120.0 + i as f64), n);
    }
    d
}

/// The headline claim: with per-record sync, WAL recovery reconstructs the
/// exact pre-crash state, so the entire post-crash event schedule —
/// re-routes, retries, drains — is byte-identical to the fiat-stable
/// model where the crash never destroyed anything.
#[test]
fn wal_crash_trace_is_byte_identical_to_ideal_model() {
    let mut ideal = crash_workload(3, DurabilityConfig::Ideal);
    assert!(ideal.sim.run_to_quiescence_bounded(EVENT_BUDGET));
    let ideal_digest = trace_digest(ideal.sim.trace());

    let mut wal = crash_workload(3, DurabilityConfig::Wal(wal_cfg()));
    assert!(wal.sim.run_to_quiescence_bounded(EVENT_BUDGET));
    let wal_digest = trace_digest(wal.sim.trace());

    assert_eq!(
        ideal_digest, wal_digest,
        "WAL recovery must make the crash invisible to the event schedule"
    );
    // Sanity: both runs delivered everything, and the WAL actually ran
    // (it wrote bytes, and its recovery replayed records losslessly).
    let st = wal.stats.borrow();
    assert_eq!(st.submitted, 12);
    assert_eq!(st.retrieved, 12);
    drop(st);
    assert!(wal.wal_bytes() > 0, "the WAL backend must actually log");
    let recs = wal.recoveries.borrow();
    assert_eq!(recs.len(), 1);
    assert_eq!(recs[0].backend, "wal");
    assert!(recs[0].replayed_records > 0);
    assert_eq!(recs[0].lost_messages, 0);
    assert!(ideal.recoveries.borrow()[0].replayed_records == 0);
}

/// Same seed, same WAL config ⇒ same bytes: the durability layer draws no
/// randomness and schedules nothing of its own.
#[test]
fn wal_run_replays_byte_identically() {
    let mut a = crash_workload(7, DurabilityConfig::Wal(wal_cfg()));
    assert!(a.sim.run_to_quiescence_bounded(EVENT_BUDGET));
    let mut b = crash_workload(7, DurabilityConfig::Wal(wal_cfg()));
    assert!(b.sim.run_to_quiescence_bounded(EVENT_BUDGET));
    assert_eq!(trace_digest(a.sim.trace()), trace_digest(b.sim.trace()));
}

/// A torn write at the crash point is truncated by recovery and changes
/// nothing: the schedule still matches the fiat-stable model.
#[test]
fn torn_tail_recovery_matches_ideal_model() {
    let mut ideal = crash_workload(11, DurabilityConfig::Ideal);
    assert!(ideal.sim.run_to_quiescence_bounded(EVENT_BUDGET));

    let cfg = WalConfig {
        torn_tail_bytes: 13,
        ..wal_cfg()
    };
    let mut wal = crash_workload(11, DurabilityConfig::Wal(cfg));
    assert!(wal.sim.run_to_quiescence_bounded(EVENT_BUDGET));
    assert_eq!(
        trace_digest(ideal.sim.trace()),
        trace_digest(wal.sim.trace())
    );
    let recs = wal.recoveries.borrow();
    assert!(
        recs[0].torn_bytes > 0,
        "the crash must actually have left a torn tail to truncate"
    );
    assert_eq!(recs[0].lost_messages, 0);
}

/// Stopping mid-run, persisting every server's WAL, rebuilding state from
/// the log, and resuming yields the same bytes as never stopping: replay
/// reconstructs the exact in-memory state.
#[test]
fn persist_restore_round_trip_preserves_trace_digest() {
    let mut straight = crash_workload(5, DurabilityConfig::Wal(wal_cfg()));
    assert!(straight.sim.run_to_quiescence_bounded(EVENT_BUDGET));
    let expected = trace_digest(straight.sim.trace());

    let mut resumed = crash_workload(5, DurabilityConfig::Wal(wal_cfg()));
    resumed.sim.run_until(t(45.0));
    let restored = resumed.persist_restore_stores();
    assert_eq!(restored, 3, "all three Fig. 1 servers round-trip");
    assert!(resumed.sim.run_to_quiescence_bounded(EVENT_BUDGET));
    assert_eq!(trace_digest(resumed.sim.trace()), expected);
}

/// The counterexample the WAL exists for: RAM-only storage under the
/// *identical* crash plan loses acked deposits for good — the recipients
/// never retrieve them.
#[test]
fn volatile_backend_loses_acked_mail_under_identical_crash_plan() {
    let mut d = crash_workload(3, DurabilityConfig::Volatile);
    assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));
    let st = d.stats.borrow();
    assert_eq!(st.submitted, 12);
    assert!(
        st.retrieved < st.submitted,
        "a crash of volatile storage must lose mail ({} of {} retrieved)",
        st.retrieved,
        st.submitted
    );
    drop(st);
    let recs = d.recoveries.borrow();
    assert_eq!(recs[0].backend, "mem-volatile");
    assert!(recs[0].lost_messages > 0);
}

/// Acknowledge-before-sync is the same bug with extra steps: a WAL whose
/// sync policy never forces records to media loses its un-synced suffix
/// at the crash, exactly like volatile RAM.
#[test]
fn manual_sync_wal_loses_unsynced_records_at_crash() {
    let cfg = WalConfig {
        sync: SyncPolicy::Manual,
        ..wal_cfg()
    };
    let mut d = crash_workload(3, DurabilityConfig::Wal(cfg));
    assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));
    let recs = d.recoveries.borrow();
    assert!(
        recs[0].lost_messages > 0,
        "records never synced must not survive the crash"
    );
}
