//! Integration: a multi-region System-1 deployment driven by the
//! lems-core workload generator, with failures, verified by the message
//! ledger (every submitted message is retrieved or bounced — none lost).

use lems::core::workload::{generate, WorkloadConfig, WorkloadEvent};
use lems::core::UserId;
use lems::net::generators::{multi_region, MultiRegionConfig};
use lems::sim::rng::SimRng;
use lems::sim::time::{SimDuration, SimTime};
use lems::syntax::{Deployment, DeploymentConfig, ServerFailurePlan};

/// Every scenario here quiesces far below this; exhausting it means a
/// stuck retry loop, which must fail the test rather than hang it.
const EVENT_BUDGET: u64 = 2_000_000;

fn build_world(seed: u64) -> Deployment {
    let mut rng = SimRng::seed(seed);
    let topo = multi_region(
        &mut rng,
        &MultiRegionConfig {
            regions: 3,
            hosts_per_region: 3,
            servers_per_region: 2,
            ..MultiRegionConfig::default()
        },
    );
    let users: Vec<u32> = vec![2; topo.hosts().len()];
    Deployment::build(
        &topo,
        &users,
        &DeploymentConfig {
            seed,
            ..DeploymentConfig::default()
        },
    )
}

#[test]
fn cross_region_mail_is_delivered() {
    let mut d = build_world(1);
    let names = d.user_names();
    // Find a pair in different regions.
    let a = names
        .iter()
        .find(|n| n.region() == "r0")
        .expect("region 0 user")
        .clone();
    let b = names
        .iter()
        .find(|n| n.region() == "r2")
        .expect("region 2 user")
        .clone();
    d.send_at(SimTime::from_units(1.0), &a, &b);
    d.check_at(SimTime::from_units(200.0), &b);
    assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));
    let st = d.stats.borrow();
    assert_eq!(st.retrieved, 1, "cross-region message must arrive");
    assert_eq!(st.outstanding(), 0);
}

#[test]
fn generated_workload_with_failures_loses_nothing() {
    let mut d = build_world(2);
    let names = d.user_names();
    let mut rng = SimRng::seed(2).fork("driver");

    // Failures across all servers, healed well before the drain.
    let servers: Vec<_> = d.problem.servers.iter().map(|(n, _)| *n).collect();
    let plan = ServerFailurePlan::random(
        &mut rng,
        &servers,
        SimDuration::from_units(120.0),
        SimDuration::from_units(15.0),
        SimTime::from_units(600.0),
    );
    d.apply_server_failures(&plan);

    // Drive with the core workload generator.
    let population: Vec<(UserId, lems::net::RegionId)> = names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let region =
                lems::net::RegionId(n.region().trim_start_matches('r').parse::<usize>().unwrap());
            (UserId(i), region)
        })
        .collect();
    let wl = generate(
        &mut rng,
        &population,
        &WorkloadConfig {
            horizon: SimTime::from_units(600.0),
            mean_interarrival: SimDuration::from_units(120.0),
            mean_check_interval: SimDuration::from_units(60.0),
            ..WorkloadConfig::default()
        },
    );
    assert!(wl.send_count() > 10, "workload too small to be meaningful");
    for ev in wl.events() {
        match *ev {
            WorkloadEvent::Send { at, from, to } => {
                d.send_at(at, &names[from.0].clone(), &names[to.0].clone());
            }
            WorkloadEvent::CheckMail { at, user } => {
                d.check_at(at, &names[user.0].clone());
            }
        }
    }
    // Drain sweeps after every outage has healed.
    for (i, n) in names.iter().enumerate() {
        d.check_at(SimTime::from_units(800.0 + i as f64), n);
        d.check_at(SimTime::from_units(900.0 + i as f64), n);
    }
    assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));

    let st = d.stats.borrow();
    assert!(st.submitted > 10);
    assert_eq!(
        st.outstanding(),
        0,
        "ledger: submitted {} retrieved {} bounced {}",
        st.submitted,
        st.retrieved,
        st.bounced
    );
    // Checks under failure still average far below list length.
    assert!(st.retrieval_polls.mean() < 2.5);
}

#[test]
fn notifications_follow_deposits() {
    let mut d = build_world(3);
    let names = d.user_names();
    let (a, b) = (names[0].clone(), names[1].clone());
    d.send_at(SimTime::from_units(1.0), &a, &b);
    d.send_at(SimTime::from_units(2.0), &a, &b);
    assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));
    let st = d.stats.borrow();
    assert_eq!(st.deposited, 2);
    assert_eq!(st.notifications, 2, "one alert per deposit (§3.1.2c)");
}
