//! Kernel equivalence regression battery.
//!
//! The sim kernel's refactor safety net: every audit scenario family
//! (steady/failover/chaos/durability), the explore s1/s2 kernels, and a
//! kernel-level shard battery are pinned byte-identical — by trace digest —
//! to `GOLDEN_kernel_digests.txt`, which was generated on the pre-refactor
//! engine (PR 8, `BTreeMap` event queue, sequential dispatch) and is
//! committed. A kernel change that reorders, retimes, drops, or duplicates
//! any observable event fails these tests.
//!
//! Two evidence layers:
//!
//! 1. **Sequential pins** — the full production scenarios (which hold
//!    non-`Send` `Rc` state and therefore always run sequentially) replayed
//!    on the current kernel must digest equal to the committed values.
//! 2. **Shard battery** — kernel-level scenarios with `Send` actors
//!    covering every engine feature (FIFO lanes, timers + cancellation,
//!    crash/recover windows, link faults with drop/dup/jitter). Each is
//!    pinned to its committed sequential digest *and* required to digest
//!    equal when run on [`ShardedSim`] at thread counts 1, 2, and 8 — the
//!    thread-count-invariance contract.
//!
//! Regenerate the golden file (only after an *intentional* semantic
//! change, with the diff reviewed) via:
//!
//! ```sh
//! cargo test --test kernel_equivalence -- --ignored regenerate_golden_digests
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;

use lems_check::explore::kernel_fifo_digests;
use lems_check::scenarios;
use lems_sim::actor::SimCounters;
use lems_sim::actor::{Actor, ActorId, ActorSim, Ctx, TimerId};
use lems_sim::linkfault::{LinkFaultPlan, LinkProfile};
use lems_sim::shard::ShardedSim;
use lems_sim::time::{SimDuration, SimTime};
use lems_sim::trace::Trace;

/// Event budget for one battery run — far above what any scenario needs,
/// so exhaustion means a runaway loop, not a tight limit.
const BATTERY_BUDGET: u64 = 500_000;

/// Seeds every family is pinned at.
const SEEDS: [u64; 2] = [3, 7];

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("GOLDEN_kernel_digests.txt")
}

/// Parses `GOLDEN_kernel_digests.txt`: `name 0xHEX` per line, `#` comments.
fn load_golden() -> BTreeMap<String, u64> {
    let text = std::fs::read_to_string(golden_path()).expect(
        "GOLDEN_kernel_digests.txt missing — regenerate with \
         `cargo test --test kernel_equivalence -- --ignored regenerate_golden_digests`",
    );
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, hex) = line.split_once(' ').expect("golden line is `name 0xHEX`");
        let digest = u64::from_str_radix(hex.trim().trim_start_matches("0x"), 16)
            .expect("golden digest parses as hex");
        out.insert(name.to_owned(), digest);
    }
    out
}

fn assert_pinned(golden: &BTreeMap<String, u64>, name: &str, digest: u64) {
    let Some(&expected) = golden.get(name) else {
        panic!("no committed digest for `{name}` — regenerate the golden file");
    };
    assert_eq!(
        digest, expected,
        "`{name}` diverged from the committed pre-refactor digest: \
         got {digest:#018x}, pinned {expected:#018x}"
    );
}

// ---------------------------------------------------------------------------
// Shard battery: kernel-level scenarios with `Send` actors.
//
// These exercise every engine feature that the sharded dispatcher must
// reproduce: same-instant contention on FIFO lanes, self-sends, timers
// armed/cancelled (including a same-instant in-batch cancellation), crash
// and recovery windows with traffic in flight, and link faults drawing
// drop/dup/jitter decisions from the engine's fault stream. Handlers draw
// no ambient randomness (`Ctx::rng`), which is exactly the sharded
// engine's determinism contract — see DESIGN.md §13.
// ---------------------------------------------------------------------------

fn unit(u: f64) -> SimDuration {
    SimDuration::from_units(u)
}

fn t(u: f64) -> SimTime {
    SimTime::from_units(u)
}

/// The engine surface a battery scenario needs, implemented by both the
/// sequential and the sharded engine so one builder populates either.
trait BatteryEngine {
    fn add<A: Actor<Msg = Msg> + Send + 'static>(&mut self, actor: A) -> ActorId;
    fn inject_msg(&mut self, to: ActorId, msg: Msg, delay: SimDuration);
    fn crash_at(&mut self, actor: ActorId, at: SimTime);
    fn recover_at(&mut self, actor: ActorId, at: SimTime);
    fn faults(&mut self, plan: LinkFaultPlan);
    fn trace_all(&mut self);
    fn run_bounded(&mut self, max_events: u64) -> bool;
    fn counters(&self) -> &SimCounters;
    fn trace(&self) -> &Trace;
    fn clock(&self) -> SimTime;
}

impl BatteryEngine for ActorSim<Msg> {
    fn add<A: Actor<Msg = Msg> + Send + 'static>(&mut self, actor: A) -> ActorId {
        self.add_actor(actor)
    }
    fn inject_msg(&mut self, to: ActorId, msg: Msg, delay: SimDuration) {
        self.inject(to, msg, delay);
    }
    fn crash_at(&mut self, actor: ActorId, at: SimTime) {
        self.schedule_crash(actor, at);
    }
    fn recover_at(&mut self, actor: ActorId, at: SimTime) {
        self.schedule_recover(actor, at);
    }
    fn faults(&mut self, plan: LinkFaultPlan) {
        self.set_link_faults(plan);
    }
    fn trace_all(&mut self) {
        self.enable_trace(usize::MAX);
    }
    fn run_bounded(&mut self, max_events: u64) -> bool {
        self.run_to_quiescence_bounded(max_events)
    }
    fn counters(&self) -> &SimCounters {
        ActorSim::counters(self)
    }
    fn trace(&self) -> &Trace {
        ActorSim::trace(self)
    }
    fn clock(&self) -> SimTime {
        self.now()
    }
}

impl BatteryEngine for ShardedSim<Msg> {
    fn add<A: Actor<Msg = Msg> + Send + 'static>(&mut self, actor: A) -> ActorId {
        self.add_actor(actor)
    }
    fn inject_msg(&mut self, to: ActorId, msg: Msg, delay: SimDuration) {
        self.inject(to, msg, delay);
    }
    fn crash_at(&mut self, actor: ActorId, at: SimTime) {
        self.schedule_crash(actor, at);
    }
    fn recover_at(&mut self, actor: ActorId, at: SimTime) {
        self.schedule_recover(actor, at);
    }
    fn faults(&mut self, plan: LinkFaultPlan) {
        self.set_link_faults(plan);
    }
    fn trace_all(&mut self) {
        self.enable_trace(usize::MAX);
    }
    fn run_bounded(&mut self, max_events: u64) -> bool {
        self.run_to_quiescence_bounded(max_events)
    }
    fn counters(&self) -> &SimCounters {
        ShardedSim::counters(self)
    }
    fn trace(&self) -> &Trace {
        ShardedSim::trace(self)
    }
    fn clock(&self) -> SimTime {
        self.now()
    }
}

/// Battery message: `(ttl << 8) | hop-salt`, packed so forwarding rules are
/// pure arithmetic on the payload.
type Msg = u64;

fn ttl_of(m: Msg) -> u64 {
    m >> 8
}

fn with_ttl(m: Msg, ttl: u64) -> Msg {
    (ttl << 8) | (m & 0xff)
}

/// Quantized mesh delays: a small set of grid-aligned values so many
/// events share instants (same-instant batches are where scheduling
/// freedom — and therefore shard-merge bugs — live).
fn mesh_delay(a: u64, b: u64) -> SimDuration {
    unit(0.25 * (1.0 + ((a * 7 + b * 3) % 4) as f64))
}

/// Forwards each message to an arithmetically chosen neighbour until its
/// TTL runs out; every third hop also loops through a self-send.
struct MeshActor {
    n: usize,
    received: u64,
}

impl Actor for MeshActor {
    type Msg = Msg;
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let me = ctx.me().0 as u64;
        for k in 1..=3u64 {
            let to = ActorId(((me + k) as usize) % self.n);
            ctx.send(to, with_ttl(k, 40), mesh_delay(me, k));
        }
    }
    fn on_message(&mut self, from: ActorId, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        self.received += 1;
        let ttl = ttl_of(msg);
        if ttl == 0 {
            return;
        }
        let me = ctx.me().0 as u64;
        let from_salt = if from == ActorId::EXTERNAL {
            97
        } else {
            from.0 as u64
        };
        if self.received.is_multiple_of(3) {
            ctx.send_self(with_ttl(msg, ttl - 1), unit(0.25));
        } else {
            let to =
                ActorId(((me + 1 + (ttl + from_salt) % (self.n as u64 - 1)) as usize) % self.n);
            ctx.send(to, with_ttl(msg, ttl - 1), mesh_delay(me + from_salt, ttl));
        }
    }
}

/// `mesh-burst`: 8 mesh actors, FIFO links, plus one injection to an
/// unregistered id (the dropped-unknown path).
fn mesh_burst(sim: &mut impl BatteryEngine) {
    for _ in 0..8 {
        sim.add(MeshActor { n: 8, received: 0 });
    }
    sim.inject_msg(ActorId(999), with_ttl(0, 1), unit(1.0));
    sim.inject_msg(ActorId(0), with_ttl(5, 12), unit(0.5));
    sim.trace_all();
}

/// Arms periodic timers, re-arms across rounds, and cancels: one timer
/// cancelled at arm time, and a same-instant pair where the earlier-seq
/// timer's handler cancels the later-seq one *in the same batch*.
struct TimerActor {
    n: usize,
    rounds: u64,
    doomed: Option<TimerId>,
    fired_tags: u64,
}

const TAG_TICK: u64 = 0;
const TAG_KILLER: u64 = 1;
const TAG_DOOMED: u64 = 2;

impl Actor for TimerActor {
    type Msg = Msg;
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let me = ctx.me().0 as f64;
        ctx.set_timer(unit(1.0 + 0.25 * me), TAG_TICK);
        // Armed and immediately cancelled: must be suppressed at t=2.
        let stillborn = ctx.set_timer(unit(2.0), TAG_DOOMED);
        ctx.cancel_timer(stillborn);
        // Same-instant pair: KILLER (earlier seq) fires first at t=3 and
        // cancels DOOMED (later seq, same instant) from inside the batch.
        ctx.set_timer(unit(3.0), TAG_KILLER);
        self.doomed = Some(ctx.set_timer(unit(3.0), TAG_DOOMED));
    }
    fn on_timer(&mut self, _id: TimerId, tag: u64, ctx: &mut Ctx<'_, Msg>) {
        self.fired_tags = self.fired_tags.wrapping_mul(31).wrapping_add(tag + 1);
        match tag {
            TAG_TICK if self.rounds < 6 => {
                self.rounds += 1;
                let me = ctx.me().0;
                ctx.send(ActorId((me + 1) % self.n), with_ttl(tag, 2), unit(0.5));
                ctx.set_timer(unit(1.0), TAG_TICK);
            }
            TAG_KILLER => {
                if let Some(doomed) = self.doomed.take() {
                    ctx.cancel_timer(doomed);
                }
            }
            _ => {}
        }
    }
    fn on_message(&mut self, _from: ActorId, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        let ttl = ttl_of(msg);
        if ttl > 0 {
            let me = ctx.me().0;
            ctx.send(
                ActorId((me + 2) % self.n),
                with_ttl(msg, ttl - 1),
                unit(0.75),
            );
        }
    }
}

/// `timer-cancel`: 6 timer actors ticking, re-arming, and cancelling.
fn timer_cancel(sim: &mut impl BatteryEngine) {
    for _ in 0..6 {
        sim.add(TimerActor {
            n: 6,
            rounds: 0,
            doomed: None,
            fired_tags: 0,
        });
    }
    sim.trace_all();
}

/// Mesh actor that announces its recovery to two neighbours.
struct ChurnActor {
    inner: MeshActor,
}

impl Actor for ChurnActor {
    type Msg = Msg;
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.inner.on_start(ctx);
    }
    fn on_message(&mut self, from: ActorId, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        self.inner.on_message(from, msg, ctx);
    }
    fn on_crash(&mut self, _now: SimTime) {
        // Volatile state is lost; the received tally survives as "stable".
    }
    fn on_recover(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let me = ctx.me().0;
        let n = self.inner.n;
        ctx.send(ActorId((me + 1) % n), with_ttl(9, 6), unit(0.25));
        ctx.send(ActorId((me + 3) % n), with_ttl(9, 6), unit(0.5));
    }
}

/// `crash-churn`: 8 churn actors under two staggered crash/recover waves
/// with mesh traffic in flight — deliveries into the windows drop.
fn crash_churn(sim: &mut impl BatteryEngine) {
    for _ in 0..8 {
        sim.add(ChurnActor {
            inner: MeshActor { n: 8, received: 0 },
        });
    }
    for i in 0..4usize {
        let a = ActorId(i);
        sim.crash_at(a, t(2.0 + 0.5 * i as f64));
        sim.recover_at(a, t(6.0 + 0.5 * i as f64));
        sim.crash_at(a, t(9.0 + 0.25 * i as f64));
        sim.recover_at(a, t(12.0 + 0.25 * i as f64));
    }
    sim.trace_all();
}

/// `chaos-links`: the mesh under a lossy, duplicating, jittery default
/// profile plus one hard outage window — every fault draw comes from the
/// engine's dedicated fault stream.
fn chaos_links(sim: &mut impl BatteryEngine) {
    for _ in 0..8 {
        sim.add(MeshActor { n: 8, received: 0 });
    }
    let mut plan = LinkFaultPlan::new().with_default_profile(
        LinkProfile::new(0.15, 0.05, unit(0.5)).expect("probabilities are in range"),
    );
    plan.add_link_outage(ActorId(0), ActorId(1), t(1.0), t(4.0))
        .expect("window is well-formed");
    sim.faults(plan);
    sim.trace_all();
}

/// The battery scenario names; [`populate`] builds each one.
const BATTERY: [&str; 4] = ["mesh-burst", "timer-cancel", "crash-churn", "chaos-links"];

/// Populates `sim` with the named battery scenario.
fn populate(name: &str, sim: &mut impl BatteryEngine) {
    match name {
        "mesh-burst" => mesh_burst(sim),
        "timer-cancel" => timer_cancel(sim),
        "crash-churn" => crash_churn(sim),
        "chaos-links" => chaos_links(sim),
        other => panic!("unknown battery scenario `{other}`"),
    }
}

/// Builds the named scenario on the sequential engine.
fn battery_seq(name: &str, seed: u64) -> ActorSim<Msg> {
    let mut sim = ActorSim::new(seed);
    populate(name, &mut sim);
    sim
}

/// Builds the named scenario on the sharded engine.
fn battery_sharded(name: &str, seed: u64, threads: usize) -> ShardedSim<Msg> {
    let mut sim = ShardedSim::new(seed, threads);
    populate(name, &mut sim);
    sim
}

/// Runs a battery sim to quiescence and fingerprints it: the trace digest
/// folded with every counter and the final clock, so a divergence in any
/// observable — event stream, drop accounting, timer suppression, end time
/// — changes the digest.
fn battery_digest(sim: &mut impl BatteryEngine) -> u64 {
    assert!(
        sim.run_bounded(BATTERY_BUDGET),
        "battery scenario failed to quiesce"
    );
    let c = sim.counters();
    let mut h = sim.trace().digest();
    for x in [
        c.delivered.get(),
        c.dropped_down.get(),
        c.dropped_unknown.get(),
        c.dropped_link.get(),
        c.duplicated.get(),
        c.timers_fired.get(),
        c.timers_suppressed.get(),
        c.crashes.get(),
        c.recoveries.get(),
        sim.clock().as_ticks(),
    ] {
        h ^= x;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// The pinned comparisons.
// ---------------------------------------------------------------------------

#[test]
fn audit_scenarios_match_pre_refactor_digests_seed_3() {
    let golden = load_golden();
    for o in scenarios::run_all(3) {
        assert_pinned(&golden, &format!("audit/{}@3", o.name), o.trace_digest);
    }
}

#[test]
fn audit_scenarios_match_pre_refactor_digests_seed_7() {
    let golden = load_golden();
    for o in scenarios::run_all(7) {
        assert_pinned(&golden, &format!("audit/{}@7", o.name), o.trace_digest);
    }
}

#[test]
fn explore_kernels_match_pre_refactor_digests() {
    let golden = load_golden();
    for seed in SEEDS {
        for (name, digest) in kernel_fifo_digests(seed) {
            assert_pinned(&golden, &format!("explore/{name}@{seed}"), digest);
        }
    }
}

#[test]
fn shard_battery_sequential_matches_pre_refactor_digests() {
    let golden = load_golden();
    for name in BATTERY {
        for seed in SEEDS {
            let digest = battery_digest(&mut battery_seq(name, seed));
            assert_pinned(&golden, &format!("battery/{name}@{seed}"), digest);
        }
    }
}

/// The thread-count-invariance contract: every battery scenario, run on
/// the sharded engine at 1, 2, and 8 threads, must reproduce the committed
/// pre-refactor sequential digest byte for byte.
#[test]
fn shard_battery_is_thread_count_invariant() {
    let golden = load_golden();
    for name in BATTERY {
        for seed in SEEDS {
            for threads in [1, 2, 8] {
                let digest = battery_digest(&mut battery_sharded(name, seed, threads));
                let key = format!("battery/{name}@{seed}");
                let Some(&expected) = golden.get(&key) else {
                    panic!("no committed digest for `{key}`");
                };
                assert_eq!(
                    digest, expected,
                    "`{name}` seed {seed} at {threads} thread(s) diverged from the \
                     sequential digest: got {digest:#018x}, pinned {expected:#018x}"
                );
            }
        }
    }
}

/// Rewrites `GOLDEN_kernel_digests.txt` from the current engine. Ignored:
/// run explicitly, review the diff, and commit it only for an intentional
/// semantic change.
#[test]
#[ignore = "regenerates the committed golden digest file"]
fn regenerate_golden_digests() {
    let mut lines = vec![
        "# Kernel trace digests captured on the pre-refactor engine".to_owned(),
        "# (BTreeMap event queue, sequential dispatch, PR 8 HEAD).".to_owned(),
        "# tests/kernel_equivalence.rs pins every later kernel against these.".to_owned(),
        "# Regenerate (intentional semantic changes only):".to_owned(),
        "#   cargo test --test kernel_equivalence -- --ignored regenerate_golden_digests"
            .to_owned(),
    ];
    for seed in SEEDS {
        for o in scenarios::run_all(seed) {
            lines.push(format!("audit/{}@{seed} {:#018x}", o.name, o.trace_digest));
        }
    }
    for seed in SEEDS {
        for (name, digest) in kernel_fifo_digests(seed) {
            lines.push(format!("explore/{name}@{seed} {digest:#018x}"));
        }
    }
    for name in BATTERY {
        for seed in SEEDS {
            let digest = battery_digest(&mut battery_seq(name, seed));
            lines.push(format!("battery/{name}@{seed} {digest:#018x}"));
        }
    }
    std::fs::write(golden_path(), lines.join("\n") + "\n").expect("write golden file");
}
