//! Integration: user migration across the directory, redirect table, and
//! System-2 tracking — §3.1.4 (rename + redirect) and §3.2.4 (free
//! within-region movement) side by side.

use lems::core::{AuthorityList, Directory, MailName};
use lems::locindep::{RegionTracker, SubgroupMap};
use lems::net::NodeId;
use lems::net::RegionId;
use lems::sim::time::{SimDuration, SimTime};
use lems::syntax::{migrate_user, RedirectTable};

fn setup_directory() -> Directory {
    let mut d = Directory::new();
    d.map_region("east", RegionId(0));
    d.map_region("west", RegionId(1));
    for (name, host, servers) in [
        ("east.h1.alice", 10, vec![0, 1]),
        ("east.h2.bob", 11, vec![1, 2]),
        ("west.h9.carol", 20, vec![5, 6]),
    ] {
        d.register(
            name.parse().unwrap(),
            NodeId(host),
            AuthorityList::new(servers.into_iter().map(NodeId).collect()),
        )
        .unwrap();
    }
    d
}

#[test]
fn system1_migration_renames_and_mail_follows_redirect() {
    let mut dir = setup_directory();
    let mut redirects = RedirectTable::new();
    let old: MailName = "east.h1.alice".parse().unwrap();

    let out = migrate_user(
        &mut dir,
        &mut redirects,
        &old,
        "west",
        "h8",
        NodeId(21),
        AuthorityList::new(vec![NodeId(5)]),
        SimTime::from_units(100.0),
        SimDuration::from_units(200.0),
    )
    .unwrap();

    // The old name is retired; the new one resolves in the new region.
    assert!(!dir.is_registered(&old));
    let rec = dir.by_name(&out.new_name).unwrap();
    assert_eq!(rec.home_host, NodeId(21));
    assert_eq!(dir.region_of_name(out.new_name.region()), Some(RegionId(1)));

    // Mail sent to the old name is redirected while the entry is live,
    // and the sender is notified each time.
    for i in 0..3 {
        let hit = redirects
            .lookup(&old, SimTime::from_units(150.0 + i as f64))
            .expect("redirect live");
        assert_eq!(hit.new_name, out.new_name);
    }
    assert_eq!(redirects.notification_count(&old), 3);

    // After expiry, the old name is gone for good.
    assert!(redirects.lookup(&old, SimTime::from_units(301.0)).is_none());
    assert_eq!(redirects.expire(SimTime::from_units(301.0)), 1);
}

#[test]
fn system2_within_region_move_needs_no_rename() {
    let servers = vec![NodeId(0), NodeId(1), NodeId(2)];
    let map = SubgroupMap::new(32, servers.clone());
    let mut tracker = RegionTracker::new(servers);
    let bob: MailName = "east.h2.bob".parse().unwrap();

    // Bob's resolving server is a pure function of his name...
    let before = map.server_of(&bob);
    // ... he roams to another host ...
    tracker.login(&bob, NodeId(15), NodeId(2));
    // ... and his name, sub-group, and resolving server are unchanged.
    assert_eq!(map.server_of(&bob), before);
    let found = tracker.locate(&bob, before);
    assert_eq!(found.host, Some(NodeId(15)));
}

#[test]
fn failed_migration_is_atomic() {
    let mut dir = setup_directory();
    let mut redirects = RedirectTable::new();
    // Target name already taken.
    dir.register(
        "west.h8.alice".parse().unwrap(),
        NodeId(30),
        AuthorityList::new(vec![NodeId(5)]),
    )
    .unwrap();
    let old: MailName = "east.h1.alice".parse().unwrap();
    let before_len = dir.len();

    let err = migrate_user(
        &mut dir,
        &mut redirects,
        &old,
        "west",
        "h8",
        NodeId(21),
        AuthorityList::new(vec![NodeId(5)]),
        SimTime::from_units(1.0),
        SimDuration::from_units(10.0),
    )
    .unwrap_err();

    assert!(matches!(err, lems::core::DirectoryError::DuplicateName(_)));
    assert!(dir.is_registered(&old), "old registration must survive");
    assert_eq!(dir.len(), before_len);
    assert!(redirects.is_empty(), "no stray redirect on failure");
}
