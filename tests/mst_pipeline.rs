//! Integration: topology generation -> distributed GHS -> two-level
//! structure -> broadcast/convergecast -> attribute search, checked
//! against centralized oracles at every stage.

use std::collections::BTreeMap;

use lems::attr::{
    AttrKey, AttributeNetwork, AttributeRegistry, AttributeSet, Query, RequesterContext, Visibility,
};
use lems::mst::backbone::{build_two_level, build_two_level_distributed};
use lems::mst::broadcast::{simulate_broadcast, BroadcastConfig};
use lems::mst::ghs::run_ghs;
use lems::net::generators::{multi_region, MultiRegionConfig};
use lems::net::mst::kruskal;
use lems::net::topology::Topology;
use lems::sim::failure::FailurePlan;
use lems::sim::rng::SimRng;
use lems::sim::time::SimDuration;

fn distinct_topology(seed: u64, regions: usize) -> Topology {
    let mut rng = SimRng::seed(seed);
    let raw = multi_region(
        &mut rng,
        &MultiRegionConfig {
            regions,
            hosts_per_region: 3,
            servers_per_region: 3,
            ..MultiRegionConfig::default()
        },
    );
    let g = raw.graph().with_distinct_weights();
    let mut t = Topology::new();
    for n in raw.nodes() {
        match raw.kind(n) {
            lems::net::NodeKind::Host => t.add_host(raw.region(n), raw.name(n)),
            lems::net::NodeKind::Server => t.add_server(raw.region(n), raw.name(n)),
        };
    }
    for e in g.edges() {
        t.link(e.a, e.b, e.weight);
    }
    t
}

#[test]
fn ghs_equals_kruskal_on_generated_topologies() {
    for seed in 0..5 {
        let t = distinct_topology(seed, 3);
        let run = run_ghs(t.graph(), seed);
        let k = kruskal(t.graph());
        assert_eq!(run.total_weight, k.total_weight(), "seed {seed}");
        assert_eq!(run.edges.len(), t.node_count() - 1);
    }
}

#[test]
fn two_level_constructions_agree_and_span() {
    for seed in 0..5 {
        let t = distinct_topology(seed + 10, 4);
        let central = build_two_level(&t);
        let (distributed, stats) = build_two_level_distributed(&t, seed);
        assert_eq!(central, distributed, "seed {seed}");
        assert!(distributed.spans(&t));
        assert!(stats.total_sent() > 0);
    }
}

#[test]
fn convergecast_counts_every_node_and_masks_failures() {
    let t = distinct_topology(42, 4);
    let two = build_two_level(&t);
    let adjacency = two.adjacency(&t);
    let root = t.servers()[0];
    let cfg = BroadcastConfig {
        root,
        local_matches: (0..t.node_count() as u64).collect(),
        grace: SimDuration::from_units(2.0),
        seed: 42,
    };
    let out = simulate_broadcast(t.graph(), &adjacency, &cfg, &FailurePlan::new()).unwrap();
    let expected: u64 = (0..t.node_count() as u64).sum();
    assert_eq!(out.aggregate.matches, expected, "sum aggregated exactly");
    assert_eq!(out.aggregate.responded as usize, t.node_count());

    // Kill a leaf: only its contribution disappears.
    let leaf = t
        .nodes()
        .find(|&n| adjacency[n.0].len() == 1 && n != root)
        .expect("a leaf exists");
    let mut plan = FailurePlan::new();
    plan.add_outage(
        lems::sim::actor::ActorId(leaf.0),
        lems::sim::time::SimTime::ZERO,
        lems::sim::time::SimTime::from_units(1e9),
    )
    .unwrap();
    let degraded = simulate_broadcast(t.graph(), &adjacency, &cfg, &plan).unwrap();
    assert_eq!(degraded.aggregate.matches, expected - leaf.0 as u64);
    assert_eq!(degraded.aggregate.unavailable, 1);
}

#[test]
fn attribute_search_over_generated_world_matches_oracle() {
    let t = distinct_topology(77, 3);
    let mut registries = BTreeMap::new();
    let mut expected = 0u64;
    for (i, &s) in t.servers().iter().enumerate() {
        let mut reg = AttributeRegistry::new();
        let mut a = AttributeSet::new();
        let field = if i % 3 == 0 { "mail" } else { "other" };
        if field == "mail" {
            expected += 1;
        }
        a.add(AttrKey::Expertise, field, Visibility::Public);
        reg.upsert(format!("r{}.h.u{i}", t.region(s).0).parse().unwrap(), a);
        registries.insert(s, reg);
    }
    let net = AttributeNetwork::new(t, registries);
    let root = net.topology().servers()[0];
    let q = Query::text_eq(AttrKey::Expertise, "mail");
    let out = net
        .search(
            root,
            &q,
            &RequesterContext::default(),
            &FailurePlan::new(),
            1,
        )
        .unwrap();
    assert_eq!(out.matches, expected);
    assert_eq!(out.matches, out.ground_truth_matches);
}
