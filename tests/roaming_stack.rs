//! Integration: the running System-2 protocol driven by the core mobility
//! generator — alerts always follow the user's latest login, and the
//! cooperative tracking keeps consult overhead sub-linear.

use lems::core::workload::{generate_mobility, MobilityConfig};
use lems::core::{MailName, UserId};
use lems::locindep::RoamDeployment;
use lems::net::generators::{multi_region, MultiRegionConfig};
use lems::sim::rng::SimRng;
use lems::sim::time::{SimDuration, SimTime};

/// Every scenario here quiesces far below this; exhausting it means a
/// stuck retry loop, which must fail the test rather than hang it.
const EVENT_BUDGET: u64 = 2_000_000;

#[test]
fn generated_mobility_delivers_alerts_to_latest_location() {
    let mut rng = SimRng::seed(21);
    let topo = multi_region(
        &mut rng,
        &MultiRegionConfig {
            regions: 1,
            hosts_per_region: 5,
            servers_per_region: 3,
            ..MultiRegionConfig::default()
        },
    );
    let mut d = RoamDeployment::build(&topo, &[2; 5], 32, 21);
    let users: Vec<MailName> = d.users.keys().cloned().collect();
    let hosts = topo.hosts_in(lems::net::RegionId(0));

    // Mobility: every user starts home and roams a few times.
    let ids: Vec<UserId> = (0..users.len()).map(UserId).collect();
    let schedule = generate_mobility(
        &mut rng,
        &ids,
        hosts.len(),
        &MobilityConfig {
            mean_move_interval: SimDuration::from_units(150.0),
            homing_bias: 0.3,
            horizon: SimTime::from_units(500.0),
        },
    );
    let mut last_host = vec![0usize; users.len()];
    for &(at, user, host_idx) in &schedule.logins {
        // Host index 0 = the user's own primary host; others map to the
        // region's host list.
        let target = if host_idx == 0 {
            d.users[&users[user.0]]
        } else {
            hosts[host_idx]
        };
        d.login_at(at + SimDuration::from_units(0.001), &users[user.0], target);
        last_host[user.0] = host_idx;
    }

    // After all movement settles, mail everyone.
    let sender = users[0].clone();
    for (i, u) in users.iter().enumerate().skip(1) {
        d.send_at(SimTime::from_units(600.0 + i as f64), &sender, u);
    }
    assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));

    // Every recipient got exactly one alert, at their last login host.
    for (i, u) in users.iter().enumerate().skip(1) {
        let expected_host = if last_host[i] == 0 {
            d.users[u]
        } else {
            hosts[last_host[i]]
        };
        assert_eq!(
            d.alerts_at(expected_host, u),
            1,
            "alert for {u} must land at their latest login host"
        );
    }

    let st = d.stats.borrow();
    assert_eq!(st.notified as usize, users.len() - 1);
    assert_eq!(st.unknown_location, 0);
    // Cooperative updates mean location lookups almost never fan out.
    assert!(st.consults as usize <= users.len());
}

#[test]
fn scale_smoke_eight_regions() {
    // A moderately large world exercised end to end through System 1:
    // 8 regions, 48 hosts, 96 users, cross-region traffic.
    use lems::syntax::{Deployment, DeploymentConfig};
    let mut rng = SimRng::seed(22);
    let topo = multi_region(
        &mut rng,
        &MultiRegionConfig {
            regions: 8,
            hosts_per_region: 6,
            servers_per_region: 3,
            ..MultiRegionConfig::default()
        },
    );
    let users = vec![2u32; topo.hosts().len()];
    let mut d = Deployment::build(&topo, &users, &DeploymentConfig::default());
    let names = d.user_names();
    assert_eq!(names.len(), 96);

    for i in 0..names.len() {
        let to = (i + 29) % names.len(); // mostly cross-region hops
        d.send_at(SimTime::from_units(1.0 + i as f64), &names[i], &names[to]);
    }
    for (i, n) in names.iter().enumerate() {
        d.check_at(SimTime::from_units(500.0 + i as f64), n);
    }
    assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));

    let st = d.stats.borrow();
    assert_eq!(st.submitted, 96);
    assert_eq!(st.outstanding(), 0, "all 96 messages accounted for");
    assert_eq!(st.retrieved, 96);
}
