//! Schedule-exploration regression tests: the FIFO scheduler must replay
//! byte-identically to the pre-refactor engine, and the exhaustive
//! explorer must visit exactly the expected interleavings on known small
//! cases.

use std::collections::BTreeSet;

use lems_net::generators::fig1;
use lems_sim::actor::{Actor, ActorId, ActorSim, Ctx};
use lems_sim::sched::{ExploreBounds, Explorer, FifoScheduler, RandomScheduler, ReplayScheduler};
use lems_sim::time::{SimDuration, SimTime};
use lems_syntax::actors::{Deployment, DeploymentConfig};

const EVENT_BUDGET: u64 = 2_000_000;

fn t(u: f64) -> SimTime {
    SimTime::from_units(u)
}

/// FNV-1a over the rendered trace: any change to event order, timing, or
/// content changes the digest.
fn trace_digest(trace: &lems_sim::trace::Trace) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for ev in trace.events() {
        for b in format!("{ev}\n").bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

fn steady_fig1(seed: u64) -> Deployment {
    let f = fig1();
    let mut d = Deployment::build(
        &f.topology,
        &[2, 2, 2, 2, 2, 2],
        &DeploymentConfig {
            seed,
            ..DeploymentConfig::default()
        },
    );
    d.sim.enable_trace(usize::MAX);
    let names = d.user_names();
    for i in 0..names.len() {
        d.send_at(t(1.0 + i as f64), &names[i], &names[(i + 5) % names.len()]);
    }
    for (i, n) in names.iter().enumerate() {
        d.check_at(t(100.0 + i as f64), n);
    }
    d
}

/// The digest of the steady Fig. 1 run recorded on the pre-scheduler
/// engine (timestamp-ordered `BinaryHeap` pop, no scheduler indirection).
/// The default `FifoScheduler` path must keep reproducing it byte for
/// byte.
#[test]
fn fifo_scheduler_trace_is_byte_identical_to_pre_refactor_engine() {
    let mut d = steady_fig1(3);
    assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));
    assert_eq!(trace_digest(d.sim.trace()), 0x42ce_873a_7a5b_8ce9);
}

/// Same digest with an explicitly installed `FifoScheduler`: the scheduler
/// path (ready-set construction + choose) must not perturb event order.
#[test]
fn installed_fifo_scheduler_matches_default_engine_order() {
    let mut d = steady_fig1(3);
    d.sim.set_scheduler(Box::new(FifoScheduler));
    assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));
    assert_eq!(trace_digest(d.sim.trace()), 0x42ce_873a_7a5b_8ce9);
}

/// Records messages in arrival order — lets tests observe the schedule.
#[derive(Default)]
struct Recorder {
    seen: Vec<u32>,
}
impl Actor for Recorder {
    type Msg = u32;
    fn on_message(&mut self, _from: ActorId, msg: u32, _ctx: &mut Ctx<'_, u32>) {
        self.seen.push(msg);
    }
}

/// `k` simultaneous external arrivals at one actor have `k!` observable
/// orders; the explorer must visit each exactly once.
#[test]
fn explorer_visits_all_permutations_of_coincident_arrivals() {
    for (k, expect) in [(2usize, 2u64), (3, 6), (4, 24)] {
        let mut ex = Explorer::new(ExploreBounds::default());
        let mut orders: BTreeSet<Vec<u32>> = BTreeSet::new();
        loop {
            let mut sim = ActorSim::new(7);
            let a = sim.add_actor(Recorder::default());
            for m in 0..k {
                sim.inject(a, m as u32, SimDuration::from_units(1.0));
            }
            sim.set_scheduler(Box::new(ex.begin_run()));
            assert!(sim.run_to_quiescence_bounded(1_000));
            orders.insert(sim.actor::<Recorder>(a).unwrap().seen.clone());
            if !ex.advance() {
                break;
            }
        }
        assert_eq!(ex.schedules_run(), expect, "k = {k}");
        assert_eq!(orders.len() as u64, expect, "k = {k}");
        assert!(!ex.truncated());
    }
}

/// Partial-order reduction: coincident arrivals at *distinct* actors
/// commute, so one schedule is enough. Two coincident arrivals at each of
/// two actors branch per-actor: 2! x 2! = 4 schedules, not 4! = 24.
#[test]
fn partial_order_reduction_prunes_cross_actor_orderings() {
    // One message per actor: no contention anywhere -> single schedule.
    let mut ex = Explorer::new(ExploreBounds::default());
    loop {
        let mut sim = ActorSim::new(7);
        for m in 0..4u32 {
            let a = sim.add_actor(Recorder::default());
            sim.inject(a, m, SimDuration::from_units(1.0));
        }
        sim.set_scheduler(Box::new(ex.begin_run()));
        assert!(sim.run_to_quiescence_bounded(1_000));
        if !ex.advance() {
            break;
        }
    }
    assert_eq!(ex.schedules_run(), 1);

    // Two contended pairs: the product of per-actor orders.
    let mut ex = Explorer::new(ExploreBounds::default());
    let mut states: BTreeSet<(Vec<u32>, Vec<u32>)> = BTreeSet::new();
    loop {
        let mut sim = ActorSim::new(7);
        let a = sim.add_actor(Recorder::default());
        let b = sim.add_actor(Recorder::default());
        for m in 0..2u32 {
            sim.inject(a, m, SimDuration::from_units(1.0));
            sim.inject(b, 10 + m, SimDuration::from_units(1.0));
        }
        sim.set_scheduler(Box::new(ex.begin_run()));
        assert!(sim.run_to_quiescence_bounded(1_000));
        states.insert((
            sim.actor::<Recorder>(a).unwrap().seen.clone(),
            sim.actor::<Recorder>(b).unwrap().seen.clone(),
        ));
        if !ex.advance() {
            break;
        }
    }
    assert_eq!(ex.schedules_run(), 4);
    assert_eq!(states.len(), 4);
}

/// A pinger that fires one ping at its peer on startup; the peer
/// (`PongServer`) acks every ping back to its sender.
struct Pinger {
    peer: ActorId,
    acked: bool,
}
impl Actor for Pinger {
    type Msg = u32;
    fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
        ctx.send(self.peer, ctx.me().0 as u32, SimDuration::from_units(1.0));
    }
    fn on_message(&mut self, _from: ActorId, _msg: u32, _ctx: &mut Ctx<'_, u32>) {
        self.acked = true;
    }
}
#[derive(Default)]
struct PongServer {
    order: Vec<u32>,
}
impl Actor for PongServer {
    type Msg = u32;
    fn on_message(&mut self, from: ActorId, msg: u32, ctx: &mut Ctx<'_, u32>) {
        self.order.push(msg);
        ctx.send(from, msg, SimDuration::from_units(1.0));
    }
}

/// Ping/ack harness: `k` pingers ping one server at the same instant. The
/// pings contend (k! orders at the server); each ack returns on its own
/// lane to its own pinger, so acks add no decision points. Exactly k!
/// schedules, every pinger acked in all of them.
#[test]
fn ping_ack_harness_has_exactly_factorial_schedules() {
    for (k, expect) in [(2usize, 2u64), (3, 6)] {
        let mut ex = Explorer::new(ExploreBounds::default());
        let mut orders: BTreeSet<Vec<u32>> = BTreeSet::new();
        loop {
            let mut sim = ActorSim::new(11);
            let server = sim.add_actor(PongServer::default());
            let pingers: Vec<ActorId> = (0..k)
                .map(|_| {
                    sim.add_actor(Pinger {
                        peer: server,
                        acked: false,
                    })
                })
                .collect();
            sim.set_scheduler(Box::new(ex.begin_run()));
            assert!(sim.run_to_quiescence_bounded(1_000));
            for &p in &pingers {
                assert!(sim.actor::<Pinger>(p).unwrap().acked);
            }
            orders.insert(sim.actor::<PongServer>(server).unwrap().order.clone());
            if !ex.advance() {
                break;
            }
        }
        assert_eq!(ex.schedules_run(), expect, "k = {k}");
        assert_eq!(orders.len() as u64, expect, "k = {k}");
    }
}

/// The acceptance floor for the model checker: the 3-server System-1
/// scenario with one crash point must enumerate >= 500 distinct
/// interleavings, all clean. (The CI `explore` job runs the same scenario
/// unbounded in release mode and exhausts the full space — 8640 schedules
/// at the pinned seed; this test caps the budget to stay fast in debug.)
#[test]
fn s1_crash_exploration_meets_acceptance_floor() {
    let bounds = ExploreBounds {
        max_schedules: 1_000,
        ..lems_check::explore::default_bounds()
    };
    let o = lems_check::explore::s1_crash(3, bounds);
    assert!(
        o.schedules >= 500,
        "only {} schedules explored",
        o.schedules
    );
    assert_eq!(
        o.distinct_outcomes as u64, o.schedules,
        "every schedule must reach a distinct terminal state here"
    );
    assert!(
        o.is_clean(),
        "counterexample: {:?}",
        o.counterexample
            .as_ref()
            .map(|c| (c.schedule.to_string(), c.violations.clone()))
    );
}

/// A schedule recorded by the seeded fuzzer replays byte-identically.
#[test]
fn random_schedule_replays_byte_identically() {
    fn run(sched: Box<dyn lems_sim::sched::Scheduler>) -> (Vec<u32>, u64) {
        let mut sim = ActorSim::new(5).with_trace(usize::MAX);
        let a = sim.add_actor(Recorder::default());
        for m in 0..5u32 {
            sim.inject(a, m, SimDuration::from_units(1.0));
        }
        sim.set_scheduler(sched);
        assert!(sim.run_to_quiescence_bounded(1_000));
        let seen = sim.actor::<Recorder>(a).unwrap().seen.clone();
        (seen, trace_digest(sim.trace()))
    }

    let fuzz = RandomScheduler::new(99);
    let log = fuzz.schedule_log();
    let (seen_a, digest_a) = run(Box::new(fuzz));
    let recorded = log.schedule();
    assert!(!recorded.0.is_empty(), "coincident arrivals must branch");
    let (seen_b, digest_b) = run(Box::new(ReplayScheduler::new(recorded)));
    assert_eq!(seen_a, seen_b);
    assert_eq!(digest_a, digest_b);

    // Now record a schedule explicitly through the explorer and replay it.
    let mut ex = Explorer::new(ExploreBounds::default());
    let sched = ex.begin_run();
    let (seen_first, digest_first) = run(Box::new(sched));
    let recorded = ex.finish_run();
    let (seen_replay, digest_replay) = run(Box::new(ReplayScheduler::new(recorded)));
    assert_eq!(seen_first, seen_replay);
    assert_eq!(digest_first, digest_replay);
}
