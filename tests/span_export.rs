//! Deterministic telemetry export, end to end: a seeded scenario exports
//! byte-identical JSONL on every run, the `lems-obs` inspector's audit of
//! the dump agrees with the in-process span audit, and the committed
//! golden dump (`GOLDEN_spans.jsonl`) stays parseable under the current
//! schema *and* regenerable bit-for-bit — so the exporter, the inspector,
//! and the simulator can never silently drift apart.

use lems_check::scenarios;
use lems_obs::export::{export_jsonl, RunTelemetry};
use lems_obs::inspect::Dump;

fn export(o: &scenarios::ScenarioOutcome) -> String {
    export_jsonl(&RunTelemetry {
        run: o.name,
        seed: o.seed,
        finished_at: o.finished_at,
        spans: &o.spans,
        recoveries: &o.recoveries,
        scopes: &o.scopes,
        store: &o.store,
        profile: &o.profile,
    })
    .expect("scenario telemetry must export")
}

/// The acceptance criterion: same seed ⇒ byte-identical bytes, and the
/// dump parses and audits clean on its own (no access to the run).
#[test]
fn seeded_export_is_byte_identical_across_runs() {
    let a = export(&scenarios::chaos_lossy(3));
    let b = export(&scenarios::chaos_lossy(3));
    assert_eq!(a, b, "same seed must export byte-identical JSONL");

    let dump = Dump::parse(&a).expect("dump parses");
    assert_eq!(dump.run, "chaos-lossy");
    assert_eq!(dump.seed, 3);
    assert!(!dump.spans.is_empty() && !dump.counters.is_empty());
    let report = dump.audit(true);
    assert!(report.is_clean(), "{:?}", report.violations);
}

/// The exported evidence supports the same verdict as the live run: the
/// inspector-side span audit reproduces the in-process report exactly.
#[test]
fn exported_audit_matches_in_process_audit() {
    let o = scenarios::chaos_partition(7);
    assert!(o.is_clean(), "{:?}", o.violation_lines());
    let dump = Dump::parse(&export(&o)).expect("dump parses");
    let report = dump.audit(true);
    assert!(report.is_clean(), "{:?}", report.violations);
    assert_eq!(report.opened, o.span_report.opened);
    assert_eq!(report.retrieved, o.span_report.retrieved);
    assert_eq!(report.bounced, o.span_report.bounced);
    assert_eq!(report.checks_done, o.span_report.checks_done);
    assert_eq!(report.retransmits, o.span_report.retransmits);
}

/// Golden-schema gate (mirrors `bench_schema.rs`): the committed dump
/// must parse under the current schema version, audit clean, and be
/// exactly what the current code regenerates for the same seed.
#[test]
fn committed_golden_dump_is_current_and_regenerable() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/GOLDEN_spans.jsonl");
    let committed = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let dump = Dump::parse(&committed).expect("golden dump must parse with the current schema");
    assert_eq!(dump.run, "steady");
    assert!(dump.audit(true).is_clean());

    let fresh = export(&scenarios::steady_exchange(3));
    assert_eq!(
        fresh, committed,
        "schema or telemetry drift: regenerate with \
         `cargo run -p lems-check -- audit steady --trace-out GOLDEN_spans.jsonl`"
    );
}

/// Golden gate for the crash/recovery export: the committed
/// `durable-torn-tail` dump carries the schema-v2 `Recovery` line (replay
/// counts, torn bytes, zero loss) and is regenerable bit-for-bit.
#[test]
fn committed_recovery_dump_is_current_and_regenerable() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/GOLDEN_spans_recovery.jsonl");
    let committed = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let dump = Dump::parse(&committed).expect("golden dump must parse with the current schema");
    assert_eq!(dump.run, "durable-torn-tail");
    assert!(dump.audit(true).is_clean());
    assert_eq!(dump.recoveries.len(), 1, "one crash, one recovery line");
    let r = &dump.recoveries[0];
    assert_eq!(r.backend, "wal");
    assert!(r.replayed_records > 0);
    assert!(
        r.torn_bytes > 0,
        "the torn tail must be visible as evidence"
    );
    assert_eq!(r.lost_messages, 0, "acked deposits survive the torn tail");

    let fresh = export(&scenarios::durable_torn_tail(3));
    assert_eq!(
        fresh, committed,
        "schema or telemetry drift: regenerate with \
         `cargo run -p lems-check -- audit durable-torn-tail --trace-out \
         GOLDEN_spans_recovery.jsonl`"
    );
}

/// Golden gate for the profiler export: the committed `chaos-partition`
/// dump carries schema-v3 `Profile` lines (dispatch attribution for both
/// actor kinds plus queue aggregates) and is regenerable bit-for-bit —
/// so the profiler's sample set can never drift silently.
#[test]
fn committed_profile_dump_is_current_and_regenerable() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/GOLDEN_profile.jsonl");
    let committed = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let dump = Dump::parse(&committed).expect("golden dump must parse with the current schema");
    assert_eq!(dump.run, "chaos-partition");
    assert!(dump.audit(true).is_clean());
    assert!(
        !dump.profile.is_empty(),
        "the profiler must have exported samples"
    );
    for cell in ["server/deliver", "host/deliver"] {
        assert!(
            dump.profile
                .iter()
                .any(|p| p.scope == "dispatch" && p.name == cell),
            "expected a dispatch attribution cell named {cell}"
        );
    }
    assert!(
        dump.profile.iter().any(|p| p.scope == "queue"),
        "expected calendar-queue aggregate samples"
    );
    assert!(
        dump.profile.iter().all(|p| p.scope != "wall"),
        "wall-clock readings live in the side channel, never in the export"
    );

    let fresh = export(&scenarios::chaos_partition(3));
    assert_eq!(
        fresh, committed,
        "schema or telemetry drift: regenerate with \
         `cargo run -p lems-check -- audit chaos-partition --trace-out \
         GOLDEN_profile.jsonl`"
    );
}
