//! Integration: the trace auditor's conservation laws hold on full
//! System-1 deployments, including under injected server failures — the
//! tier-1 wiring of `lems-check`'s dynamic layer.
//!
//! The scenarios live in `lems_check::scenarios` so the same runs are
//! reproducible from the CLI: `cargo run -p lems-check -- audit`.

use lems::net::generators::fig1;
use lems::sim::time::SimTime;
use lems::syntax::{Deployment, DeploymentConfig, ServerFailurePlan};
use lems_check::audit::{audit_deployment, audit_trace};
use lems_check::scenarios;

/// Every scenario here quiesces far below this; exhausting it means a
/// stuck retry loop, which must fail the test rather than hang it.
const EVENT_BUDGET: u64 = 2_000_000;

#[test]
fn steady_scenario_conserves_every_message() {
    for seed in [1, 4, 9] {
        let o = scenarios::steady_exchange(seed);
        assert!(o.is_clean(), "seed {seed}: {:?}", o.violation_lines());
        assert_eq!(o.retrieved, o.submitted - o.bounced, "seed {seed}");
        // Conservation at the stream level: sends = delivers + drops.
        assert_eq!(o.trace.sends, o.trace.delivers + o.trace.drops);
    }
}

#[test]
fn failover_scenario_conserves_through_crash_and_recovery() {
    for seed in [1, 4, 9] {
        let o = scenarios::primary_outage_failover(seed);
        assert!(o.is_clean(), "seed {seed}: {:?}", o.violation_lines());
        assert_eq!(o.trace.crashes, 1, "seed {seed}");
        assert_eq!(o.trace.recoveries, 1, "seed {seed}");
        assert_eq!(o.retrieved, o.submitted - o.bounced, "seed {seed}");
    }
}

#[test]
fn random_failure_scenario_conserves_across_seeds() {
    for seed in [2, 7] {
        let o = scenarios::random_failures(seed);
        assert!(o.is_clean(), "seed {seed}: {:?}", o.violation_lines());
        assert_eq!(o.trace.crashes, o.trace.recoveries, "seed {seed}");
    }
}

/// The actor-level failure drill from `examples/failure_drill.rs`,
/// audited directly (not via the scenarios module): deposits land while
/// the primary is down, and GetMail must still drain everything once it
/// recovers — no delivered message may be stranded.
#[test]
fn getmail_under_outage_strands_nothing() {
    let f = fig1();
    let mut d = Deployment::build(
        &f.topology,
        &[2, 2, 2, 2, 2, 2],
        &DeploymentConfig {
            seed: 5,
            ..DeploymentConfig::default()
        },
    );
    d.sim.enable_trace(usize::MAX);

    let mut plan = ServerFailurePlan::new();
    plan.add(
        f.servers[0],
        SimTime::from_units(10.0),
        SimTime::from_units(30.0),
    );
    d.apply_server_failures(&plan);

    let names = d.user_names();
    let t = SimTime::from_units;
    // Deposits before, during, and after the outage (cf. the drill's
    // t=5 / t=12 / t=20 deposits), against user 0.
    d.send_at(t(5.0), &names[1], &names[0]);
    d.send_at(t(12.0), &names[2], &names[0]);
    d.send_at(t(20.0), &names[3], &names[0]);
    // Checks during the outage and after recovery (drill's 15/35/40).
    d.check_at(t(15.0), &names[0]);
    d.check_at(t(35.0), &names[0]);
    d.check_at(t(60.0), &names[0]);
    assert!(d.sim.run_to_quiescence_bounded(EVENT_BUDGET));

    let trace_report = audit_trace(d.sim.trace());
    assert!(trace_report.is_clean(), "{trace_report}");
    assert_eq!(trace_report.crashes, 1);
    assert_eq!(trace_report.recoveries, 1);

    let domain = audit_deployment(&d, true);
    assert!(domain.is_empty(), "{domain:?}");
    let st = d.stats.borrow();
    assert_eq!(st.retrieved, 3, "all three deposits must be drained");
    assert_eq!(st.outstanding(), 0);
}
