//! Offline vendored stand-in for `criterion`.
//!
//! Keeps the workspace's `harness = false` benches compiling and runnable
//! without network access. Each benchmark runs a fixed number of timed
//! iterations and prints a mean per-iteration time; there are no statistics,
//! outlier analysis, plots, or baseline comparisons.

use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, which is what this is).
pub use std::hint::black_box;

const ITERS: u64 = 100;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Per-iteration timing driver handed to bench closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        self.total = start.elapsed();
        self.iters = ITERS;
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        let per_iter = b.total / (b.iters as u32);
        println!("bench {label:<48} {per_iter:>12.2?}/iter ({} iters)", b.iters);
    } else {
        println!("bench {label:<48} (no measurement)");
    }
}

/// Top-level driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, |b| f(b));
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Called by `criterion_main!`; report output is printed eagerly, so
    /// this is a no-op.
    pub fn final_summary(&mut self) {}
}

/// Group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.id), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Mirrors `criterion_group!` (both the simple and the `name/config/targets`
/// forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
