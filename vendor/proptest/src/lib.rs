//! Offline vendored stand-in for `proptest`.
//!
//! The build environment has no network access, so the real proptest crate
//! cannot be fetched. This crate supports the subset of the proptest API the
//! workspace uses: the `proptest!` macro over functions with `arg in
//! strategy` bindings, integer/float range strategies, tuple strategies,
//! `proptest::collection::vec`, simple `"[class]{m,n}"` string-regex
//! strategies, and the `prop_assert*` macros.
//!
//! Differences from real proptest: cases are sampled from a deterministic
//! per-test RNG (seeded from the test's module path and name, so failures
//! reproduce exactly), there is no shrinking, and a fixed number of cases
//! ([`NUM_CASES`]) runs per test.

/// Number of sampled cases per property test.
pub const NUM_CASES: usize = 64;

pub mod test_runner {
    /// Deterministic SplitMix64 stream used to sample strategy values.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from an arbitrary label (test path) and case
        /// index, via FNV-1a.
        pub fn for_case(label: &str, case: usize) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes().chain(case.to_le_bytes()) {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw below `span` (`span > 0`).
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            let threshold = span.wrapping_neg() % span;
            loop {
                let m = (self.next_u64() as u128) * (span as u128);
                if (m as u64) >= threshold {
                    return (m >> 64) as u64;
                }
            }
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values, mirroring `proptest::strategy::Strategy`
    /// (without shrinking).
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Constant strategy, mirroring `proptest::strategy::Just`.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        (self.start as i128 + rng.below(span) as i128) as $t
                    }
                }
                impl Strategy for RangeInclusive<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range strategy");
                        let span = (hi as i128 - lo as i128) as u64;
                        if span == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        (lo as i128 + rng.below(span + 1) as i128) as $t
                    }
                }
            )*
        };
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),* $(,)?) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let v = self.start + (rng.unit() as $t) * (self.end - self.start);
                        if v >= self.end { self.start } else { v }
                    }
                }
            )*
        };
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+)),+ $(,)?) => {
            $(
                impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                    type Value = ($($s::Value,)+);
                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        ($(self.$n.generate(rng),)+)
                    }
                }
            )*
        };
    }

    impl_tuple_strategy!(
        (0 A, 1 B),
        (0 A, 1 B, 2 C),
        (0 A, 1 B, 2 C, 3 D),
        (0 A, 1 B, 2 C, 3 D, 4 E),
    );

    /// `&str` is a simple-regex string strategy: a sequence of character
    /// classes / literal characters, each optionally repeated `{m,n}` or
    /// `{n}`. Covers patterns like `"[a-z0-9_-]{1,8}"`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    impl Strategy for String {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a character class or a literal character.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
                let mut alpha = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                        for c in lo..=hi {
                            alpha.push(c);
                        }
                        j += 3;
                    } else {
                        alpha.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                alpha
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            assert!(!alphabet.is_empty(), "empty class in pattern {pattern:?}");
            // Optional repetition.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated repeat in pattern {pattern:?}"));
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("bad repeat bound"),
                        n.trim().parse::<usize>().expect("bad repeat bound"),
                    ),
                    None => {
                        let n = spec.trim().parse::<usize>().expect("bad repeat bound");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let len = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..len {
                let pick = rng.below(alphabet.len() as u64) as usize;
                out.push(alphabet[pick]);
            }
        }
        out
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Size specification for collection strategies, mirroring
    /// `proptest::collection::SizeRange`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_incl: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_incl: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_incl: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_incl - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Runs property tests: each `fn name(arg in strategy, ...) { body }` becomes
/// a `#[test]` looping over [`NUM_CASES`] deterministic samples.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __label = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..$crate::NUM_CASES {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__label, __case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// Mirrors `prop_assert!`: fails the test (panics; no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Mirrors `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Mirrors `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Mirrors `prop_assume!`: without case regeneration, an unmet assumption
/// just skips the remainder of the current case set.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::collection;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("t", 0);
        for _ in 0..500 {
            let v = (3u64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-1.0f64..1.0).generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_respects_size() {
        let mut rng = TestRng::for_case("t", 1);
        let s = collection::vec(0u32..5, 2..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::for_case("t", 2);
        for _ in 0..200 {
            let s = "[a-z0-9_-]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-'));
        }
        let fixed = "[A-C]{4}".generate(&mut rng);
        assert_eq!(fixed.len(), 4);
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0u32..10, v in collection::vec(0u8..3, 1..5)) {
            prop_assert!(x < 10);
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }
}
