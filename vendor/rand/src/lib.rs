//! Offline vendored stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment for this repository has no network access, so the
//! real `rand` crate cannot be fetched. This crate re-implements exactly the
//! slice of the 0.8 API that the workspace uses (`StdRng`, `SeedableRng`,
//! `RngCore`, `Rng::gen`/`gen_range`, and the `distributions::uniform`
//! traits) on top of a deterministic xoshiro256++ generator seeded via
//! SplitMix64. Determinism across platforms is the only hard requirement for
//! the simulator; statistical quality of xoshiro256++ is more than adequate
//! for workload generation.

use std::fmt;

/// Error type mirroring `rand::Error`. The vendored generators are
/// infallible, so this is only ever constructed by downstream code.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rand error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Core random-number trait, mirroring `rand_core::RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable generators, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into the full seed buffer,
        // as rand_core does.
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Convenience extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the `Standard` distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Uniform sample from a range (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        assert!(!range.is_empty(), "cannot sample from an empty range");
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.gen::<f64>() < p
        }
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    ///
    /// Not the same stream as the real `StdRng` (ChaCha12), but the workspace
    /// only requires cross-run determinism, which this provides.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }
}

pub mod distributions {
    use super::RngCore;

    /// Mirrors `rand::distributions::Distribution`.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Mirrors `rand::distributions::Standard`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty => $via:ident),* $(,)?) => {
            $(
                impl Distribution<$t> for Standard {
                    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                        rng.$via() as $t
                    }
                }
            )*
        };
    }

    impl_standard_int!(
        u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
        usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
        i64 => next_u64, isize => next_u64, u128 => next_u64, i128 => next_u64,
    );

    pub mod uniform {
        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Types that can be sampled uniformly from a range.
        ///
        /// Unlike the real rand crate there is no separate `UniformSampler`;
        /// the bound-sampling logic lives directly on the trait.
        pub trait SampleUniform: PartialOrd + Copy {
            /// Uniform sample from `[low, high)`. Caller guarantees `low < high`.
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
            /// Uniform sample from `[low, high]`. Caller guarantees `low <= high`.
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        }

        /// Ranges a uniform value can be drawn from, mirroring
        /// `rand::distributions::uniform::SampleRange`.
        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
            fn is_empty(&self) -> bool;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                assert!(self.start < self.end, "cannot sample from an empty range");
                T::sample_half_open(rng, self.start, self.end)
            }
            fn is_empty(&self) -> bool {
                !(self.start < self.end)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (low, high) = self.into_inner();
                assert!(low <= high, "cannot sample from an empty range");
                T::sample_inclusive(rng, low, high)
            }
            fn is_empty(&self) -> bool {
                !(self.start() <= self.end())
            }
        }

        /// Draws a u64 below `span` without modulo bias (Lemire's method,
        /// with a widening multiply and threshold rejection).
        fn u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
            debug_assert!(span > 0);
            let threshold = span.wrapping_neg() % span;
            loop {
                let m = (rng.next_u64() as u128) * (span as u128);
                if (m as u64) >= threshold {
                    return (m >> 64) as u64;
                }
            }
        }

        macro_rules! impl_uniform_uint {
            ($($t:ty),* $(,)?) => {
                $(
                    impl SampleUniform for $t {
                        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                            let span = (high - low) as u64;
                            low + (u64_below(rng, span) as $t)
                        }
                        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                            let span = (high - low) as u64;
                            if span == u64::MAX {
                                return rng.next_u64() as $t;
                            }
                            low + (u64_below(rng, span + 1) as $t)
                        }
                    }
                )*
            };
        }

        impl_uniform_uint!(u8, u16, u32, u64, usize);

        macro_rules! impl_uniform_int {
            ($($t:ty => $u:ty),* $(,)?) => {
                $(
                    impl SampleUniform for $t {
                        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                            let span = (high as $u).wrapping_sub(low as $u) as u64;
                            low.wrapping_add(u64_below(rng, span) as $t)
                        }
                        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                            let span = (high as $u).wrapping_sub(low as $u) as u64;
                            if span == u64::MAX {
                                return rng.next_u64() as $t;
                            }
                            low.wrapping_add(u64_below(rng, span + 1) as $t)
                        }
                    }
                )*
            };
        }

        impl_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

        macro_rules! impl_uniform_float {
            ($($t:ty),* $(,)?) => {
                $(
                    impl SampleUniform for $t {
                        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                            let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                            let v = low + unit * (high - low);
                            // Guard against rounding up to the excluded bound.
                            if v >= high { low } else { v }
                        }
                        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                            let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                            low + unit * (high - low)
                        }
                    }
                )*
            };
        }

        impl_uniform_float!(f32, f64);
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::uniform::SampleRange;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_uniform_ish() {
        let mut r = StdRng::seed_from_u64(9);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn empty_range_reports_empty() {
        assert!((5u32..5).is_empty());
        assert!(!(5u32..6).is_empty());
    }
}
