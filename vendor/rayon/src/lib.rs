//! Offline vendored stand-in for the `rayon` crate (1.x API subset).
//!
//! The build environment for this repository has no network access, so the
//! real `rayon` crate cannot be fetched. This crate re-implements exactly
//! the slice of the 1.x API the workspace uses — `par_iter()` on slices and
//! `Vec`s, `.map(..)`, `.with_min_len(..)`, `.collect::<Vec<_>>()`, plus
//! [`current_num_threads`] and [`join`] — on top of `std::thread::scope`.
//!
//! Semantics the workspace relies on and this shim guarantees:
//!
//! * **Order preservation** — `par_iter().map(f).collect::<Vec<_>>()`
//!   returns results in input order, exactly like rayon's indexed
//!   parallel iterators.
//! * **Pure fan-out** — the mapped closure runs once per item; no work
//!   stealing means no re-execution and no interleaving surprises.
//! * **Thread-count independence** — output is a pure function of the
//!   input regardless of how many worker threads run the chunks, so
//!   callers that need determinism get it by construction.
//!
//! Worker count defaults to [`std::thread::available_parallelism`] and can
//! be pinned with the `RAYON_NUM_THREADS` environment variable, mirroring
//! the real crate. With one worker (or one item) everything runs inline on
//! the calling thread — no spawn overhead on single-core machines.

use std::thread;

/// Everything the workspace imports from `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

/// Number of worker threads a parallel operation will use at most:
/// `RAYON_NUM_THREADS` when set to a positive integer, otherwise the
/// machine's available parallelism (1 when that cannot be determined).
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        (ra, rb)
    })
}

/// Entry point: `.par_iter()` on slices and `Vec`s.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by the parallel iterator.
    type Item: 'a;
    /// Creates a parallel iterator over references to the elements.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element through `f` (applied on worker threads).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Accepted for API compatibility; chunking is already coarse (one
    /// contiguous chunk per worker), so the hint is a no-op.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

/// The result of [`ParIter::map`], ready to collect.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Collects mapped results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(run_map(self.items, &self.f))
    }
}

/// Maps `items` through `f` across up to [`current_num_threads`] scoped
/// threads (one contiguous chunk each), preserving input order.
fn run_map<'a, T, R, F>(items: &'a [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let workers = current_num_threads().min(items.len().max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), xs.len());
        for (i, d) in doubled.iter().enumerate() {
            assert_eq!(*d, i as u64 * 2);
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_owned() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn min_len_hint_is_accepted() {
        let xs = [1u32, 2, 3];
        let out: Vec<u32> = xs.par_iter().with_min_len(2).map(|&x| x).collect();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
