//! The self-describing data model behind the vendored serde.
//!
//! All (de)serialisation in this stand-in flows through [`Value`]:
//! `Serialize` impls build a `Value` tree, `Deserialize` impls consume one.
//! `serde_json` prints/parses the tree as JSON text.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

use crate::de::{self, Deserialize, Deserializer};
use crate::ser::{self, Serialize, Serializer};

/// A self-describing serialised value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Key-value pairs in insertion order. Keys are arbitrary values; JSON
    /// printing emits an object when all keys are strings and an array of
    /// `[key, value]` pairs otherwise.
    Map(Vec<(Value, Value)>),
}

impl Value {
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::UInt(_) => "uint",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Error raised while building or consuming a [`Value`] tree.
#[derive(Debug, Clone)]
pub struct ValueError(pub String);

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

impl ser::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

impl de::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

/// The [`Serializer`] that produces a [`Value`] tree.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_value(self, v: Value) -> Result<Value, ValueError> {
        Ok(v)
    }
}

/// The [`Deserializer`] that consumes a [`Value`] tree.
pub struct ValueDeserializer {
    value: Value,
}

impl ValueDeserializer {
    pub fn new(value: Value) -> Self {
        ValueDeserializer { value }
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;

    fn deserialize_value(self) -> Result<Value, ValueError> {
        Ok(self.value)
    }
}

/// Serialises any `Serialize` type into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Result<Value, ValueError> {
    v.serialize(ValueSerializer)
}

/// Reconstructs a `Deserialize` type from a [`Value`] tree.
pub fn from_value<T: DeserializeFromValue>(v: Value) -> Result<T, ValueError> {
    T::deserialize(ValueDeserializer::new(v))
}

/// Alias bound: anything deserialisable from an owned `Value`.
pub trait DeserializeFromValue: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeFromValue for T {}

fn unexpected(expected: &str, got: &Value) -> ValueError {
    ValueError(format!("expected {expected}, found {}", got.type_name()))
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! ser_via {
    ($($t:ty => $method:ident as $cast:ty),* $(,)?) => {
        $(
            impl Serialize for $t {
                fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                    s.$method(*self as $cast)
                }
            }
        )*
    };
}

ser_via!(
    i8 => serialize_i64 as i64, i16 => serialize_i64 as i64,
    i32 => serialize_i64 as i64, i64 => serialize_i64 as i64,
    isize => serialize_i64 as i64,
    u8 => serialize_u64 as u64, u16 => serialize_u64 as u64,
    u32 => serialize_u64 as u64, u64 => serialize_u64 as u64,
    usize => serialize_u64 as u64,
    f32 => serialize_f64 as f64, f64 => serialize_f64 as f64,
);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bool(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.to_string())
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Null)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_value(Value::Null),
            Some(v) => {
                let inner = to_value(v).map_err(ser_err::<S>)?;
                s.serialize_value(inner)
            }
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

fn ser_err<S: Serializer>(e: ValueError) -> S::Error {
    <S::Error as ser::Error>::custom(e)
}

fn ser_seq<'a, S, T, I>(iter: I, s: S) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    T: Serialize + 'a,
    I: IntoIterator<Item = &'a T>,
{
    let mut seq = Vec::new();
    for item in iter {
        seq.push(to_value(item).map_err(ser_err::<S>)?);
    }
    s.serialize_value(Value::Seq(seq))
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        ser_seq(self.iter(), s)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        ser_seq(self.iter(), s)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        ser_seq(self.iter(), s)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        ser_seq(self.iter(), s)
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        ser_seq(self.iter(), s)
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        ser_seq(self.iter(), s)
    }
}

fn ser_map<'a, S, K, V, I>(iter: I, s: S) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: IntoIterator<Item = (&'a K, &'a V)>,
{
    let mut map = Vec::new();
    for (k, v) in iter {
        map.push((to_value(k).map_err(ser_err::<S>)?, to_value(v).map_err(ser_err::<S>)?));
    }
    s.serialize_value(Value::Map(map))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        ser_map(self.iter(), s)
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        ser_map(self.iter(), s)
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {
        $(
            impl<$($t: Serialize),+> Serialize for ($($t,)+) {
                fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                    let seq = vec![$(to_value(&self.$n).map_err(ser_err::<S>)?),+];
                    s.serialize_value(Value::Seq(seq))
                }
            }
        )*
    };
}

ser_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
);

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

fn de_err<'de, D: Deserializer<'de>>(e: ValueError) -> D::Error {
    <D::Error as de::Error>::custom(e)
}

macro_rules! de_int {
    ($($t:ty),* $(,)?) => {
        $(
            impl<'de> Deserialize<'de> for $t {
                fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                    let v = d.deserialize_value()?;
                    match v {
                        Value::Int(i) => <$t>::try_from(i)
                            .map_err(|_| de::Error::custom(format!("integer {i} out of range"))),
                        Value::UInt(u) => <$t>::try_from(u)
                            .map_err(|_| de::Error::custom(format!("integer {u} out of range"))),
                        other => Err(de::Error::custom(unexpected("integer", &other))),
                    }
                }
            }
        )*
    };
}

de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! de_float {
    ($($t:ty),* $(,)?) => {
        $(
            impl<'de> Deserialize<'de> for $t {
                fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                    let v = d.deserialize_value()?;
                    match v {
                        Value::Float(f) => Ok(f as $t),
                        Value::Int(i) => Ok(i as $t),
                        Value::UInt(u) => Ok(u as $t),
                        other => Err(de::Error::custom(unexpected("float", &other))),
                    }
                }
            }
        )*
    };
}

de_float!(f32, f64);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(de::Error::custom(unexpected("bool", &other))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Str(s) => Ok(s),
            other => Err(de::Error::custom(unexpected("string", &other))),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(de::Error::custom(unexpected("single-char string", &other))),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Null => Ok(()),
            other => Err(de::Error::custom(unexpected("null", &other))),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Null => Ok(None),
            v => from_value(v).map(Some).map_err(de_err::<D>),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            v => from_value(v).map(Box::new).map_err(de_err::<D>),
        }
    }
}

fn de_seq<'de, D: Deserializer<'de>, T: for<'a> Deserialize<'a>>(
    d: D,
) -> Result<Vec<T>, D::Error> {
    match d.deserialize_value()? {
        Value::Seq(items) => items
            .into_iter()
            .map(|v| from_value(v).map_err(de_err::<D>))
            .collect(),
        other => Err(de::Error::custom(unexpected("sequence", &other))),
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        de_seq(d)
    }
}

impl<'de, T: for<'a> Deserialize<'a> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(de_seq(d)?.into_iter().collect())
    }
}

impl<'de, T: for<'a> Deserialize<'a> + Eq + Hash> Deserialize<'de> for HashSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(de_seq(d)?.into_iter().collect())
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for std::collections::VecDeque<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(de_seq(d)?.into_iter().collect())
    }
}

/// Accepts either a map or a sequence of `[key, value]` pairs (the printed
/// form for maps with non-string keys).
fn de_pairs<'de, D, K, V>(d: D) -> Result<Vec<(K, V)>, D::Error>
where
    D: Deserializer<'de>,
    K: for<'a> Deserialize<'a>,
    V: for<'a> Deserialize<'a>,
{
    let pairs: Vec<(Value, Value)> = match d.deserialize_value()? {
        Value::Map(pairs) => pairs,
        Value::Seq(items) => items
            .into_iter()
            .map(|item| match item {
                Value::Seq(mut kv) if kv.len() == 2 => {
                    let v = kv.pop().unwrap();
                    let k = kv.pop().unwrap();
                    Ok((k, v))
                }
                other => Err(de::Error::custom(unexpected("[key, value] pair", &other))),
            })
            .collect::<Result<_, D::Error>>()?,
        other => return Err(de::Error::custom(unexpected("map", &other))),
    };
    pairs
        .into_iter()
        .map(|(k, v)| {
            let key = from_value(k).map_err(de_err::<D>)?;
            let val = from_value(v).map_err(de_err::<D>)?;
            Ok((key, val))
        })
        .collect()
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: for<'a> Deserialize<'a> + Ord,
    V: for<'a> Deserialize<'a>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(de_pairs(d)?.into_iter().collect())
    }
}

impl<'de, K, V> Deserialize<'de> for HashMap<K, V>
where
    K: for<'a> Deserialize<'a> + Eq + Hash,
    V: for<'a> Deserialize<'a>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(de_pairs(d)?.into_iter().collect())
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+)),+ $(,)?) => {
        $(
            impl<'de, $($t: for<'a> Deserialize<'a>),+> Deserialize<'de> for ($($t,)+) {
                fn deserialize<__D: Deserializer<'de>>(d: __D) -> Result<Self, __D::Error> {
                    match d.deserialize_value()? {
                        Value::Seq(items) if items.len() == $len => {
                            let mut it = items.into_iter();
                            Ok(($({
                                let _ = $n;
                                from_value::<$t>(it.next().unwrap()).map_err(de_err::<__D>)?
                            },)+))
                        }
                        other => Err(de::Error::custom(unexpected(
                            concat!("sequence of length ", $len), &other))),
                    }
                }
            }
        )*
    };
}

de_tuple!(
    (1; 0 A),
    (2; 0 A, 1 B),
    (3; 0 A, 1 B, 2 C),
    (4; 0 A, 1 B, 2 C, 3 D),
    (5; 0 A, 1 B, 2 C, 3 D, 4 E),
);

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.deserialize_value()
    }
}
