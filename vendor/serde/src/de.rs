//! Deserialisation traits, mirroring `serde::de`.

use std::fmt::Display;

use crate::__value::Value;

/// Error trait for deserialisers, mirroring `serde::de::Error`.
pub trait Error: Sized + std::fmt::Debug + Display {
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data format that can deserialise values.
///
/// Unlike real serde this is not visitor-driven: the single method yields a
/// self-describing [`Value`] tree which `Deserialize` impls pick apart.
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    fn deserialize_value(self) -> Result<Value, Self::Error>;
}

/// A value that can be deserialised, mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Values deserialisable without borrowing from the input, mirroring
/// `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
