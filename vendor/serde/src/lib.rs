//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no network access, so the real serde crate
//! cannot be fetched. This crate keeps the public trait names and shapes the
//! workspace relies on (`Serialize`, `Deserialize`, `Serializer`,
//! `Deserializer`, `serde::de::Error::custom`, `#[derive(Serialize,
//! Deserialize)]` with `#[serde(skip/default/with)]` attributes) but
//! simplifies the wire model: everything serialises through the
//! self-describing [`__value::Value`] tree instead of serde's
//! visitor-driven data model. `serde_json` (also vendored) prints and parses
//! that tree as real JSON, so round-trips behave like the genuine article.

pub mod ser;
pub mod de;
#[doc(hidden)]
pub mod __value;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
