//! Serialisation traits, mirroring `serde::ser`.

use std::fmt::Display;

use crate::__value::Value;

/// Error trait for serialisers, mirroring `serde::ser::Error`.
pub trait Error: Sized + std::fmt::Debug + Display {
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data format that can serialise values.
///
/// Unlike real serde this is not visitor-driven: the single required method
/// accepts a fully-built [`Value`] tree, and the scalar `serialize_*`
/// helpers (the subset of serde's API the workspace calls directly) default
/// to wrapping their argument in a `Value`.
pub trait Serializer: Sized {
    type Ok;
    type Error: Error;

    fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Bool(v))
    }
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Int(v))
    }
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::UInt(v))
    }
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Float(v))
    }
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Float(v as f64))
    }
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Str(v.to_string()))
    }
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }
}

/// A value that can be serialised, mirroring `serde::Serialize`.
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}
