//! Offline vendored stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde` crate without `syn`/`quote`: the derive input is parsed
//! by walking raw token trees, and the generated impl is assembled as a
//! string and re-parsed into a `TokenStream`.
//!
//! Supported input shapes (everything this workspace derives on):
//! - structs with named fields, tuple structs, unit structs
//! - enums with unit, tuple, and struct variants
//! - field attributes `#[serde(skip)]`, `#[serde(default)]`,
//!   `#[serde(default = "path")]`, `#[serde(with = "module")]`,
//!   `#[serde(skip_serializing_if = "path")]`
//!
//! Generics are intentionally unsupported (no derive site in the workspace
//! uses them); deriving on a generic type produces a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct FieldInfo {
    name: String,
    skip: bool,
    /// `None`: no default. `Some(None)`: bare `#[serde(default)]`.
    /// `Some(Some(path))`: `#[serde(default = "path")]`.
    default: Option<Option<String>>,
    /// `#[serde(with = "module")]` path, if any.
    with: Option<String>,
    /// `#[serde(skip_serializing_if = "path")]` predicate path, if any.
    skip_ser_if: Option<String>,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<FieldInfo>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Data {
    NamedStruct(Vec<FieldInfo>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Container {
    name: String,
    data: Data,
}

// ---------------------------------------------------------------------------
// Token-tree parsing
// ---------------------------------------------------------------------------

/// Serde field attributes gathered from the `#[serde(...)]` list.
struct ParsedAttrs {
    skip: bool,
    default: Option<Option<String>>,
    with: Option<String>,
    skip_ser_if: Option<String>,
}

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            toks: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn is_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    fn is_ident(&self, s: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == s)
    }

    /// Consumes leading `#[...]` attributes, returning parsed serde field
    /// attributes merged across all of them.
    fn take_attrs(&mut self) -> ParsedAttrs {
        let mut skip = false;
        let mut default = None;
        let mut with = None;
        let mut skip_ser_if = None;
        while self.is_punct('#') {
            self.next();
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                _ => break,
            };
            let inner: Vec<TokenTree> = group.stream().into_iter().collect();
            let is_serde =
                matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
            if !is_serde {
                continue;
            }
            let args = match inner.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
                _ => continue,
            };
            let mut it = args.into_iter().peekable();
            while let Some(tok) = it.next() {
                let key = match tok {
                    TokenTree::Ident(i) => i.to_string(),
                    _ => continue,
                };
                let mut value = None;
                if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                    it.next();
                    if let Some(TokenTree::Literal(l)) = it.next() {
                        value = Some(strip_str_literal(&l.to_string()));
                    }
                }
                match key.as_str() {
                    "skip" | "skip_serializing" | "skip_deserializing" => skip = true,
                    "default" => default = Some(value),
                    "with" => with = value,
                    "skip_serializing_if" => skip_ser_if = value,
                    _ => {}
                }
            }
        }
        ParsedAttrs {
            skip,
            default,
            with,
            skip_ser_if,
        }
    }

    /// Skips `pub`, `pub(...)`.
    fn skip_vis(&mut self) {
        if self.is_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Skips tokens until a top-level comma (angle-bracket aware) and
    /// consumes the comma if present.
    fn skip_until_comma(&mut self) {
        let mut angle: i32 = 0;
        let mut prev_dash = false;
        while let Some(tok) = self.peek() {
            if let TokenTree::Punct(p) = tok {
                let c = p.as_char();
                if c == ',' && angle == 0 {
                    self.next();
                    return;
                }
                if c == '<' {
                    angle += 1;
                } else if c == '>' {
                    // `->` in fn-pointer types must not close an angle bracket.
                    if !prev_dash {
                        angle -= 1;
                    }
                }
                prev_dash = c == '-';
            } else {
                prev_dash = false;
            }
            self.next();
        }
    }
}

fn strip_str_literal(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<FieldInfo>, String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while !c.at_end() {
        let attrs = c.take_attrs();
        c.skip_vis();
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => return Err(format!("expected field name, found `{other}`")),
            None => break,
        };
        if !c.is_punct(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        c.next();
        c.skip_until_comma();
        fields.push(FieldInfo {
            name,
            skip: attrs.skip,
            default: attrs.default,
            with: attrs.with,
            skip_ser_if: attrs.skip_ser_if,
        });
    }
    Ok(fields)
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    while !c.at_end() {
        c.take_attrs();
        c.skip_vis();
        if c.at_end() {
            break;
        }
        count += 1;
        c.skip_until_comma();
    }
    count
}

fn parse_container(input: TokenStream) -> Result<Container, String> {
    let mut c = Cursor::new(input);
    c.take_attrs();
    c.skip_vis();
    let kind = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    if c.is_punct('<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }
    match kind.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Container {
                name,
                data: Data::NamedStruct(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Container {
                name,
                data: Data::TupleStruct(count_tuple_fields(g.stream())),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Container {
                name,
                data: Data::UnitStruct,
            }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            let mut vc = Cursor::new(body);
            let mut variants = Vec::new();
            while !vc.at_end() {
                vc.take_attrs();
                let vname = match vc.next() {
                    Some(TokenTree::Ident(i)) => i.to_string(),
                    Some(other) => return Err(format!("expected variant name, found `{other}`")),
                    None => break,
                };
                let kind = match vc.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let arity = count_tuple_fields(g.stream());
                        vc.next();
                        VariantKind::Tuple(arity)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream())?;
                        vc.next();
                        VariantKind::Named(fields)
                    }
                    _ => VariantKind::Unit,
                };
                // Skip an optional `= discriminant` and the trailing comma.
                vc.skip_until_comma();
                variants.push(Variant { name: vname, kind });
            }
            Ok(Container {
                name,
                data: Data::Enum(variants),
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const SER_ERR: &str = "|__e| <__S::Error as serde::ser::Error>::custom(__e)";
const DE_ERR: &str = "|__e| <__D::Error as serde::de::Error>::custom(__e)";

/// `Value::Str("name".into())` expression.
fn str_value(name: &str) -> String {
    format!("serde::__value::Value::Str(::std::string::String::from(\"{name}\"))")
}

/// Serialize expression for one named field given an expression that
/// borrows it (e.g. `&self.foo` or `__b_foo`).
fn field_to_value(f: &FieldInfo, access: &str) -> String {
    match &f.with {
        Some(module) => format!(
            "{module}::serialize({access}, serde::__value::ValueSerializer).map_err({SER_ERR})?"
        ),
        None => format!("serde::__value::to_value({access}).map_err({SER_ERR})?"),
    }
}

/// One `__fields.push(...)` statement for a named field, wrapped in the
/// `skip_serializing_if` predicate when the field carries one. `access`
/// must be a reference expression (`&self.foo` / a `ref` binding), since
/// serde passes `&field` to the predicate.
fn named_field_push(f: &FieldInfo, access: &str) -> String {
    let push = format!(
        "__fields.push(({}, {}));\n",
        str_value(&f.name),
        field_to_value(f, access)
    );
    match &f.skip_ser_if {
        Some(pred) => format!("if !{pred}({access}) {{\n{push}}}\n"),
        None => push,
    }
}

/// Statements pushing each non-skipped named field into `__fields`.
fn named_fields_ser(fields: &[FieldInfo], access_prefix: &str) -> String {
    let mut out = String::new();
    for f in fields {
        if f.skip {
            continue;
        }
        let access = format!("{access_prefix}{}", f.name);
        out.push_str(&named_field_push(f, &access));
    }
    out
}

/// Expression producing the value of one named field during deserialisation,
/// given `__f_<name>: Option<Value>` bindings already populated.
fn named_field_de(f: &FieldInfo, ty_ctx: &str) -> String {
    let var = format!("__f_{}", f.name);
    let default_expr = match &f.default {
        Some(Some(path)) => Some(format!("{path}()")),
        Some(None) => Some("::core::default::Default::default()".to_string()),
        None => None,
    };
    if f.skip {
        // Skipped both ways: never read from the wire.
        return default_expr.unwrap_or_else(|| "::core::default::Default::default()".to_string());
    }
    let from = match &f.with {
        Some(module) => format!(
            "{module}::deserialize(serde::__value::ValueDeserializer::new(__val)).map_err({DE_ERR})?"
        ),
        None => format!("serde::__value::from_value(__val).map_err({DE_ERR})?"),
    };
    let missing = match default_expr {
        Some(d) => d,
        None => format!(
            "return ::core::result::Result::Err(<__D::Error as serde::de::Error>::custom(\
             \"missing field `{}` in {}\"))",
            f.name, ty_ctx
        ),
    };
    format!(
        "match {var} {{ ::core::option::Option::Some(__val) => {{ {from} }}, \
         ::core::option::Option::None => {{ {missing} }} }}"
    )
}

/// The field-collection loop shared by named structs and struct variants:
/// declares `__f_<name>` options, fills them from `__pairs`.
fn named_fields_collect(fields: &[FieldInfo]) -> String {
    let mut out = String::new();
    for f in fields {
        if f.skip {
            continue;
        }
        out.push_str(&format!(
            "let mut __f_{}: ::core::option::Option<serde::__value::Value> = \
             ::core::option::Option::None;\n",
            f.name
        ));
    }
    out.push_str("for (__k, __pval) in __pairs {\n");
    out.push_str("    if let serde::__value::Value::Str(__kname) = __k {\n");
    out.push_str("        match __kname.as_str() {\n");
    for f in fields {
        if f.skip {
            continue;
        }
        out.push_str(&format!(
            "            \"{0}\" => {{ __f_{0} = ::core::option::Option::Some(__pval); }}\n",
            f.name
        ));
    }
    out.push_str("            _ => {}\n        }\n    }\n}\n");
    out
}

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.data {
        Data::NamedStruct(fields) => format!(
            "let mut __fields: ::std::vec::Vec<(serde::__value::Value, serde::__value::Value)> \
             = ::std::vec::Vec::new();\n{}\
             __s.serialize_value(serde::__value::Value::Map(__fields))",
            named_fields_ser(fields, "&self.")
        ),
        Data::TupleStruct(1) => {
            // Newtype structs serialise transparently, like serde.
            format!(
                "let __inner = serde::__value::to_value(&self.0).map_err({SER_ERR})?;\n\
                 __s.serialize_value(__inner)"
            )
        }
        Data::TupleStruct(n) => {
            let mut items = String::new();
            for i in 0..*n {
                items.push_str(&format!(
                    "serde::__value::to_value(&self.{i}).map_err({SER_ERR})?, "
                ));
            }
            format!(
                "__s.serialize_value(serde::__value::Value::Seq(::std::vec![{items}]))"
            )
        }
        Data::UnitStruct => "__s.serialize_value(serde::__value::Value::Null)".to_string(),
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                let tag = str_value(vname);
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => __s.serialize_value({tag}),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{vname}(__x0) => {{\n\
                             let __inner = serde::__value::to_value(__x0).map_err({SER_ERR})?;\n\
                             __s.serialize_value(serde::__value::Value::Map(\
                             ::std::vec![({tag}, __inner)]))\n}}\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
                        let mut items = String::new();
                        for b in &binds {
                            items.push_str(&format!(
                                "serde::__value::to_value({b}).map_err({SER_ERR})?, "
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{\n\
                             __s.serialize_value(serde::__value::Value::Map(::std::vec![({tag}, \
                             serde::__value::Value::Seq(::std::vec![{items}]))]))\n}}\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| format!("{0}: __b_{0}", f.name))
                            .collect();
                        let pushes = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| named_field_push(f, &format!("__b_{}", f.name)))
                            .collect::<String>();
                        let binds = if binds.is_empty() {
                            String::new()
                        } else {
                            format!("{}, ", binds.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds}.. }} => {{\n\
                             let mut __fields: ::std::vec::Vec<(serde::__value::Value, \
                             serde::__value::Value)> = ::std::vec::Vec::new();\n\
                             {pushes}\
                             __s.serialize_value(serde::__value::Value::Map(::std::vec![({tag}, \
                             serde::__value::Value::Map(__fields))]))\n}}\n",
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::ser::Serialize for {name} {{\n\
         fn serialize<__S: serde::ser::Serializer>(&self, __s: __S) \
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.data {
        Data::NamedStruct(fields) => {
            let collect = named_fields_collect(fields);
            let ctor = fields
                .iter()
                .map(|f| format!("{}: {},\n", f.name, named_field_de(f, name)))
                .collect::<String>();
            format!(
                "match __v {{\n\
                 serde::__value::Value::Map(__pairs) => {{\n\
                 {collect}\
                 ::core::result::Result::Ok({name} {{\n{ctor}}})\n}}\n\
                 __other => ::core::result::Result::Err(<__D::Error as serde::de::Error>::custom(\
                 ::std::format!(\"expected map for struct {name}, found {{}}\", \
                 __other.type_name()))),\n}}"
            )
        }
        Data::TupleStruct(1) => format!(
            "::core::result::Result::Ok({name}(\
             serde::__value::from_value(__v).map_err({DE_ERR})?))"
        ),
        Data::TupleStruct(n) => {
            let mut elems = String::new();
            for _ in 0..*n {
                elems.push_str(&format!(
                    "serde::__value::from_value(__it.next().unwrap()).map_err({DE_ERR})?, "
                ));
            }
            format!(
                "match __v {{\n\
                 serde::__value::Value::Seq(__items) if __items.len() == {n} => {{\n\
                 let mut __it = __items.into_iter();\n\
                 ::core::result::Result::Ok({name}({elems}))\n}}\n\
                 __other => ::core::result::Result::Err(<__D::Error as serde::de::Error>::custom(\
                 ::std::format!(\"expected sequence of {n} for {name}, found {{}}\", \
                 __other.type_name()))),\n}}"
            )
        }
        Data::UnitStruct => format!("::core::result::Result::Ok({name})"),
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(\
                             serde::__value::from_value(__payload).map_err({DE_ERR})?)),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let mut elems = String::new();
                        for _ in 0..*n {
                            elems.push_str(&format!(
                                "serde::__value::from_value(__it.next().unwrap())\
                                 .map_err({DE_ERR})?, "
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{vname}\" => match __payload {{\n\
                             serde::__value::Value::Seq(__items) if __items.len() == {n} => {{\n\
                             let mut __it = __items.into_iter();\n\
                             ::core::result::Result::Ok({name}::{vname}({elems}))\n}}\n\
                             __other => ::core::result::Result::Err(\
                             <__D::Error as serde::de::Error>::custom(\
                             ::std::format!(\"bad payload for {name}::{vname}: {{}}\", \
                             __other.type_name()))),\n}},\n"
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let collect = named_fields_collect(fields);
                        let ctor = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{}: {},\n",
                                    f.name,
                                    named_field_de(f, &format!("{name}::{vname}"))
                                )
                            })
                            .collect::<String>();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => match __payload {{\n\
                             serde::__value::Value::Map(__pairs) => {{\n\
                             {collect}\
                             ::core::result::Result::Ok({name}::{vname} {{\n{ctor}}})\n}}\n\
                             __other => ::core::result::Result::Err(\
                             <__D::Error as serde::de::Error>::custom(\
                             ::std::format!(\"bad payload for {name}::{vname}: {{}}\", \
                             __other.type_name()))),\n}},\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 serde::__value::Value::Str(__tag) => match __tag.as_str() {{\n\
                 {unit_arms}\
                 __other => ::core::result::Result::Err(<__D::Error as serde::de::Error>::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n}},\n\
                 serde::__value::Value::Map(__pairs) if __pairs.len() == 1 => {{\n\
                 let (__k, __payload) = __pairs.into_iter().next().unwrap();\n\
                 let __tag = match __k {{\n\
                 serde::__value::Value::Str(__s) => __s,\n\
                 __other => return ::core::result::Result::Err(\
                 <__D::Error as serde::de::Error>::custom(\
                 ::std::format!(\"non-string variant tag for {name}: {{}}\", \
                 __other.type_name()))),\n}};\n\
                 match __tag.as_str() {{\n\
                 {data_arms}\
                 __other => ::core::result::Result::Err(<__D::Error as serde::de::Error>::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}\n}}\n\
                 __other => ::core::result::Result::Err(<__D::Error as serde::de::Error>::custom(\
                 ::std::format!(\"expected enum {name}, found {{}}\", __other.type_name()))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> serde::de::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: serde::de::Deserializer<'de>>(__d: __D) \
         -> ::core::result::Result<Self, __D::Error> {{\n\
         #[allow(unused_variables)]\n\
         let __v = serde::de::Deserializer::deserialize_value(__d)?;\n{body}\n}}\n}}\n"
    )
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!(\"{}\");", msg.replace('"', "'"))
        .parse()
        .unwrap()
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_container(input) {
        Ok(c) => gen_serialize(&c)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_container(input) {
        Ok(c) => gen_deserialize(&c)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}
