//! Offline vendored stand-in for `serde_json`.
//!
//! Prints and parses real JSON text over the vendored serde's
//! [`serde::__value::Value`] data model. Maps whose keys are all strings
//! print as JSON objects; maps with non-string keys print as arrays of
//! `[key, value]` pairs (which the vendored serde's map `Deserialize` impls
//! accept back), so round-trips work for any key type.

use std::fmt;

use serde::__value::{from_value, to_value, Value};
use serde::de::DeserializeOwned;
use serde::ser::Serialize;

/// Error type mirroring `serde_json::Error`.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Serialises a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = to_value(value).map_err(|e| Error::new(e.to_string()))?;
    let mut out = String::new();
    write_value(&mut out, &v, None, 0);
    Ok(out)
}

/// Serialises a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = to_value(value).map_err(|e| Error::new(e.to_string()))?;
    let mut out = String::new();
    write_value(&mut out, &v, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserialisable value.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    from_value(v).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // Keep the float/integer distinction visible in the text so parsing
        // round-trips `1.0` as a float rather than an integer.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // Real serde_json errors on non-finite floats; printing null is the
        // closest lossy-but-total behaviour.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            let all_string_keys = pairs.iter().all(|(k, _)| matches!(k, Value::Str(_)));
            if all_string_keys {
                out.push('{');
                for (i, (k, val)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_indent(out, indent, depth + 1);
                    if let Value::Str(s) = k {
                        write_escaped(out, s);
                    }
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, val, indent, depth + 1);
                }
                write_indent(out, indent, depth);
                out.push('}');
            } else {
                // Non-string keys: array of [key, value] pairs.
                out.push('[');
                for (i, (k, val)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_indent(out, indent, depth + 1);
                    out.push('[');
                    write_value(out, k, indent, depth + 1);
                    out.push(',');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, val, indent, depth + 1);
                    out.push(']');
                }
                write_indent(out, indent, depth);
                out.push(']');
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((Value::Str(key), val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string("hi \"there\"").unwrap(), "\"hi \\\"there\\\"\"");
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<u64>>(&s).unwrap(), v);

        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2);
        let s = to_string(&m).unwrap();
        assert_eq!(s, "{\"a\":1,\"b\":2}");
        assert_eq!(
            from_str::<std::collections::BTreeMap<String, u32>>(&s).unwrap(),
            m
        );
    }

    #[test]
    fn non_string_keys_round_trip_as_pair_arrays() {
        let mut m = std::collections::BTreeMap::new();
        m.insert(3u32, "x".to_string());
        m.insert(5, "y".to_string());
        let s = to_string(&m).unwrap();
        assert_eq!(s, "[[3,\"x\"],[5,\"y\"]]");
        assert_eq!(
            from_str::<std::collections::BTreeMap<u32, String>>(&s).unwrap(),
            m
        );
    }

    #[test]
    fn pretty_printing_indents() {
        let v = vec![1u8];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1\n]");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("nope").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<Vec<u8>>("[1,").is_err());
    }
}
